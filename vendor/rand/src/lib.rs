//! Hermetic stand-in for the `rand` crate.
//!
//! The workspace must build without network access, so this vendored crate
//! provides the narrow slice of the `rand` API that `bagsched` uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] over integer and `f64` ranges. The generator is
//! deterministic in its seed (a requirement of the workload generators and
//! the determinism test suite) but makes **no** reproducibility promise
//! relative to the real `rand` crate's `StdRng`.
//!
//! The core is xoshiro256**, seeded through SplitMix64 — the same
//! construction the `rand` ecosystem uses for small fast generators.

pub mod rngs;

pub use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, mirroring the `rand` 0.9 `Rng` surface.
pub trait RngExt {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<G: RngExt>(self, rng: &mut G) -> T;
}

// Span arithmetic runs in the same-width unsigned domain ($u): a direct
// `end - start` would overflow signed types on ranges wider than their
// positive half, while two's-complement wrapping_sub reinterpreted as
// unsigned is exact for every range width.
macro_rules! impl_int_range {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngExt>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit-wide range: every value is valid.
                    return lo.wrapping_add(rng.next_u64() as $u as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
    )*};
}

impl_int_range!((u32, u32), (u64, u64), (usize, usize), (i32, u32), (i64, u64));

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngExt>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        // `(MAX - 0) + 1` overflows; the span must wrap to 0 and fall into
        // the full-width branch instead of panicking in debug builds.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let _: u64 = rng.random_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn wide_signed_ranges_work() {
        // Spans wider than the signed positive half must not overflow.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let x: i32 = rng.random_range(i32::MIN..i32::MAX);
            assert!(x < i32::MAX);
            let y: i64 = rng.random_range(i64::MIN..=i64::MAX);
            let _ = y;
            let z: i32 = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn covers_small_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
