//! Hermetic stand-in for `serde_json`: a strict JSON parser and
//! pretty-printer over the vendored `serde` [`Value`] tree.
//!
//! Numbers are `f64` and print via Rust's shortest-round-trip `Display`,
//! so finite floats survive a serialize/parse cycle bit-exactly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Parse or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeserializeError> for Error {
    fn from(e: serde::DeserializeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: usize) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("non-finite number {x} is not JSON")));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_value(out, item, indent + 1)?;
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    write_value(out, val, indent + 1)?;
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser would otherwise overflow the stack (an uncatchable abort) on
/// adversarial inputs like a megabyte of `[`.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' but found '{}' at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' but found '{}' at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = match code {
                                // High surrogate: a low surrogate escape
                                // must follow; combine into one scalar.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(&b"\\u"[..]) {
                                        return Err(Error::new(
                                            "high surrogate not followed by \\u escape",
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::new("lone low surrogate"));
                                }
                                _ => char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            };
                            out.push(c);
                        }
                        c => return Err(Error::new(format!("invalid escape '\\{}'", c as char))),
                    }
                }
                b if b < 0x20 => return Err(Error::new("control character in string")),
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        match text.parse::<f64>() {
            // `str::parse` returns Ok(inf) on overflow (e.g. "1e999");
            // keep the crate's finite-Num invariant by rejecting it.
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => Err(Error::new(format!("invalid number '{text}'"))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        parse_value(&{
            let mut s = String::new();
            write_value(&mut s, v, 0).unwrap();
            s
        })
        .unwrap()
    }

    #[test]
    fn value_roundtrips() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a \"quoted\"\nline".into())),
            ("xs".into(), Value::Arr(vec![Value::Num(1.0), Value::Num(0.1 + 0.2)])),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1e-12, 123456.789, 1.0 / 3.0, f64::MIN_POSITIVE] {
            assert_eq!(roundtrip(&Value::Num(x)), Value::Num(x));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("[1, 2,]").is_err());
        assert!(parse_value("\"open").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("").is_err());
        // Overflowing literals must not smuggle in a non-finite Num.
        assert!(parse_value("1e999").is_err());
        assert!(parse_value("-1e999").is_err());
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("{\"a\": 1}").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_an_abort() {
        let deep = "[".repeat(200_000);
        assert!(parse_value(&deep).is_err());
        let mixed = "{\"a\":".repeat(5_000) + "1" + &"}".repeat(5_000);
        assert!(parse_value(&mixed).is_err());
        // Sibling containers at the same level do not accumulate depth.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(parse_value(&wide).is_ok());
    }

    #[test]
    fn unicode_strings() {
        let v = Value::Str("héllo ☃ \u{1F600}".into());
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Externally produced JSON may escape non-BMP characters as pairs.
        let v: String = from_str("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v, "\u{1F600}");
        // BMP escapes still decode directly.
        let v: String = from_str("\"\\u00e9\\u2603\"").unwrap();
        assert_eq!(v, "é☃");
        // Lone or malformed surrogates are errors, not U+FFFD.
        assert!(from_str::<String>(r#""\uD83D""#).is_err());
        assert!(from_str::<String>(r#""\uD83Dxx""#).is_err());
        assert!(from_str::<String>(r#""\uD83DA""#).is_err());
        assert!(from_str::<String>(r#""\uDE00""#).is_err());
    }
}
