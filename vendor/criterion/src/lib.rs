//! Hermetic stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the bench targets use, backed
//! by a plain wall-clock harness: each benchmark warms up once, runs
//! `sample_size` timed samples of an adaptively chosen batch size, and
//! prints min / mean / max per-iteration times. No plotting, no statistics
//! beyond that — the point is that `cargo bench` builds and runs hermetically;
//! numbers are indicative, not rigorous.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Top-level harness handle, passed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&self.name, &id.label);
        self
    }

    /// End the group (printing is incremental, so this is cosmetic).
    pub fn finish(self) {}
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure: one warm-up call sizes the batch, then
    /// `sample_size` samples are recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        // Batch so that one sample takes ~2ms, capped to keep cheap
        // benches statistically useful and expensive ones bounded.
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{label}: no samples");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {group}/{label}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls >= 4, "warmup + 3 samples expected, got {calls}");
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("8x8").label, "8x8");
    }
}
