//! Hermetic stand-in for `proptest`.
//!
//! Real proptest does guided generation and shrinking; this vendored crate
//! keeps the same *surface* (the [`proptest!`] macro, range / tuple /
//! [`collection::vec`] strategies, `prop_map` / `prop_flat_map`, the
//! `prop_assert*` macros) but implements it as plain seeded random
//! sampling: every test function runs `ProptestConfig::cases` cases from a
//! deterministic per-test RNG (seeded from the test's name), so failures
//! reproduce exactly across runs. No shrinking is attempted — the failure
//! message reports the case index instead.

use rand::{RngExt, SeedableRng, StdRng};
use std::fmt;
use std::ops::Range;

pub mod collection;

/// How a value of type `Value` is sampled.
///
/// Implemented for numeric ranges (`0.01f64..1.0`, `2usize..6`, ...),
/// tuples of strategies, [`Just`], [`collection::vec`] and the `prop_map`
/// / `prop_flat_map` adapters.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform sampled values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Per-test-function configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A failed `prop_assert*` inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

#[doc(hidden)]
pub fn __new_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: deterministic, distinct per test.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// The commonly imported names.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::__new_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __out: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __out {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, __cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{} ({:?} vs {:?})",
            format!($($fmt)+), __a, __b
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "{} (both {:?})",
            format!($($fmt)+), __a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test() {
        use crate::Strategy;
        let mut a = crate::__new_rng("some_test");
        let mut b = crate::__new_rng("some_test");
        let s = 0.0f64..1.0;
        for _ in 0..10 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        use crate::Strategy;
        let mut rng = crate::__new_rng("sizes");
        let exact = crate::collection::vec(0u32..5, 6);
        assert_eq!(exact.sample(&mut rng).len(), 6);
        let ranged = crate::collection::vec(0u32..5, 2..9);
        for _ in 0..50 {
            let v = ranged.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_grammar_smoke(x in 1u32..10, (a, b) in (0.0f64..1.0, 5usize..8)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a), "a out of range: {}", a);
            prop_assert_eq!(b.min(7), b);
            prop_assert_ne!(x, 0, "x must not be {}", 0);
        }

        #[test]
        fn flat_map_and_just(v in Just(3usize).prop_flat_map(|n| crate::collection::vec(0u32..4, n..n + 1))) {
            prop_assert_eq!(v.len(), 3);
        }
    }
}
