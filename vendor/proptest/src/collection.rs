//! Collection strategies.

use crate::Strategy;
use rand::{RngExt, StdRng};
use std::ops::Range;

/// Length specification for [`vec`]: an exact `usize` or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
