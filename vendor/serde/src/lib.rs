//! Hermetic stand-in for `serde`.
//!
//! The real serde is a derive-driven zero-copy framework; this vendored
//! crate is the minimal Value-tree version the workspace needs to persist
//! instances and schedules as JSON without network access. Types implement
//! [`Serialize`] / [`Deserialize`] by hand against a dynamic [`Value`];
//! the companion vendored `serde_json` crate renders and parses that tree.

use std::fmt;

/// A dynamic JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers are carried as `f64`; integral values print without
    /// a fractional part and round-trip exactly up to 2^53.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order is preserved (insertion order), matching serde_json's
    /// `preserve_order` behaviour so output is deterministic.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field, as a deserialization error otherwise.
    pub fn field(&self, key: &str) -> Result<&Value, DeserializeError> {
        self.get(key).ok_or_else(|| DeserializeError::new(format!("missing field `{key}`")))
    }
}

/// Error produced by [`Deserialize`] implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeserializeError {
    msg: String,
}

impl DeserializeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeserializeError { msg: msg.into() }
    }
}

impl fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeserializeError {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeserializeError>;
}

fn expect_num(v: &Value, what: &str) -> Result<f64, DeserializeError> {
    match v {
        Value::Num(x) => Ok(*x),
        other => Err(DeserializeError::new(format!("expected {what}, got {other:?}"))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // All numbers travel as f64; refuse to silently corrupt
                // integers beyond its 2^53 exact range (no in-repo type
                // carries such values, so this is a loud guard, not a
                // path). A round-trip cast check would be fooled by `as`
                // saturation at u64::MAX, so bound explicitly.
                assert!(
                    *self as u64 <= (1u64 << 53),
                    "{} value {self} is not exactly representable as f64",
                    stringify!($t)
                );
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                let x = expect_num(v, stringify!($t))?;
                // `MAX as f64` rounds *up* to 2^64 for u64, so compare
                // against the exactly-representable 2^bits limit instead
                // of MAX itself (`as` would silently saturate).
                let limit = <$t>::MAX as f64 + 1.0;
                if x.fract() != 0.0 || x < 0.0 || x >= limit {
                    return Err(DeserializeError::new(format!(
                        "number {x} out of range for {}", stringify!($t))));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_uint!(u32, u64, usize);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        expect_num(v, "f64")
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeserializeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeserializeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeserializeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&0.25f64.to_value()), Ok(0.25));
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()), Ok(vec![1, 2, 3]));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
        assert!(String::from_value(&Value::Num(1.0)).is_err());
    }

    #[test]
    fn integer_overflow_rejected_not_saturated() {
        // 2^64 rounds into `u64::MAX as f64`, so a naive `> MAX` check
        // would accept it and `as` would saturate. Must be an error.
        let two_pow_64 = 18446744073709551616.0f64;
        assert!(u64::from_value(&Value::Num(two_pow_64)).is_err());
        assert!(usize::from_value(&Value::Num(two_pow_64)).is_err());
        assert!(u32::from_value(&Value::Num(4294967296.0)).is_err());
        // The largest exactly-representable in-range values still parse.
        assert_eq!(u32::from_value(&Value::Num(u32::MAX as f64)), Ok(u32::MAX));
        assert_eq!(u64::from_value(&Value::Num(2.0f64.powi(53))), Ok(1u64 << 53));
    }

    #[test]
    fn value_serializes_to_itself() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.to_value(), v);
        assert_eq!(Value::from_value(&v), Ok(v));
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.field("a").unwrap(), &Value::Num(1.0));
        assert!(v.field("b").is_err());
    }
}
