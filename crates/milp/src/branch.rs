//! Branch & bound for mixed-integer linear programs.
//!
//! Depth-first search over LP relaxations with most-fractional branching.
//! The child closer to the relaxation value is explored first (a diving
//! strategy that finds integral incumbents quickly on the pattern MILPs
//! the EPTAS generates, where LP optima are near-integral).
//!
//! Budgets (nodes, wall-clock) are explicit: exhausting one yields
//! [`MilpStatus::Feasible`] if an incumbent exists, otherwise
//! [`MilpStatus::Budget`] — never a silent wrong answer.

use crate::model::{LpStatus, Model, VarId};
use crate::simplex;
use crate::TOL;
use std::time::{Duration, Instant};

/// Budgets and tolerances for [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// A value within this distance of an integer counts as integral.
    pub int_tol: f64,
    /// Stop as soon as *any* integral solution is found (feasibility mode —
    /// the paper's MILP is a pure feasibility question).
    pub first_solution: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 50_000,
            time_limit: Duration::from_secs(60),
            int_tol: 1e-6,
            first_solution: false,
        }
    }
}

/// Outcome status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal integral solution.
    Optimal,
    /// Integral solution found, but a budget stopped the optimality proof
    /// (or `first_solution` was set).
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// A budget was exhausted before any integral solution was found;
    /// feasibility is unknown.
    Budget,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpResult {
    pub status: MilpStatus,
    /// Best integral solution (empty unless `Optimal`/`Feasible`).
    pub x: Vec<f64>,
    /// Its objective value.
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex iterations across all LP solves.
    pub lp_iterations: usize,
    /// Number of LP relaxations solved (one per explored node).
    pub lp_solves: usize,
    /// Redundant rows dropped by the root presolve.
    pub presolve_rows_dropped: usize,
    /// Variable bounds tightened by the root presolve.
    pub presolve_bounds_tightened: usize,
}

struct Node {
    /// Bound overrides along the path from the root: `(var, lb, ub)`.
    bounds: Vec<(usize, f64, f64)>,
    /// Parent LP objective (a lower bound for this node), used for pruning
    /// before the LP is solved.
    parent_bound: f64,
}

/// Solve `model` to integral optimality (subject to budgets).
pub fn solve_milp(model: &Model, opts: &MilpOptions) -> MilpResult {
    let start = Instant::now();
    // Root presolve: tighten bounds, drop redundant rows, detect trivial
    // infeasibility. Variables are never removed, so indices are stable.
    let reduced;
    let (presolve_rows_dropped, presolve_bounds_tightened);
    let model = match crate::presolve::presolve(model) {
        crate::presolve::PresolveStatus::Infeasible => {
            return MilpResult {
                status: MilpStatus::Infeasible,
                x: vec![],
                objective: f64::INFINITY,
                nodes: 0,
                lp_iterations: 0,
                lp_solves: 0,
                presolve_rows_dropped: 0,
                presolve_bounds_tightened: 0,
            };
        }
        crate::presolve::PresolveStatus::Reduced { model, rows_dropped, bounds_tightened } => {
            presolve_rows_dropped = rows_dropped;
            presolve_bounds_tightened = bounds_tightened;
            reduced = model;
            &reduced
        }
    };
    let int_vars: Vec<usize> =
        (0..model.num_vars()).filter(|&j| model.is_integer(VarId(j))).collect();
    let iter_limit = simplex::default_iter_limit(model);

    let mut nodes = 0usize;
    let mut lp_iterations = 0usize;
    let mut lp_solves = 0usize;
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut budget_hit = false;

    let mut stack = vec![Node { bounds: Vec::new(), parent_bound: f64::NEG_INFINITY }];
    let mut work = model.clone();

    while let Some(node) = stack.pop() {
        if nodes >= opts.max_nodes || start.elapsed() > opts.time_limit {
            budget_hit = true;
            break;
        }
        if let Some((_, inc_obj)) = &incumbent {
            if node.parent_bound >= *inc_obj - TOL {
                continue; // dominated before solving
            }
        }
        nodes += 1;

        // Apply node bounds on the shared work model, solve, then restore.
        let saved: Vec<(usize, f64, f64)> = node
            .bounds
            .iter()
            .map(|&(j, _, _)| {
                let (lb, ub) = work.bounds(VarId(j));
                (j, lb, ub)
            })
            .collect();
        for &(j, lb, ub) in &node.bounds {
            work.set_bounds(VarId(j), lb, ub);
        }
        let lp = simplex::solve(&work, iter_limit);
        for &(j, lb, ub) in &saved {
            work.set_bounds(VarId(j), lb, ub);
        }
        lp_solves += 1;
        lp_iterations += lp.iterations;

        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // Unbounded relaxation at the root means the MILP itself is
                // unbounded or ill-posed; deeper in the tree it cannot
                // happen (bounds only tighten), but handle it defensively.
                if node.bounds.is_empty() {
                    return MilpResult {
                        status: MilpStatus::Unbounded,
                        x: vec![],
                        objective: f64::NEG_INFINITY,
                        nodes,
                        lp_iterations,
                        lp_solves,
                        presolve_rows_dropped,
                        presolve_bounds_tightened,
                    };
                }
                continue;
            }
            LpStatus::IterLimit => {
                budget_hit = true;
                continue;
            }
            LpStatus::Optimal => {}
        }

        if let Some((_, inc_obj)) = &incumbent {
            if lp.objective >= *inc_obj - TOL {
                continue;
            }
        }

        // Most fractional integer variable.
        let mut branch_var: Option<(f64, usize)> = None;
        for &j in &int_vars {
            let v = lp.x[j];
            let frac = (v - v.round()).abs();
            if frac > opts.int_tol {
                let score = (v.fract() - 0.5).abs(); // smaller = more fractional
                match branch_var {
                    Some((s, _)) if s <= score => {}
                    _ => branch_var = Some((score, j)),
                }
            }
        }

        let Some((_, j)) = branch_var else {
            // Integral solution.
            let mut x = lp.x.clone();
            for &jj in &int_vars {
                x[jj] = x[jj].round();
            }
            let obj = model.objective_value(&x);
            let better = incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc - TOL);
            if better {
                incumbent = Some((x, obj));
                if opts.first_solution {
                    return MilpResult {
                        status: MilpStatus::Feasible,
                        x: incumbent.as_ref().unwrap().0.clone(),
                        objective: obj,
                        nodes,
                        lp_iterations,
                        lp_solves,
                        presolve_rows_dropped,
                        presolve_bounds_tightened,
                    };
                }
            }
            continue;
        };

        let v = lp.x[j];
        let (lb, ub) = {
            // Effective bounds at this node (base model + path overrides).
            let mut eff = work.bounds(VarId(j));
            for &(bj, blb, bub) in &node.bounds {
                if bj == j {
                    eff = (blb, bub);
                }
            }
            eff
        };
        let floor = v.floor();
        let ceil = v.ceil();

        let mut down = node.bounds.clone();
        down.push((j, lb, floor.min(ub)));
        let mut up = node.bounds.clone();
        up.push((j, ceil.max(lb), ub));

        let down_node = Node { bounds: down, parent_bound: lp.objective };
        let up_node = Node { bounds: up, parent_bound: lp.objective };
        // DFS: push the less promising child first so the child closer to
        // the LP value is explored next (diving).
        if v - floor <= 0.5 {
            stack.push(up_node);
            stack.push(down_node);
        } else {
            stack.push(down_node);
            stack.push(up_node);
        }
    }

    match incumbent {
        Some((x, objective)) => MilpResult {
            status: if budget_hit || !stack.is_empty() {
                MilpStatus::Feasible
            } else {
                MilpStatus::Optimal
            },
            x,
            objective,
            nodes,
            lp_iterations,
            lp_solves,
            presolve_rows_dropped,
            presolve_bounds_tightened,
        },
        None => MilpResult {
            status: if budget_hit { MilpStatus::Budget } else { MilpStatus::Infeasible },
            x: vec![],
            objective: f64::INFINITY,
            nodes,
            lp_iterations,
            lp_solves,
            presolve_rows_dropped,
            presolve_bounds_tightened,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation::*};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 10x1 + 13x2 + 7x3, 3x1 + 4x2 + 2x3 <= 6, x binary.
        // Best: x1 + x3 (weight 5, value 17) vs x2 + x3 (weight 6, value 20).
        let mut m = Model::new();
        let x1 = m.add_int_var(-10.0, 0.0, 1.0);
        let x2 = m.add_int_var(-13.0, 0.0, 1.0);
        let x3 = m.add_int_var(-7.0, 0.0, 1.0);
        m.add_con(&[(x1, 3.0), (x2, 4.0), (x3, 2.0)], Le, 6.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective, -20.0);
        assert_close(r.x[1], 1.0);
        assert_close(r.x[2], 1.0);
    }

    #[test]
    fn integer_rounding_gap() {
        // max x s.t. 2x <= 5, x integer => x = 2 (LP gives 2.5).
        let mut m = Model::new();
        let x = m.add_int_var(-1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 2.0)], Le, 5.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.x[0], 2.0);
    }

    #[test]
    fn lp_feasible_ip_infeasible() {
        // 2x + 2y = 3 with x, y binary: LP ok (0.75, 0.75), IP impossible.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 0.0, 1.0);
        let y = m.add_int_var(0.0, 0.0, 1.0);
        m.add_con(&[(x, 2.0), (y, 2.0)], Eq, 3.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_integer() {
        // min y s.t. y >= 1.3 x, x >= 2 integer, y continuous.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 2.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(y, 1.0), (x, -1.3)], Ge, 0.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.x[0], 2.0);
        assert_close(r.objective, 2.6);
    }

    #[test]
    fn equality_assignment() {
        // Assign 2 items to 2 slots, each exactly once; cost matrix
        // [[1, 10], [10, 1]] => diagonal assignment, cost 2.
        let mut m = Model::new();
        let a = [[1.0, 10.0], [10.0, 1.0]];
        let mut v = [[VarId(0); 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                v[i][j] = m.add_int_var(a[i][j], 0.0, 1.0);
            }
        }
        for (i, row) in v.iter().enumerate() {
            m.add_con(&[(row[0], 1.0), (row[1], 1.0)], Eq, 1.0);
            m.add_con(&[(v[0][i], 1.0), (v[1][i], 1.0)], Eq, 1.0);
        }
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective, 2.0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A deliberately nasty IP with an immediate node budget.
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|_| m.add_int_var(-1.0, 0.0, 1.0)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_con(&terms, Le, 11.0);
        let opts = MilpOptions { max_nodes: 1, ..Default::default() };
        let r = solve_milp(&m, &opts);
        // With one node we solve only the root LP: fractional, no incumbent.
        assert_eq!(r.status, MilpStatus::Budget);
    }

    #[test]
    fn first_solution_mode_stops_early() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.add_int_var(-1.0, 0.0, 1.0)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_con(&terms, Le, 7.0);
        let opts = MilpOptions { first_solution: true, ..Default::default() };
        let r = solve_milp(&m, &opts);
        assert_eq!(r.status, MilpStatus::Feasible);
        assert!(!r.x.is_empty());
        assert!(m.is_feasible_point(&r.x, 1e-6));
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer vars: B&B reduces to a single LP solve.
        let mut m = Model::new();
        let _x = m.add_var(-1.0, 0.0, 3.5);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.x[0], 3.5);
        assert_eq!(r.nodes, 1);
    }

    #[test]
    fn unbounded_root_reported() {
        let mut m = Model::new();
        m.add_int_var(-1.0, 0.0, f64::INFINITY);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Unbounded);
    }

    proptest::proptest! {
        /// On random bounded pure-binary knapsacks the B&B optimum must
        /// match brute-force enumeration.
        #[test]
        fn matches_bruteforce_knapsack(
            values in proptest::collection::vec(1u32..20, 3..9),
            weights in proptest::collection::vec(1u32..10, 9),
            cap in 5u32..30,
        ) {
            let n = values.len();
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|j| m.add_int_var(-(values[j] as f64), 0.0, 1.0)).collect();
            let terms: Vec<_> = vars.iter().enumerate().map(|(j, &v)| (v, weights[j] as f64)).collect();
            m.add_con(&terms, Le, cap as f64);
            let r = solve_milp(&m, &MilpOptions::default());
            proptest::prop_assert_eq!(r.status, MilpStatus::Optimal);

            let mut best = 0i64;
            for mask in 0u32..(1 << n) {
                let w: u32 = (0..n).filter(|&j| mask >> j & 1 == 1).map(|j| weights[j]).sum();
                if w <= cap {
                    let v: i64 = (0..n).filter(|&j| mask >> j & 1 == 1).map(|j| values[j] as i64).sum();
                    best = best.max(v);
                }
            }
            proptest::prop_assert!((r.objective + best as f64).abs() < 1e-6,
                "bb={} brute={}", -r.objective, best);
        }
    }
}
