//! Branch & bound for mixed-integer linear programs, with warm-started
//! node LPs and an in-tree pricing hook.
//!
//! Depth-first search over LP relaxations with most-fractional branching.
//! The child closer to the relaxation value is explored first (a diving
//! strategy that finds integral incumbents quickly on the pattern MILPs
//! the EPTAS generates, where LP optima are near-integral).
//!
//! **Node warm starts** ([`MilpOptions::dual_simplex`], default on): a
//! child node differs from its parent by one variable-bound change, under
//! which the parent's optimal basis stays dual feasible. Each node hands
//! its final basis ([`crate::simplex::WarmState`]) to its children, which
//! re-optimize with the dual simplex ([`crate::dual::reoptimize`])
//! instead of a cold phase-1/phase-2 solve; any change the dual engine
//! cannot absorb (numerical singularity, a bound shape the tableau lacks
//! a row for) falls back to the cold solve. Basis hand-off is by
//! reference count: small tableaus are shared with both children, large
//! ones only with the dive child (the sibling re-solves cold on
//! backtrack) to bound memory by O(1) tableaus instead of O(depth).
//!
//! **In-tree pricing** ([`TreePricer`], [`solve_milp_with`]): on
//! restricted column pools the LP-feasible region at a node may be
//! missing exactly the columns that would make the dive land. A pricer
//! is consulted at fractional optimal nodes and may append columns
//! (`Model::add_column` + `set_integer`); the node LP is re-solved by
//! grafting the columns onto the warm basis and the node re-branches.
//! Columns persist for the rest of the tree. Pricing presumes
//! first-solution (feasibility) mode: nodes are never pruned against an
//! incumbent before the first incumbent exists, so columns appended
//! mid-tree cannot invalidate earlier pruning decisions. Presolve is
//! skipped when a pricer is attached — the pricer addresses constraint
//! rows by index, and presolve renumbers them.
//!
//! Budgets (nodes, wall-clock) are explicit: exhausting one yields
//! [`MilpStatus::Feasible`] if an incumbent exists, otherwise
//! [`MilpStatus::Budget`] — never a silent wrong answer.

use crate::dual;
use crate::model::{LpResult, LpStatus, Model, VarId};
use crate::simplex::{self, WarmState};
use crate::TOL;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation probe, polled by the branch-and-bound loop
/// between nodes exactly where the node/time budgets are checked. The
/// closure must be cheap (an atomic load or two) and is shared across
/// threads — the caller races solves and trips the probe of the losers.
#[derive(Clone)]
pub struct CancelProbe(Arc<dyn Fn() -> bool + Send + Sync>);

impl CancelProbe {
    /// Wrap a predicate; `true` means "stop as soon as convenient".
    pub fn new(f: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        CancelProbe(Arc::new(f))
    }

    /// Poll the probe.
    pub fn is_cancelled(&self) -> bool {
        (self.0)()
    }
}

impl std::fmt::Debug for CancelProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CancelProbe(..)")
    }
}

/// Budgets and tolerances for [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// A value within this distance of an integer counts as integral.
    pub int_tol: f64,
    /// Stop as soon as *any* integral solution is found (feasibility mode —
    /// the paper's MILP is a pure feasibility question).
    pub first_solution: bool,
    /// Warm-start child-node LPs from the parent basis via the dual
    /// simplex instead of solving every node cold (default on).
    pub dual_simplex: bool,
    /// Consult the in-tree pricer only once this many nodes were explored
    /// (without an incumbent, in first-solution mode): a dive that lands
    /// quickly never pays for pricing, a struggling one — the symptom of
    /// a missing column — gets rescued.
    pub price_after_nodes: usize,
    /// Cooperative cancellation, polled beside the node/time budgets. A
    /// tripped probe stops the search like an exhausted budget
    /// ([`MilpStatus::Feasible`] with an incumbent, [`MilpStatus::Budget`]
    /// without) — never a silent wrong answer. `None` never cancels.
    pub cancel: Option<CancelProbe>,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 50_000,
            time_limit: Duration::from_secs(60),
            int_tol: 1e-6,
            first_solution: false,
            dual_simplex: true,
            price_after_nodes: 32,
            cancel: None,
        }
    }
}

/// In-tree column generator consulted at fractional optimal nodes.
///
/// Implementations append improving columns to `model` (via
/// [`Model::add_column`], marking them integer as needed) and return the
/// new variables; an empty return means "no improving column under these
/// node duals" and ends the pricing loop at this node. The pricer is
/// responsible for its own round budget.
pub trait TreePricer {
    /// Price against the node-LP solution `lp` (duals included).
    fn price(&mut self, model: &mut Model, lp: &LpResult) -> Vec<VarId>;
}

/// Outcome status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal integral solution.
    Optimal,
    /// Integral solution found, but a budget stopped the optimality proof
    /// (or `first_solution` was set).
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// A budget was exhausted before any integral solution was found;
    /// feasibility is unknown.
    Budget,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpResult {
    pub status: MilpStatus,
    /// Best integral solution (empty unless `Optimal`/`Feasible`),
    /// spanning every column of the final model — tree-priced ones
    /// included (pricing only runs before the first incumbent, so the
    /// incumbent already covers them).
    pub x: Vec<f64>,
    /// Its objective value.
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex iterations across all LP solves (dual pivots and
    /// warm clean-up pivots included).
    pub lp_iterations: usize,
    /// Number of LP relaxations solved (one per explored node, plus
    /// re-solves after in-tree pricing).
    pub lp_solves: usize,
    /// Redundant rows dropped by the root presolve.
    pub presolve_rows_dropped: usize,
    /// Variable bounds tightened by the root presolve.
    pub presolve_bounds_tightened: usize,
    /// Dual-simplex pivots spent re-optimizing warm node LPs.
    pub dual_pivots: usize,
    /// Node LPs that started from the parent basis instead of cold.
    pub node_warm_starts: usize,
    /// Columns appended by the in-tree pricer.
    pub tree_columns: usize,
    /// Basis refactorizations across all accepted LP solves.
    pub basis_refactorizations: usize,
    /// Eta updates (factorized pivots) across all accepted LP solves.
    pub eta_updates: usize,
}

/// Warm bases up to this weight (stored nonzeros plus per-row vectors,
/// see [`WarmState::weight`]) are shared with both children; larger ones
/// ride only with the dive child, so the stack never holds more than
/// O(1) large bases.
const SHARE_CELL_BUDGET: usize = 250_000;

struct Node {
    /// Bound overrides along the path from the root: `(var, lb, ub)`.
    bounds: Vec<(usize, f64, f64)>,
    /// Parent LP objective (a lower bound for this node), used for pruning
    /// before the LP is solved.
    parent_bound: f64,
    /// The parent's final basis, when inherited.
    warm: Option<Rc<WarmState>>,
}

/// What a processed node asks the search to do next.
enum NodeOutcome {
    /// Nothing to explore further (infeasible, dominated, or handled).
    Pruned,
    /// A budget-type LP failure (iteration limit).
    BudgetHit,
    /// Root relaxation unbounded.
    UnboundedRoot,
    /// The node LP is integral: a candidate incumbent.
    Incumbent(Vec<f64>),
    /// Branch on variable `j` at fractional value `v` with effective
    /// bounds `(lb, ub)`; `state` is this node's final basis.
    Branch { j: usize, v: f64, lb: f64, ub: f64, obj: f64, state: Option<Box<WarmState>> },
}

/// Solve `model` to integral optimality (subject to budgets).
pub fn solve_milp(model: &Model, opts: &MilpOptions) -> MilpResult {
    solve_milp_with(model, opts, None)
}

/// Like [`solve_milp`], with an optional in-tree pricer consulted at
/// fractional optimal nodes (see [`TreePricer`]).
///
/// Claim semantics with a pricer: once any column was grafted, subtrees
/// explored *before* the graft were not re-explored, so an exhausted
/// search returns [`MilpStatus::Feasible`] (never `Optimal`), and an
/// [`MilpStatus::Infeasible`] verdict is relative to the columns each
/// subtree saw — treat it as "infeasible over this pool", exactly how a
/// restricted-pool verdict must be read anyway.
pub fn solve_milp_with(
    model: &Model,
    opts: &MilpOptions,
    pricer: Option<&mut dyn TreePricer>,
) -> MilpResult {
    solve_milp_seeded(model, opts, pricer, None).0
}

/// Like [`solve_milp_with`], plus a root-basis seam for cross-solve warm
/// starts: `root_warm` seeds the root node's LP with a basis captured
/// from a previous solve of a structurally identical model, and the
/// returned state is the root's final basis for the *next* identical
/// solve.
///
/// Seeding an identical model replays to optimality in zero dual pivots,
/// so the branch-and-bound tree — and hence the integral solution — is
/// bit-identical to the unseeded solve; a basis the dual engine cannot
/// absorb (wrong shape, singular) is discarded for the usual cold solve,
/// so a stale seed costs pivots, never correctness.
///
/// Presolve is skipped whenever a seed is supplied or requested (the
/// basis addresses the unreduced model's rows and columns), and the
/// returned state is `None` whenever it could not be replayed against
/// the caller's model as-is: presolve ran, the in-tree pricer grafted
/// columns before the root was resolved, or the root LP never reached a
/// reusable optimal basis.
pub fn solve_milp_seeded(
    model: &Model,
    opts: &MilpOptions,
    mut pricer: Option<&mut dyn TreePricer>,
    root_warm: Option<&WarmState>,
) -> (MilpResult, Option<WarmState>) {
    let _span = bagsched_types::obs::Span::enter("milp.bnb");
    let start = Instant::now();
    let fail = |status: MilpStatus| MilpResult {
        status,
        x: vec![],
        objective: f64::INFINITY,
        nodes: 0,
        lp_iterations: 0,
        lp_solves: 0,
        presolve_rows_dropped: 0,
        presolve_bounds_tightened: 0,
        dual_pivots: 0,
        node_warm_starts: 0,
        tree_columns: 0,
        basis_refactorizations: 0,
        eta_updates: 0,
    };
    // Root presolve: tighten bounds, drop redundant rows, detect trivial
    // infeasibility. Variables are never removed, so indices are stable.
    // Skipped when a pricer is attached (priced columns address
    // constraint rows by index, and presolve renumbers rows) or when a
    // root basis is in play (the basis addresses the unreduced model).
    let presolved = pricer.is_none() && root_warm.is_none();
    let reduced;
    let (presolve_rows_dropped, presolve_bounds_tightened);
    let model = if !presolved {
        (presolve_rows_dropped, presolve_bounds_tightened) = (0, 0);
        model
    } else {
        let _span = bagsched_types::obs::Span::enter("milp.presolve");
        match crate::presolve::presolve(model) {
            crate::presolve::PresolveStatus::Infeasible => {
                return (fail(MilpStatus::Infeasible), None);
            }
            crate::presolve::PresolveStatus::Reduced { model, rows_dropped, bounds_tightened } => {
                presolve_rows_dropped = rows_dropped;
                presolve_bounds_tightened = bounds_tightened;
                reduced = model;
                &reduced
            }
        }
    };
    let mut int_vars: Vec<usize> =
        (0..model.num_vars()).filter(|&j| model.is_integer(VarId(j))).collect();
    let iter_limit = simplex::default_iter_limit(model);

    let mut nodes = 0usize;
    let mut lp_iterations = 0usize;
    let mut lp_solves = 0usize;
    let mut dual_pivots = 0usize;
    let mut node_warm_starts = 0usize;
    let mut tree_columns = 0usize;
    let mut basis_refactorizations = 0usize;
    let mut eta_updates = 0usize;
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut budget_hit = false;
    let mut unbounded_root = false;
    // The root's final basis, captured for the next identical solve.
    let mut root_basis: Option<WarmState> = None;

    let mut stack = vec![Node {
        bounds: Vec::new(),
        parent_bound: f64::NEG_INFINITY,
        // Seed the root from the caller's basis; the dual engine treats
        // it exactly like a parent hand-off (cold fallback included).
        warm: if opts.dual_simplex { root_warm.map(|w| Rc::new(w.clone())) } else { None },
    }];
    let mut work = model.clone();

    'search: while let Some(node) = stack.pop() {
        if nodes >= opts.max_nodes
            || start.elapsed() > opts.time_limit
            || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled())
        {
            budget_hit = true;
            break;
        }
        if let Some((_, inc_obj)) = &incumbent {
            if node.parent_bound >= *inc_obj - TOL {
                continue; // dominated before solving
            }
        }
        nodes += 1;
        let at_root = node.bounds.is_empty();

        // Apply node bounds on the shared work model; restored after the
        // node is fully processed (pricing re-solves run under them too).
        let saved: Vec<(usize, f64, f64)> = node
            .bounds
            .iter()
            .map(|&(j, _, _)| {
                let (lb, ub) = work.bounds(VarId(j));
                (j, lb, ub)
            })
            .collect();
        for &(j, lb, ub) in &node.bounds {
            work.set_bounds(VarId(j), lb, ub);
        }

        let outcome = 'node: {
            // ---- Node LP: warm from the parent basis, cold fallback. ----
            let mut state: Option<WarmState> = None;
            let mut lp: Option<LpResult> = None;
            if opts.dual_simplex {
                if let Some(rc) = node.warm {
                    let mut st = Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone());
                    if let Some(out) = dual::reoptimize(&work, iter_limit, &mut st) {
                        // An iteration-limited warm re-solve is discarded
                        // like a singular one: the cold solve of the same
                        // node may well finish within the identical
                        // budget, and verdicts must not depend on which
                        // path ran (warm changes the work, not the
                        // answers). Its pivots are not counted either —
                        // counted dual pivots always ship inside an
                        // accepted result's `iterations`, keeping
                        // `dual_pivots` a subset of the pivot total.
                        if out.lp.status != LpStatus::IterLimit {
                            node_warm_starts += 1;
                            dual_pivots += out.dual_pivots;
                            if out.lp.status == LpStatus::Optimal {
                                state = Some(st);
                            }
                            lp = Some(out.lp);
                        }
                    }
                }
            }
            let mut lp = lp.unwrap_or_else(|| {
                if opts.dual_simplex {
                    let (l, s) = simplex::solve_with_state(&work, iter_limit);
                    state = s;
                    l
                } else {
                    // Cold mode: never build (or hand down) a warm state,
                    // so the A/B baseline pays none of the warm-path cost.
                    simplex::solve(&work, iter_limit)
                }
            });
            lp_solves += 1;
            lp_iterations += lp.iterations;
            basis_refactorizations += lp.refactorizations;
            eta_updates += lp.eta_updates;

            loop {
                match lp.status {
                    LpStatus::Infeasible => break 'node NodeOutcome::Pruned,
                    LpStatus::Unbounded => {
                        // Unbounded relaxation at the root means the MILP
                        // itself is unbounded or ill-posed; deeper in the
                        // tree it cannot happen (bounds only tighten), but
                        // handle it defensively.
                        break 'node if at_root {
                            NodeOutcome::UnboundedRoot
                        } else {
                            NodeOutcome::Pruned
                        };
                    }
                    LpStatus::IterLimit => break 'node NodeOutcome::BudgetHit,
                    LpStatus::Optimal => {}
                }

                if let Some((_, inc_obj)) = &incumbent {
                    if lp.objective >= *inc_obj - TOL {
                        break 'node NodeOutcome::Pruned;
                    }
                }

                // Most fractional integer variable.
                let mut branch_var: Option<(f64, usize)> = None;
                for &j in &int_vars {
                    let v = lp.x[j];
                    let frac = (v - v.round()).abs();
                    if frac > opts.int_tol {
                        let score = (v.fract() - 0.5).abs(); // smaller = more fractional
                        match branch_var {
                            Some((s, _)) if s <= score => {}
                            _ => branch_var = Some((score, j)),
                        }
                    }
                }
                let Some((_, j)) = branch_var else {
                    // Root exit: keep the final basis for the next
                    // identical solve — but only if it can be replayed
                    // against the caller's model as-is (no presolve
                    // renumbering, no tree-priced extra columns).
                    if at_root && !presolved && tree_columns == 0 {
                        root_basis = state.clone();
                    }
                    break 'node NodeOutcome::Incumbent(lp.x.clone());
                };

                // ---- In-tree pricing: the pool may be missing columns
                // that would let this fractional node land. Only consulted
                // once the search shows signs of struggle (healthy dives
                // land within a few nodes and must not pay for pricing),
                // and only while no incumbent exists — afterwards
                // subtrees are pruned against the incumbent, which new
                // columns could not reopen (in first-solution mode the
                // first incumbent returns immediately, so the gate is
                // vacuous there).
                if let Some(p) = pricer
                    .as_deref_mut()
                    .filter(|_| nodes >= opts.price_after_nodes && incumbent.is_none())
                {
                    let added = p.price(&mut work, &lp);
                    if !added.is_empty() {
                        tree_columns += added.len();
                        int_vars.extend(added.iter().filter(|&&v| work.is_integer(v)).map(|v| v.0));
                        // Re-solve with the new columns grafted onto this
                        // node's basis (no bound deltas: the snapshot
                        // already carries the node bounds). An
                        // iteration-limited warm graft is discarded and
                        // retried cold, exactly like at node entry.
                        let relp = match state.as_mut() {
                            Some(st) => dual::reoptimize(&work, iter_limit, st)
                                .filter(|o| o.lp.status != LpStatus::IterLimit)
                                .map(|o| {
                                    dual_pivots += o.dual_pivots;
                                    o.lp
                                }),
                            None => None,
                        };
                        lp = relp.unwrap_or_else(|| {
                            if opts.dual_simplex {
                                let (l, s) = simplex::solve_with_state(&work, iter_limit);
                                state = s;
                                l
                            } else {
                                simplex::solve(&work, iter_limit)
                            }
                        });
                        lp_solves += 1;
                        lp_iterations += lp.iterations;
                        basis_refactorizations += lp.refactorizations;
                        eta_updates += lp.eta_updates;
                        continue; // statuses and branching var re-derived
                    }
                }

                // Same capture rule as the integral root exit above.
                if at_root && !presolved && tree_columns == 0 {
                    root_basis = state.clone();
                }
                let (lb, ub) = work.bounds(VarId(j));
                break 'node NodeOutcome::Branch {
                    j,
                    v: lp.x[j],
                    lb,
                    ub,
                    obj: lp.objective,
                    state: state.take().map(Box::new),
                };
            }
        };

        for &(j, lb, ub) in &saved {
            work.set_bounds(VarId(j), lb, ub);
        }

        let (j, v, lb, ub, obj, state) = match outcome {
            NodeOutcome::Pruned => continue,
            NodeOutcome::BudgetHit => {
                budget_hit = true;
                continue;
            }
            NodeOutcome::UnboundedRoot => {
                unbounded_root = true;
                break 'search;
            }
            NodeOutcome::Incumbent(mut x) => {
                for &jj in &int_vars {
                    x[jj] = x[jj].round();
                }
                let obj = work.objective_value(&x);
                let better = incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc - TOL);
                if better {
                    incumbent = Some((x, obj));
                    if opts.first_solution {
                        break 'search;
                    }
                }
                continue;
            }
            NodeOutcome::Branch { j, v, lb, ub, obj, state } => (j, v, lb, ub, obj, state),
        };

        let floor = v.floor();
        let ceil = v.ceil();

        let mut down = node.bounds.clone();
        down.push((j, lb, floor.min(ub)));
        let mut up = node.bounds.clone();
        up.push((j, ceil.max(lb), ub));

        // Hand the node basis to the children: both when the tableau is
        // small, only the dive child when it is large (the sibling then
        // re-solves cold on backtrack, trading pivots for memory).
        let rc = state.map(|boxed| Rc::new(*boxed));
        let share_both = rc.as_ref().is_some_and(|s| s.weight() <= SHARE_CELL_BUDGET);
        let (warm_dive, warm_other) = if share_both { (rc.clone(), rc) } else { (rc, None) };

        let dive_down = v - floor <= 0.5;
        let down_node = Node {
            bounds: down,
            parent_bound: obj,
            warm: if dive_down { warm_dive.clone() } else { warm_other.clone() },
        };
        let up_node = Node {
            bounds: up,
            parent_bound: obj,
            warm: if dive_down { warm_other } else { warm_dive },
        };
        // DFS: push the less promising child first so the child closer to
        // the LP value is explored next (diving).
        if dive_down {
            stack.push(up_node);
            stack.push(down_node);
        } else {
            stack.push(down_node);
            stack.push(up_node);
        }
    }

    if unbounded_root {
        let result = MilpResult {
            status: MilpStatus::Unbounded,
            x: vec![],
            objective: f64::NEG_INFINITY,
            nodes,
            lp_iterations,
            lp_solves,
            presolve_rows_dropped,
            presolve_bounds_tightened,
            dual_pivots,
            node_warm_starts,
            tree_columns,
            basis_refactorizations,
            eta_updates,
        };
        return (result, None);
    }
    let result = match incumbent {
        Some((mut x, objective)) => {
            // Defensive: pricing is gated on `incumbent.is_none()`, so
            // the incumbent already spans every column and this is a
            // no-op; it pins the x-covers-all-columns invariant should
            // the gate ever change (zeros are sound — an absent column
            // contributes nothing to any row).
            x.resize(work.num_vars(), 0.0);
            // An exhausted stack proves optimality only over the columns
            // each pruned subtree saw: a column grafted later could have
            // re-opened an already-pruned (dominated or infeasible)
            // subtree, so any tree-priced column degrades the claim to
            // Feasible.
            let proven = !budget_hit && stack.is_empty() && tree_columns == 0;
            MilpResult {
                status: if proven { MilpStatus::Optimal } else { MilpStatus::Feasible },
                x,
                objective,
                nodes,
                lp_iterations,
                lp_solves,
                presolve_rows_dropped,
                presolve_bounds_tightened,
                dual_pivots,
                node_warm_starts,
                tree_columns,
                basis_refactorizations,
                eta_updates,
            }
        }
        None => MilpResult {
            status: if budget_hit { MilpStatus::Budget } else { MilpStatus::Infeasible },
            x: vec![],
            objective: f64::INFINITY,
            nodes,
            lp_iterations,
            lp_solves,
            presolve_rows_dropped,
            presolve_bounds_tightened,
            dual_pivots,
            node_warm_starts,
            tree_columns,
            basis_refactorizations,
            eta_updates,
        },
    };
    (result, root_basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation::*};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 10x1 + 13x2 + 7x3, 3x1 + 4x2 + 2x3 <= 6, x binary.
        // Best: x1 + x3 (weight 5, value 17) vs x2 + x3 (weight 6, value 20).
        let mut m = Model::new();
        let x1 = m.add_int_var(-10.0, 0.0, 1.0);
        let x2 = m.add_int_var(-13.0, 0.0, 1.0);
        let x3 = m.add_int_var(-7.0, 0.0, 1.0);
        m.add_con(&[(x1, 3.0), (x2, 4.0), (x3, 2.0)], Le, 6.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective, -20.0);
        assert_close(r.x[1], 1.0);
        assert_close(r.x[2], 1.0);
    }

    #[test]
    fn integer_rounding_gap() {
        // max x s.t. 2x <= 5, x integer => x = 2 (LP gives 2.5).
        let mut m = Model::new();
        let x = m.add_int_var(-1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 2.0)], Le, 5.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.x[0], 2.0);
    }

    #[test]
    fn lp_feasible_ip_infeasible() {
        // 2x + 2y = 3 with x, y binary: LP ok (0.75, 0.75), IP impossible.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 0.0, 1.0);
        let y = m.add_int_var(0.0, 0.0, 1.0);
        m.add_con(&[(x, 2.0), (y, 2.0)], Eq, 3.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_integer() {
        // min y s.t. y >= 1.3 x, x >= 2 integer, y continuous.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 2.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(y, 1.0), (x, -1.3)], Ge, 0.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.x[0], 2.0);
        assert_close(r.objective, 2.6);
    }

    #[test]
    fn equality_assignment() {
        // Assign 2 items to 2 slots, each exactly once; cost matrix
        // [[1, 10], [10, 1]] => diagonal assignment, cost 2.
        let mut m = Model::new();
        let a = [[1.0, 10.0], [10.0, 1.0]];
        let mut v = [[VarId(0); 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                v[i][j] = m.add_int_var(a[i][j], 0.0, 1.0);
            }
        }
        for (i, row) in v.iter().enumerate() {
            m.add_con(&[(row[0], 1.0), (row[1], 1.0)], Eq, 1.0);
            m.add_con(&[(v[0][i], 1.0), (v[1][i], 1.0)], Eq, 1.0);
        }
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective, 2.0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A deliberately nasty IP with an immediate node budget.
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|_| m.add_int_var(-1.0, 0.0, 1.0)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_con(&terms, Le, 11.0);
        let opts = MilpOptions { max_nodes: 1, ..Default::default() };
        let r = solve_milp(&m, &opts);
        // With one node we solve only the root LP: fractional, no incumbent.
        assert_eq!(r.status, MilpStatus::Budget);
    }

    #[test]
    fn first_solution_mode_stops_early() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.add_int_var(-1.0, 0.0, 1.0)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_con(&terms, Le, 7.0);
        let opts = MilpOptions { first_solution: true, ..Default::default() };
        let r = solve_milp(&m, &opts);
        assert_eq!(r.status, MilpStatus::Feasible);
        assert!(!r.x.is_empty());
        assert!(m.is_feasible_point(&r.x, 1e-6));
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer vars: B&B reduces to a single LP solve.
        let mut m = Model::new();
        let _x = m.add_var(-1.0, 0.0, 3.5);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.x[0], 3.5);
        assert_eq!(r.nodes, 1);
    }

    #[test]
    fn unbounded_root_reported() {
        let mut m = Model::new();
        m.add_int_var(-1.0, 0.0, f64::INFINITY);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Unbounded);
    }

    /// A mid-size IP that forces real branching, solved with and without
    /// the dual engine: identical status/objective, and the warm path
    /// must both engage and pivot less.
    #[test]
    fn dual_warm_starts_match_cold_and_save_pivots() {
        let mut m = Model::new();
        let n = 14;
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_int_var(-((j % 5 + 1) as f64) - j as f64 * 1e-9, 0.0, 3.0))
            .collect();
        for k in 0..4 {
            let terms: Vec<_> =
                vars.iter().enumerate().map(|(j, &v)| (v, ((j + k) % 4 + 1) as f64)).collect();
            m.add_con(&terms, Le, 17.0 + k as f64);
        }
        let warm = solve_milp(&m, &MilpOptions::default());
        let cold = solve_milp(&m, &MilpOptions { dual_simplex: false, ..Default::default() });
        assert_eq!(warm.status, cold.status);
        assert_close(warm.objective, cold.objective);
        assert!(warm.node_warm_starts > 0, "warm starts never engaged");
        assert!(warm.dual_pivots > 0, "dual engine never pivoted");
        assert_eq!(cold.node_warm_starts, 0);
        assert_eq!(cold.dual_pivots, 0);
        assert!(
            warm.lp_iterations < cold.lp_iterations,
            "warm {} pivots not below cold {}",
            warm.lp_iterations,
            cold.lp_iterations
        );
    }

    /// In-tree pricing: a covering IP whose initial pool admits only a
    /// fractional cover; the pricer supplies the missing unit column at
    /// the first fractional node and the solve must land on it.
    #[test]
    fn tree_pricer_rescues_restricted_pool() {
        // Cover exactly 3 units with a pool of one double-unit column:
        // 2x = 3 has the fractional LP optimum x = 1.5 and no integer
        // solution. The missing single-unit column fixes it (x=1, y=1).
        let mut m = Model::new();
        let x = m.add_int_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 2.0)], Eq, 3.0);

        struct UnitPricer {
            fired: bool,
        }
        impl TreePricer for UnitPricer {
            fn price(&mut self, model: &mut Model, lp: &LpResult) -> Vec<VarId> {
                assert!(!lp.duals.is_empty(), "pricer must see node duals");
                if self.fired {
                    return vec![];
                }
                self.fired = true;
                let v = model.add_column(1.0, 0.0, f64::INFINITY, &[(0, 1.0)]);
                model.set_integer(v, true);
                vec![v]
            }
        }

        let opts = MilpOptions { first_solution: true, price_after_nodes: 0, ..Default::default() };
        // Without the pricer the restricted pool is integrally infeasible.
        let plain = solve_milp(&m, &opts);
        assert_eq!(plain.status, MilpStatus::Infeasible);
        // With it the unit column completes the cover.
        let mut pricer = UnitPricer { fired: false };
        let priced = solve_milp_with(&m, &opts, Some(&mut pricer));
        assert_eq!(priced.status, MilpStatus::Feasible);
        assert_eq!(priced.tree_columns, 1);
        assert_eq!(priced.x.len(), 2, "result must cover the priced column");
        assert_close(2.0 * priced.x[0] + priced.x[1], 3.0);
        assert!(priced.x[1] > 0.5, "the priced column must carry load");
    }

    /// A column priced before the incumbent is part of the result's
    /// index space even when the incumbent never uses it.
    #[test]
    fn result_spans_pre_incumbent_priced_columns() {
        let mut m = Model::new();
        let x = m.add_int_var(-1.0, 0.0, 5.0);
        let y = m.add_int_var(-1.0, 0.0, 5.0);
        m.add_con(&[(x, 2.0), (y, 2.0)], Le, 5.0);

        // Fires once at the first fractional node; the added column is
        // useless (cost 10) so the incumbent never includes it.
        struct NoisePricer {
            fired: bool,
        }
        impl TreePricer for NoisePricer {
            fn price(&mut self, model: &mut Model, _lp: &LpResult) -> Vec<VarId> {
                if self.fired {
                    return vec![];
                }
                self.fired = true;
                let v = model.add_column(10.0, 0.0, f64::INFINITY, &[(0, 1.0)]);
                model.set_integer(v, true);
                vec![v]
            }
        }
        let mut pricer = NoisePricer { fired: false };
        let opts = MilpOptions { first_solution: true, price_after_nodes: 0, ..Default::default() };
        let r = solve_milp_with(&m, &opts, Some(&mut pricer));
        assert_eq!(r.status, MilpStatus::Feasible);
        assert_eq!(r.x.len(), 3);
        assert_close(r.x[2], 0.0);
    }

    /// The root-basis seam: a second, identical solve seeded with the
    /// first solve's captured root basis must return a bit-identical
    /// result, with the seed actually engaging at the root.
    #[test]
    fn seeded_resolve_is_bit_identical() {
        let mut m = Model::new();
        let n = 10;
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_int_var(-((j % 4 + 1) as f64) - j as f64 * 1e-9, 0.0, 2.0))
            .collect();
        for k in 0..3 {
            let terms: Vec<_> =
                vars.iter().enumerate().map(|(j, &v)| (v, ((j + k) % 3 + 1) as f64)).collect();
            m.add_con(&terms, Le, 11.0 + k as f64);
        }

        struct NeverPricer;
        impl TreePricer for NeverPricer {
            fn price(&mut self, _model: &mut Model, _lp: &LpResult) -> Vec<VarId> {
                vec![]
            }
        }

        let opts = MilpOptions { first_solution: true, ..Default::default() };
        let mut p1 = NeverPricer;
        let (cold, basis) = solve_milp_seeded(&m, &opts, Some(&mut p1), None);
        let basis = basis.expect("root basis must be captured when presolve is skipped");
        let mut p2 = NeverPricer;
        let (warm, basis2) = solve_milp_seeded(&m, &opts, Some(&mut p2), Some(&basis));
        assert_eq!(warm.status, cold.status);
        assert_eq!(warm.x, cold.x, "seeded solve must be bit-identical");
        assert_eq!(warm.nodes, cold.nodes, "seeded tree must match the unseeded tree");
        assert!(
            warm.node_warm_starts > cold.node_warm_starts,
            "the root seed never engaged (warm {} vs cold {})",
            warm.node_warm_starts,
            cold.node_warm_starts
        );
        assert!(basis2.is_some(), "a seeded solve must re-capture the root basis");
    }

    /// Without a pricer or seed, presolve runs and the root basis is
    /// withheld (it addresses the reduced model, not the caller's).
    #[test]
    fn presolved_solve_withholds_root_basis() {
        let mut m = Model::new();
        let x = m.add_int_var(-1.0, 0.0, 5.0);
        let y = m.add_int_var(-1.0, 0.0, 5.0);
        m.add_con(&[(x, 2.0), (y, 2.0)], Le, 5.0);
        let (r, basis) = solve_milp_seeded(&m, &MilpOptions::default(), None, None);
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(basis.is_none());
    }

    proptest::proptest! {
        /// On random bounded pure-binary knapsacks the B&B optimum must
        /// match brute-force enumeration.
        #[test]
        fn matches_bruteforce_knapsack(
            values in proptest::collection::vec(1u32..20, 3..9),
            weights in proptest::collection::vec(1u32..10, 9),
            cap in 5u32..30,
        ) {
            let n = values.len();
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|j| m.add_int_var(-(values[j] as f64), 0.0, 1.0)).collect();
            let terms: Vec<_> = vars.iter().enumerate().map(|(j, &v)| (v, weights[j] as f64)).collect();
            m.add_con(&terms, Le, cap as f64);
            let r = solve_milp(&m, &MilpOptions::default());
            proptest::prop_assert_eq!(r.status, MilpStatus::Optimal);

            let mut best = 0i64;
            for mask in 0u32..(1 << n) {
                let w: u32 = (0..n).filter(|&j| mask >> j & 1 == 1).map(|j| weights[j]).sum();
                if w <= cap {
                    let v: i64 = (0..n).filter(|&j| mask >> j & 1 == 1).map(|j| values[j] as i64).sum();
                    best = best.max(v);
                }
            }
            proptest::prop_assert!((r.objective + best as f64).abs() < 1e-6,
                "bb={} brute={}", -r.objective, best);
        }

        /// Warm-started and cold node LPs must agree on every random
        /// knapsack's status and optimum.
        #[test]
        fn dual_engine_agrees_with_cold_on_random_ips(
            values in proptest::collection::vec(1u32..20, 4..8),
            weights in proptest::collection::vec(1u32..10, 8),
            cap in 5u32..30,
        ) {
            let n = values.len();
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|j| m.add_int_var(-(values[j] as f64), 0.0, 2.0)).collect();
            let terms: Vec<_> = vars.iter().enumerate().map(|(j, &v)| (v, weights[j] as f64)).collect();
            m.add_con(&terms, Le, cap as f64);
            let warm = solve_milp(&m, &MilpOptions::default());
            let cold = solve_milp(&m, &MilpOptions { dual_simplex: false, ..Default::default() });
            proptest::prop_assert_eq!(warm.status, cold.status);
            proptest::prop_assert!((warm.objective - cold.objective).abs() < 1e-6,
                "warm={} cold={}", warm.objective, cold.objective);
        }
    }
}
