//! Presolve: bound tightening and redundancy elimination before the
//! branch-and-bound search.
//!
//! The pattern MILPs the EPTAS generates contain many singleton rows
//! (upper bounds the modeller wrote as constraints) and rows made
//! redundant by variable bounds. Presolve runs to a fixpoint:
//!
//! * **singleton rows** become variable bounds and are dropped;
//! * **integer bounds** are rounded inward (`ceil(lb)`, `floor(ub)`);
//! * **activity analysis**: a row whose worst-case activity already
//!   satisfies it is dropped; one whose best-case activity cannot satisfy
//!   it proves infeasibility.
//!
//! Variables are never removed, so solutions of the reduced model are
//! solutions of the original — the reduction is safe to apply at the
//! root of the branch-and-bound tree.

use crate::model::{Model, Relation};
use crate::TOL;

/// Outcome of presolving.
#[derive(Debug, Clone)]
pub enum PresolveStatus {
    /// The reduced (equivalent) model plus reduction statistics.
    Reduced { model: Model, rows_dropped: usize, bounds_tightened: usize },
    /// The constraints are infeasible (proven without any LP).
    Infeasible,
}

/// Presolve `model` to a fixpoint (bounded number of passes).
pub fn presolve(model: &Model) -> PresolveStatus {
    let mut m = model.clone();
    let mut rows_dropped = 0usize;
    let mut bounds_tightened = 0usize;

    // Round integer bounds inward once up front.
    for j in 0..m.num_vars() {
        let v = crate::model::VarId(j);
        if m.is_integer(v) {
            let (lb, ub) = m.bounds(v);
            let new_lb = (lb - TOL).ceil();
            let new_ub = if ub.is_finite() { (ub + TOL).floor() } else { ub };
            if new_lb > new_ub + TOL {
                return PresolveStatus::Infeasible;
            }
            if new_lb > lb + TOL || new_ub < ub - TOL {
                bounds_tightened += 1;
            }
            m.set_bounds(v, new_lb, new_ub.max(new_lb));
        }
    }

    for _pass in 0..10 {
        let mut changed = false;
        let mut keep = Vec::with_capacity(m.cons.len());
        for con in std::mem::take(&mut m.cons) {
            // Singleton row -> bound.
            if con.terms.len() == 1 {
                let (j, a) = con.terms[0];
                let v = crate::model::VarId(j);
                let (mut lb, mut ub) = m.bounds(v);
                let bound = con.rhs / a;
                let tighten_ub = |ub: &mut f64, b: f64| {
                    if b < *ub - TOL {
                        *ub = b;
                        true
                    } else {
                        false
                    }
                };
                let tighten_lb = |lb: &mut f64, b: f64| {
                    if b > *lb + TOL {
                        *lb = b;
                        true
                    } else {
                        false
                    }
                };
                let t = match (con.rel, a > 0.0) {
                    (Relation::Le, true) | (Relation::Ge, false) => tighten_ub(&mut ub, bound),
                    (Relation::Le, false) | (Relation::Ge, true) => tighten_lb(&mut lb, bound),
                    (Relation::Eq, _) => {
                        let a1 = tighten_ub(&mut ub, bound);
                        let b1 = tighten_lb(&mut lb, bound);
                        a1 || b1
                    }
                };
                if m.is_integer(v) {
                    lb = (lb - TOL).ceil();
                    ub = if ub.is_finite() { (ub + TOL).floor() } else { ub };
                }
                if lb > ub + TOL {
                    return PresolveStatus::Infeasible;
                }
                m.set_bounds(v, lb, ub.max(lb));
                if t {
                    bounds_tightened += 1;
                    changed = true;
                }
                rows_dropped += 1;
                continue; // row absorbed into bounds
            }
            // Activity analysis.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            let mut max_finite = true;
            for &(j, a) in &con.terms {
                let (lb, ub) = m.bounds(crate::model::VarId(j));
                if a > 0.0 {
                    min_act += a * lb;
                    if ub.is_finite() {
                        max_act += a * ub;
                    } else {
                        max_finite = false;
                    }
                } else {
                    if ub.is_finite() {
                        min_act += a * ub;
                    } else {
                        min_act = f64::NEG_INFINITY;
                    }
                    max_act += a * lb;
                }
            }
            match con.rel {
                Relation::Le => {
                    if min_act > con.rhs + 1e-6 {
                        return PresolveStatus::Infeasible;
                    }
                    if max_finite && max_act <= con.rhs + TOL {
                        rows_dropped += 1;
                        changed = true;
                        continue; // always satisfied
                    }
                }
                Relation::Ge => {
                    if max_finite && max_act < con.rhs - 1e-6 {
                        return PresolveStatus::Infeasible;
                    }
                    if min_act.is_finite() && min_act >= con.rhs - TOL {
                        rows_dropped += 1;
                        changed = true;
                        continue;
                    }
                }
                Relation::Eq => {
                    if min_act > con.rhs + 1e-6 || (max_finite && max_act < con.rhs - 1e-6) {
                        return PresolveStatus::Infeasible;
                    }
                }
            }
            keep.push(con);
        }
        m.cons = keep;
        if !changed {
            break;
        }
    }

    // Rows were dropped and renumbered above: refresh the column-major
    // mirror the revised simplex builds from.
    m.rebuild_col_terms();
    PresolveStatus::Reduced { model: m, rows_dropped, bounds_tightened }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpStatus, Model, Relation::*, VarId};

    #[test]
    fn singleton_becomes_bound() {
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 2.0)], Le, 10.0);
        match presolve(&m) {
            PresolveStatus::Reduced { model, rows_dropped, .. } => {
                assert_eq!(rows_dropped, 1);
                assert_eq!(model.num_cons(), 0);
                assert_eq!(model.bounds(x), (0.0, 5.0));
            }
            PresolveStatus::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn integer_bounds_rounded() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 2.0)], Le, 5.0); // x <= 2.5 -> x <= 2
        match presolve(&m) {
            PresolveStatus::Reduced { model, .. } => {
                assert_eq!(model.bounds(x).1, 2.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn crossing_singletons_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 1.0);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        assert!(matches!(presolve(&m), PresolveStatus::Infeasible));
    }

    #[test]
    fn redundant_row_dropped() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 1.0);
        let y = m.add_var(0.0, 0.0, 1.0);
        m.add_con(&[(x, 1.0), (y, 1.0)], Le, 5.0); // max activity 2 <= 5
        match presolve(&m) {
            PresolveStatus::Reduced { model, rows_dropped, .. } => {
                assert_eq!(rows_dropped, 1);
                assert_eq!(model.num_cons(), 0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn impossible_activity_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 1.0);
        let y = m.add_var(0.0, 0.0, 1.0);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 3.0); // max activity 2 < 3
        assert!(matches!(presolve(&m), PresolveStatus::Infeasible));
    }

    #[test]
    fn integer_gap_detected() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 0.4, 0.6); // no integer in [0.4, 0.6]
        let _ = x;
        assert!(matches!(presolve(&m), PresolveStatus::Infeasible));
    }

    proptest::proptest! {
        /// Presolve preserves the LP optimum on random feasible models.
        #[test]
        fn preserves_lp_optimum(
            seed_x in proptest::collection::vec(0.0f64..3.0, 3..5),
            rows in proptest::collection::vec(
                proptest::collection::vec(-1.0f64..2.0, 5), 2..6),
            costs in proptest::collection::vec(-1.0f64..1.0, 5),
        ) {
            let n = seed_x.len();
            let mut m = Model::new();
            let vars: Vec<VarId> = (0..n).map(|j| m.add_var(costs[j], 0.0, 8.0)).collect();
            for row in &rows {
                let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &c)| (v, c)).collect();
                let lhs: f64 = row.iter().take(n).zip(&seed_x).map(|(c, x)| c * x).sum();
                m.add_con(&terms[..n], Le, lhs + 0.3);
            }
            let before = m.solve_lp();
            proptest::prop_assert_eq!(before.status, LpStatus::Optimal);
            match presolve(&m) {
                PresolveStatus::Reduced { model, .. } => {
                    let after = model.solve_lp();
                    proptest::prop_assert_eq!(after.status, LpStatus::Optimal);
                    proptest::prop_assert!((after.objective - before.objective).abs() < 1e-5,
                        "objective moved: {} -> {}", before.objective, after.objective);
                }
                PresolveStatus::Infeasible => {
                    proptest::prop_assert!(false, "feasible model declared infeasible");
                }
            }
        }
    }
}
