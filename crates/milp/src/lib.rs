//! LP / MILP substrate for `bagsched`.
//!
//! The EPTAS of Grage, Jansen and Klein reduces large/medium job placement
//! to a mixed-integer linear program over machine *patterns* (paper §3,
//! constraints (1)–(9)) and solves it with Kannan's fixed-dimension integer
//! programming algorithm. Kannan's algorithm is a worst-case device; any
//! exact MILP oracle answers the same feasibility question, so this crate
//! implements the substrate from scratch:
//!
//! * [`Model`] — a small modelling layer (variables with bounds and
//!   integrality, linear constraints, minimization objective) with sparse
//!   column storage,
//! * [`simplex`] — a sparse *revised* two-phase primal simplex: the basis
//!   is held as an eta-file factorization with
//!   Forrest–Tomlin-style updates per pivot and periodic
//!   refactorization, warm-started re-solves for column generation, and
//!   physical column removal ([`purge_columns`]) for master-pool
//!   lifecycle management,
//! * [`dual`] — a dual-simplex engine that re-optimizes a warm basis
//!   after variable-bound changes (the branch-and-bound child-node case),
//! * [`branch`] — depth-first branch & bound on the LP relaxation, with
//!   node/iteration budgets, incumbent tracking, parent-basis node warm
//!   starts, and an optional in-tree pricing hook ([`TreePricer`]),
//! * [`presolve`] — root-node bound tightening and redundancy
//!   elimination (singleton rows, activity analysis).
//!
//! The solver is exact up to floating-point tolerance ([`TOL`]); budgets
//! are explicit and exhausting one is reported, never silent.

pub mod branch;
pub mod dual;
pub(crate) mod factor;
pub mod model;
pub mod presolve;
pub mod simplex;

pub use branch::{
    solve_milp, solve_milp_seeded, solve_milp_with, CancelProbe, MilpOptions, MilpResult,
    MilpStatus, TreePricer,
};
pub use dual::DualOutcome;
pub use model::{LpResult, LpStatus, Model, Relation, VarId};
pub use presolve::{presolve, PresolveStatus};
pub use simplex::{purge_columns, WarmState};

/// Numerical tolerance used for reduced costs, pivots, integrality and
/// constraint satisfaction throughout the solver.
pub const TOL: f64 = 1e-7;
