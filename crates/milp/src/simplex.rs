//! Two-phase primal simplex on a dense tableau, with warm-started
//! re-solves for column generation.
//!
//! Scope: the pattern MILP relaxations the EPTAS generates are dense-ish
//! and small (hundreds of rows/columns), so a dense tableau is both simple
//! and fast enough; sparse revised simplex would be over-engineering here.
//!
//! Method: variables are shifted to `x' = x - lb >= 0`; finite upper
//! bounds become explicit `x' <= ub - lb` rows. Inequalities get slack /
//! surplus variables, rows are sign-normalized to `rhs >= 0`, and rows
//! without a natural slack basis get artificial variables. Phase 1
//! minimizes the artificial sum (infeasible iff positive), phase 2 the
//! shifted objective. Dantzig pricing with a switch to Bland's rule after
//! a degeneracy threshold guards against cycling.
//!
//! **Warm starts** ([`WarmState`], [`resolve`]): an optimal solve can
//! return its final tableau. After the caller appends columns
//! ([`Model::add_column`]) and/or changes objective coefficients, the old
//! basis is still primal feasible, so the re-solve skips phase 1 entirely
//! and continues phase 2 from the previous optimum: pivot work scales
//! with the new columns instead of the whole tableau. New columns are
//! mapped into the basis via the implicit `B^-1` that the initial
//! identity columns (slack/artificial) carry through every pivot. Any
//! structural change the warm path cannot absorb — changed bounds, new
//! constraints, non-`[0, inf)` bounds on appended variables — is detected
//! and falls back to a cold solve.

use crate::model::{LpResult, LpStatus, Model, Relation};
use crate::TOL;

/// A generous iteration budget scaled to model size.
pub fn default_iter_limit(model: &Model) -> usize {
    // Simplex converges in O(rows) iterations in practice; the hard cap
    // keeps a single degenerate solve on a large dense tableau from
    // dominating the branch-and-bound wall clock.
    (500 * (model.num_vars() + model.num_cons()) + 2000).min(60_000)
}

#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// Row-major `(rows) x (cols + 1)`; last column is the RHS.
    pub(crate) a: Vec<f64>,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Basic variable (column index) of each row.
    pub(crate) basis: Vec<usize>,
    /// Objective row: reduced costs (length `cols`), last entry = objective value (negated z).
    pub(crate) obj: Vec<f64>,
}

impl Tableau {
    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    pub(crate) fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    #[inline]
    pub(crate) fn rhs_mut(&mut self, r: usize) -> &mut f64 {
        let cols = self.cols;
        self.at_mut(r, cols)
    }

    /// Gauss–Jordan pivot on `(prow, pcol)`.
    pub(crate) fn pivot(&mut self, prow: usize, pcol: usize) {
        let width = self.cols + 1;
        let pval = self.at(prow, pcol);
        debug_assert!(pval.abs() > TOL, "pivot element too small: {pval}");
        let inv = 1.0 / pval;
        let prow_off = prow * width;
        for c in 0..width {
            self.a[prow_off + c] *= inv;
        }
        self.a[prow_off + pcol] = 1.0;
        for r in 0..self.rows {
            if r == prow {
                continue;
            }
            let factor = self.at(r, pcol);
            if factor.abs() <= 1e-12 {
                continue;
            }
            let r_off = r * width;
            for c in 0..width {
                self.a[r_off + c] -= factor * self.a[prow_off + c];
            }
            self.a[r_off + pcol] = 0.0;
        }
        let factor = self.obj[pcol];
        if factor.abs() > 1e-12 {
            for c in 0..width {
                self.obj[c] -= factor * self.a[prow_off + c];
            }
            self.obj[pcol] = 0.0;
        }
        self.basis[prow] = pcol;
    }

    /// Ratio test: leaving row for entering column `pcol`, or `None` if the
    /// column is unbounded. Ties break toward the smallest basis index
    /// (lexicographic-ish, helps against cycling).
    fn ratio_test(&self, pcol: usize) -> Option<usize> {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
        for r in 0..self.rows {
            let a = self.at(r, pcol);
            if a > TOL {
                let ratio = self.rhs(r) / a;
                let key = (ratio, self.basis[r]);
                match best {
                    Some((br, bb, _)) if (br, bb) <= key => {}
                    _ => best = Some((ratio, self.basis[r], r)),
                }
            }
        }
        best.map(|(_, _, r)| r)
    }

    /// One optimization run on the current objective row.
    /// Only columns `c` with `allowed(c)` may enter.
    pub(crate) fn optimize(
        &mut self,
        allowed: impl Fn(usize) -> bool,
        iter_limit: usize,
        iterations: &mut usize,
    ) -> LpStatus {
        // Dantzig pricing stalls on massively degenerate tableaus (ties
        // upon ties re-enter the same columns without moving the
        // objective). Switch to Bland's rule — guaranteed finite — once
        // the objective has not improved for a streak proportional to
        // the row count, not half the global budget: a single stalled
        // solve must cost O(rows) wasted pivots, not tens of thousands.
        let stall_limit = 10 * self.rows + 50;
        let mut stalled = 0usize;
        let mut bland = false;
        let mut last_obj = -self.obj[self.cols];
        loop {
            if *iterations >= iter_limit {
                return LpStatus::IterLimit;
            }
            // Entering column.
            let entering = if !bland {
                // Dantzig: most negative reduced cost.
                let mut best: Option<(f64, usize)> = None;
                for c in 0..self.cols {
                    let rc = self.obj[c];
                    if rc < -TOL && allowed(c) {
                        match best {
                            Some((b, _)) if b <= rc => {}
                            _ => best = Some((rc, c)),
                        }
                    }
                }
                best.map(|(_, c)| c)
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..self.cols).find(|&c| self.obj[c] < -TOL && allowed(c))
            };
            let Some(pcol) = entering else {
                return LpStatus::Optimal;
            };
            let Some(prow) = self.ratio_test(pcol) else {
                return LpStatus::Unbounded;
            };
            self.pivot(prow, pcol);
            *iterations += 1;
            let obj = -self.obj[self.cols];
            if obj < last_obj - TOL {
                // Real progress: resume Dantzig (Bland crawls). Each
                // strict improvement is final, so the alternation still
                // terminates.
                last_obj = obj;
                stalled = 0;
                bland = false;
            } else {
                stalled += 1;
                if stalled >= stall_limit {
                    bland = true;
                }
            }
        }
    }
}

/// The reusable outcome of an optimal solve: the final tableau plus the
/// bookkeeping needed to graft new columns onto it. Opaque to callers;
/// obtain one from [`solve_with_state`] and feed it to [`resolve`].
#[derive(Debug, Clone)]
pub struct WarmState {
    pub(crate) t: Tableau,
    /// Per row: the column that held the initial identity basis (its
    /// current tableau column is the matching column of `B^-1`).
    pub(crate) init_col: Vec<usize>,
    /// Per model-constraint row: the sign normalization applied at build.
    pub(crate) row_sign: Vec<f64>,
    /// Where to read each constraint's dual off the objective row.
    pub(crate) dual_src: Vec<(usize, f64)>,
    /// Artificial column range `[art_start, art_end)` (never re-enters).
    pub(crate) art_start: usize,
    pub(crate) art_end: usize,
    /// Tableau column -> model variable (None for slack/artificial).
    pub(crate) var_of_col: Vec<Option<usize>>,
    /// Bounds snapshot of every variable seen so far; a mismatch on
    /// re-solve means the warm basis is stale (the dual engine absorbs
    /// the mismatch instead — see [`crate::dual::reoptimize`]).
    pub(crate) bounds: Vec<(f64, f64)>,
    /// Per variable seen at build time: the tableau row carrying its
    /// `x' <= ub - lb` bound row, if the variable had a finite upper
    /// bound. The dual engine edits these rows in place when branching
    /// tightens bounds. Appended columns (always `[0, inf)`) get `None`.
    pub(crate) bound_row_of_var: Vec<Option<usize>>,
    /// Objective-coefficient snapshot matching the current objective row;
    /// re-solves skip the O(rows*cols) objective rebuild when neither
    /// columns nor costs changed (the pure bound-change B&B child case).
    pub(crate) costs: Vec<f64>,
    pub(crate) num_cons: usize,
}

/// Solve the LP relaxation of `model` (integrality ignored).
pub fn solve(model: &Model, iter_limit: usize) -> LpResult {
    solve_with_state(model, iter_limit).0
}

/// Like [`solve`], additionally returning a [`WarmState`] when the solve
/// reached optimality (and the model has at least one row — trivial
/// models have no tableau to reuse).
pub fn solve_with_state(model: &Model, iter_limit: usize) -> (LpResult, Option<WarmState>) {
    let n = model.num_vars();
    let lbs: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let obj_offset: f64 = model.vars.iter().map(|v| v.obj * v.lb).sum();

    // Assemble rows over shifted variables. Each row: (dense coeffs over
    // structural vars, relation, rhs).
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
    for con in &model.cons {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for &(j, c) in &con.terms {
            coeffs[j] += c;
            shift += c * lbs[j];
        }
        rows.push((coeffs, con.rel, con.rhs - shift));
    }
    let mut bound_row_of_var: Vec<Option<usize>> = vec![None; n];
    for (j, v) in model.vars.iter().enumerate() {
        if v.ub.is_finite() {
            let range = v.ub - v.lb;
            if range < -TOL {
                return (
                    LpResult {
                        status: LpStatus::Infeasible,
                        x: vec![],
                        objective: 0.0,
                        iterations: 0,
                        duals: vec![],
                    },
                    None,
                );
            }
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            bound_row_of_var[j] = Some(rows.len());
            rows.push((coeffs, Relation::Le, range.max(0.0)));
        }
    }

    if rows.is_empty() {
        // No constraints at all: optimum sits at the lower bounds unless
        // some cost is negative (then x_j -> +inf is improving).
        if model.vars.iter().any(|v| v.obj < -TOL) {
            return (
                LpResult {
                    status: LpStatus::Unbounded,
                    x: vec![],
                    objective: 0.0,
                    iterations: 0,
                    duals: vec![],
                },
                None,
            );
        }
        return (
            LpResult {
                status: LpStatus::Optimal,
                x: lbs,
                objective: obj_offset,
                iterations: 0,
                duals: vec![],
            },
            None,
        );
    }

    let m = rows.len();
    // Column layout: structural (n) | slacks (one per inequality) | artificials.
    let num_slacks = rows.iter().filter(|(_, rel, _)| *rel != Relation::Eq).count();
    // Worst case every row needs an artificial.
    let cols_upper = n + num_slacks + m;
    let width = cols_upper + 1;
    let mut t = Tableau {
        a: vec![0.0; m * width],
        rows: m,
        cols: cols_upper,
        basis: vec![usize::MAX; m],
        obj: vec![0.0; width],
    };

    let mut next_slack = n;
    let mut next_art = n + num_slacks;
    let art_start = n + num_slacks;
    // Where to read each model constraint's dual off the final objective
    // row: `(column, multiplier)` such that `y_r = multiplier * obj[col]`.
    // A slack/surplus column of row `r` is `±sign * e_r`, an artificial is
    // `e_r`, and the stored row is `sign` times the original one; solving
    // `obj[col] = 0 - lambda_r * a_col` for the simplex multiplier and
    // mapping back through the sign normalization gives the multipliers
    // below.
    let ncons = model.cons.len();
    let mut dual_src: Vec<(usize, f64)> = Vec::with_capacity(ncons);
    // Per row: the column holding the initial identity basis, and (for
    // model-constraint rows) the sign normalization — both needed to graft
    // new columns onto a warm tableau later.
    let mut init_col: Vec<usize> = Vec::with_capacity(m);
    let mut row_sign: Vec<f64> = Vec::with_capacity(ncons);
    for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        let neg = *rhs < 0.0;
        let sign = if neg { -1.0 } else { 1.0 };
        if r < ncons {
            row_sign.push(sign);
        }
        for (j, &c) in coeffs.iter().enumerate() {
            *t.at_mut(r, j) = sign * c;
        }
        *t.at_mut(r, cols_upper) = sign * rhs;
        let slack_coef = match rel {
            Relation::Le => {
                let s = next_slack;
                next_slack += 1;
                *t.at_mut(r, s) = sign;
                Some((s, sign))
            }
            Relation::Ge => {
                let s = next_slack;
                next_slack += 1;
                *t.at_mut(r, s) = -sign;
                Some((s, -sign))
            }
            Relation::Eq => None,
        };
        let art_col = match slack_coef {
            Some((s, coef)) if coef > 0.0 => {
                t.basis[r] = s;
                None
            }
            _ => {
                let a = next_art;
                next_art += 1;
                *t.at_mut(r, a) = 1.0;
                t.basis[r] = a;
                Some(a)
            }
        };
        init_col.push(t.basis[r]);
        if r < ncons {
            dual_src.push(match (rel, slack_coef) {
                (Relation::Le, Some((s, _))) => (s, -1.0),
                (Relation::Ge, Some((s, _))) => (s, 1.0),
                _ => (art_col.expect("Eq rows always get an artificial"), -sign),
            });
        }
    }
    let num_arts = next_art - art_start;

    let mut iterations = 0usize;

    // ---- Phase 1: minimize the sum of artificials. ----
    if num_arts > 0 {
        // obj row = -(sum of rows whose basis is artificial), expressing
        // reduced costs of cost-1 artificial basics.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let r_off = r * width;
                for c in 0..width {
                    t.obj[c] -= t.a[r_off + c];
                }
            }
        }
        // Artificial columns have cost 1.
        for c in art_start..next_art {
            t.obj[c] += 1.0;
        }
        let status = t.optimize(|_| true, iter_limit, &mut iterations);
        if status == LpStatus::IterLimit {
            return (
                LpResult { status, x: vec![], objective: 0.0, iterations, duals: vec![] },
                None,
            );
        }
        let phase1_obj = -t.obj[cols_upper];
        if phase1_obj > 1e-6 {
            return (
                LpResult {
                    status: LpStatus::Infeasible,
                    x: vec![],
                    objective: 0.0,
                    iterations,
                    duals: vec![],
                },
                None,
            );
        }
        // Drive remaining artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= art_start {
                if let Some(pcol) = (0..art_start).find(|&c| t.at(r, c).abs() > 1e-6) {
                    t.pivot(r, pcol);
                    iterations += 1;
                }
                // If no structural pivot exists the row is redundant
                // (all-zero); the artificial stays basic at value ~0 and we
                // simply never let artificials re-enter in phase 2.
            }
        }
    }

    // ---- Phase 2: minimize the real objective. ----
    t.obj.iter_mut().for_each(|v| *v = 0.0);
    for (j, v) in model.vars.iter().enumerate() {
        t.obj[j] = v.obj;
    }
    // Make reduced costs of basic variables zero.
    for r in 0..m {
        let b = t.basis[r];
        let cost = t.obj[b];
        if cost.abs() > 1e-12 {
            let r_off = r * width;
            for c in 0..width {
                t.obj[c] -= cost * t.a[r_off + c];
            }
            t.obj[b] = 0.0;
        }
    }
    let status = t.optimize(|c| c < art_start, iter_limit, &mut iterations);
    if status != LpStatus::Optimal {
        return (LpResult { status, x: vec![], objective: 0.0, iterations, duals: vec![] }, None);
    }

    // Extract solution.
    let mut x = lbs.clone();
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = lbs[b] + t.rhs(r).max(0.0);
        }
    }
    let objective = model.objective_value(&x);
    let duals = dual_src.iter().map(|&(col, mult)| mult * t.obj[col]).collect();
    let var_of_col = (0..cols_upper).map(|c| (c < n).then_some(c)).collect();
    let state = WarmState {
        t,
        init_col,
        row_sign,
        dual_src,
        art_start,
        // Unused artificial slots in [next_art, cols_upper) are all-zero
        // columns; keeping them inside the excluded range means they can
        // never enter on a warm re-solve either.
        art_end: cols_upper,
        var_of_col,
        bounds: model.vars.iter().map(|v| (v.lb, v.ub)).collect(),
        bound_row_of_var,
        costs: model.vars.iter().map(|v| v.obj).collect(),
        num_cons: ncons,
    };
    (LpResult { status: LpStatus::Optimal, x, objective, iterations, duals }, Some(state))
}

/// Warm re-solve: continue phase 2 from a previous optimal basis after
/// the caller appended columns and/or changed objective coefficients.
///
/// Returns `None` — leaving `state` untouched — when the model changed in
/// a way the warm basis cannot absorb: different constraint count,
/// changed bounds on previously-seen variables, or appended variables
/// whose bounds are not `[0, inf)`. The caller then falls back to a cold
/// [`solve_with_state`].
pub fn resolve(model: &Model, iter_limit: usize, state: &mut WarmState) -> Option<LpResult> {
    if model.cons.len() != state.num_cons {
        return None;
    }
    for (v, &(lb, ub)) in model.vars.iter().zip(&state.bounds) {
        if v.lb != lb || v.ub != ub {
            return None;
        }
    }
    if !graft_columns(model, state) {
        return None;
    }
    if obj_dirty(model, state) {
        rebuild_obj(model, state);
    }

    // ---- Phase 2 from the (still primal-feasible) previous basis. ----
    let mut iterations = 0usize;
    let (art_start, art_end) = (state.art_start, state.art_end);
    let status = state.t.optimize(|c| c < art_start || c >= art_end, iter_limit, &mut iterations);
    if status != LpStatus::Optimal {
        return Some(LpResult { status, x: vec![], objective: 0.0, iterations, duals: vec![] });
    }
    Some(extract_optimal(model, state, iterations))
}

/// Append the model's new columns (relative to the state's snapshot) onto
/// the warm tableau via the implicit `B^-1`. Returns `false` — leaving the
/// state untouched — when a column cannot be grafted (its bounds are not
/// `[0, inf)`, which would need a fresh bound row) or the model shrank.
pub(crate) fn graft_columns(model: &Model, state: &mut WarmState) -> bool {
    let n_old = state.bounds.len();
    let n_new = model.num_vars();
    if n_new < n_old {
        return false;
    }
    if model.vars[n_old..].iter().any(|v| v.lb != 0.0 || v.ub != f64::INFINITY) {
        return false;
    }
    let k = n_new - n_old;
    if k > 0 {
        // Signed raw coefficients per new variable over constraint rows
        // (appended variables never add bound rows: ub is infinite).
        let mut raw: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        for (r, con) in model.cons.iter().enumerate() {
            for &(j, c) in &con.terms {
                if j >= n_old {
                    raw[j - n_old].push((r, state.row_sign[r] * c));
                }
            }
        }
        let t = &mut state.t;
        let (old_cols, new_cols) = (t.cols, t.cols + k);
        let (old_width, new_width) = (old_cols + 1, new_cols + 1);
        let mut a = vec![0.0; t.rows * new_width];
        for r in 0..t.rows {
            a[r * new_width..r * new_width + old_cols]
                .copy_from_slice(&t.a[r * old_width..r * old_width + old_cols]);
            a[r * new_width + new_cols] = t.a[r * old_width + old_cols];
        }
        // Transformed column = B^-1 * (signed raw column); column r of
        // B^-1 is the current tableau column of row r's initial basis.
        for (vi, coeffs) in raw.iter().enumerate() {
            let col = old_cols + vi;
            for &(r, c) in coeffs {
                if c == 0.0 {
                    continue;
                }
                let bc = state.init_col[r];
                for i in 0..t.rows {
                    a[i * new_width + col] += c * t.a[i * old_width + bc];
                }
            }
        }
        t.a = a;
        t.cols = new_cols;
        for vi in 0..k {
            state.var_of_col.push(Some(n_old + vi));
            state.bound_row_of_var.push(None);
        }
        state.bounds.extend(model.vars[n_old..].iter().map(|v| (v.lb, v.ub)));
    }
    true
}

/// Whether the warm tableau's objective row no longer reflects the
/// model: columns were grafted (the row is short) or objective
/// coefficients changed since the snapshot. A pure bound-change re-solve
/// — the branch-and-bound child case — is clean and skips the
/// O(rows*cols) rebuild; Gauss–Jordan pivots keep the row valid.
pub(crate) fn obj_dirty(model: &Model, state: &WarmState) -> bool {
    state.t.obj.len() != state.t.cols + 1
        || model.num_vars() != state.costs.len()
        || model.vars.iter().zip(&state.costs).any(|(v, &c)| v.obj != c)
}

/// Rebuild the tableau's objective row from the model's current costs
/// against the current basis (reduced costs of basic variables zeroed).
pub(crate) fn rebuild_obj(model: &Model, state: &mut WarmState) {
    let t = &mut state.t;
    let width = t.cols + 1;
    t.obj = vec![0.0; width];
    for (col, vo) in state.var_of_col.iter().enumerate() {
        if let Some(v) = *vo {
            t.obj[col] = model.vars[v].obj;
        }
    }
    for r in 0..t.rows {
        let b = t.basis[r];
        let cost = t.obj[b];
        if cost.abs() > 1e-12 {
            let r_off = r * width;
            for c in 0..width {
                t.obj[c] -= cost * t.a[r_off + c];
            }
            t.obj[b] = 0.0;
        }
    }
    state.costs = model.vars.iter().map(|v| v.obj).collect();
}

/// Read the optimal solution and duals off a converged warm tableau.
pub(crate) fn extract_optimal(model: &Model, state: &WarmState, iterations: usize) -> LpResult {
    let t = &state.t;
    let lbs: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut x = lbs.clone();
    for r in 0..t.rows {
        if let Some(v) = state.var_of_col[t.basis[r]] {
            x[v] = lbs[v] + t.rhs(r).max(0.0);
        }
    }
    let objective = model.objective_value(&x);
    let duals = state.dual_src.iter().map(|&(col, mult)| mult * t.obj[col]).collect();
    LpResult { status: LpStatus::Optimal, x, objective, iterations, duals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation::*};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), z = 36.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, f64::INFINITY);
        let y = m.add_var(-5.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -36.0);
        assert_close(r.x[0], 2.0);
        assert_close(r.x[1], 6.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 => 10, e.g. (3, 7).
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Eq, 10.0);
        m.add_con(&[(x, 1.0)], Ge, 3.0);
        m.add_con(&[(y, 1.0)], Ge, 2.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 10.0);
        assert!(r.x[0] >= 3.0 - 1e-6 && r.x[1] >= 2.0 - 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 1.0);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        assert_eq!(m.solve_lp().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.0, f64::INFINITY);
        let y = m.add_var(0.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, -1.0)], Le, 1.0);
        assert_eq!(m.solve_lp().status, LpStatus::Unbounded);
    }

    #[test]
    fn respects_upper_bounds() {
        // min -x with x in [0, 7].
        let mut m = Model::new();
        let _x = m.add_var(-1.0, 0.0, 7.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.x[0], 7.0);
    }

    #[test]
    fn respects_shifted_lower_bounds() {
        // min x + y with x >= 2.5, y >= 1, x + y >= 5.
        let mut m = Model::new();
        let x = m.add_var(1.0, 2.5, f64::INFINITY);
        let y = m.add_var(1.0, 1.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 5.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 5.0);
    }

    #[test]
    fn no_constraints_sits_at_lb() {
        let mut m = Model::new();
        m.add_var(1.0, 2.0, f64::INFINITY);
        m.add_var(0.0, -1.0, f64::INFINITY);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 2.0);
        assert_close(r.x[1], -1.0);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new();
        m.add_var(-1.0, 0.0, f64::INFINITY);
        assert_eq!(m.solve_lp().status, LpStatus::Unbounded);
    }

    #[test]
    fn crossing_bounds_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 1.0);
        m.set_bounds(x, 2.0, 1.0);
        assert_eq!(m.solve_lp().status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: many redundant constraints through the origin.
        let mut m = Model::new();
        let x = m.add_var(-0.75, 0.0, f64::INFINITY);
        let y = m.add_var(150.0, 0.0, f64::INFINITY);
        let z = m.add_var(-0.02, 0.0, f64::INFINITY);
        let w = m.add_var(6.0, 0.0, f64::INFINITY);
        // Beale's cycling example (classic form).
        m.add_con(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], Le, 0.0);
        m.add_con(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], Le, 0.0);
        m.add_con(&[(z, 1.0)], Le, 1.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -0.05);
    }

    #[test]
    fn transportation_lp() {
        // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,2],[3,1]].
        let mut m = Model::new();
        let x11 = m.add_var(1.0, 0.0, f64::INFINITY);
        let x12 = m.add_var(2.0, 0.0, f64::INFINITY);
        let x21 = m.add_var(3.0, 0.0, f64::INFINITY);
        let x22 = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x11, 1.0), (x12, 1.0)], Eq, 10.0);
        m.add_con(&[(x21, 1.0), (x22, 1.0)], Eq, 20.0);
        m.add_con(&[(x11, 1.0), (x21, 1.0)], Eq, 15.0);
        m.add_con(&[(x12, 1.0), (x22, 1.0)], Eq, 15.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        // Optimal: x11=10, x21=5, x22=15 => 10 + 15 + 15 = 40.
        assert_close(r.objective, 40.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_le_rows() {
        // Same LP as `textbook_max_problem`. At optimality y·b must equal
        // the primal objective, and every dual of a `<=` row in a
        // minimization is nonpositive (raising the rhs relaxes the
        // feasible set, which can only lower the optimum).
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, f64::INFINITY);
        let y = m.add_var(-5.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_eq!(r.duals.len(), 3);
        let dual_obj: f64 = r.duals.iter().zip([4.0, 12.0, 18.0]).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, r.objective);
        for &d in &r.duals {
            assert!(d <= 1e-9, "Le dual must be nonpositive, got {d}");
        }
    }

    #[test]
    fn duals_satisfy_strong_duality_on_eq_and_ge_rows() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 => optimum 10.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Eq, 10.0);
        m.add_con(&[(x, 1.0)], Ge, 3.0);
        m.add_con(&[(y, 1.0)], Ge, 2.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        let dual_obj: f64 = r.duals.iter().zip([10.0, 3.0, 2.0]).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, 10.0);
    }

    #[test]
    fn duals_price_every_column_nonnegative_at_optimality() {
        // Transportation LP (all-equality rows). At optimality the reduced
        // cost c_j - y·A_j of every column is >= 0, and ~0 for columns
        // that are strictly positive in the solution — exactly the
        // invariant a pricing oracle relies on.
        let mut m = Model::new();
        let costs = [1.0, 2.0, 3.0, 1.0];
        let vars: Vec<_> = costs.iter().map(|&c| m.add_var(c, 0.0, f64::INFINITY)).collect();
        m.add_con(&[(vars[0], 1.0), (vars[1], 1.0)], Eq, 10.0);
        m.add_con(&[(vars[2], 1.0), (vars[3], 1.0)], Eq, 20.0);
        m.add_con(&[(vars[0], 1.0), (vars[2], 1.0)], Eq, 15.0);
        m.add_con(&[(vars[1], 1.0), (vars[3], 1.0)], Eq, 15.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        // Column j participates in its supply row and its demand row.
        let rows_of = [[0usize, 2], [0, 3], [1, 2], [1, 3]];
        for (j, rows) in rows_of.iter().enumerate() {
            let rc = costs[j] - rows.iter().map(|&i| r.duals[i]).sum::<f64>();
            assert!(rc >= -1e-6, "column {j}: negative reduced cost {rc} at optimality");
            if r.x[j] > 1e-6 {
                assert!(rc.abs() <= 1e-6, "basic column {j}: reduced cost {rc} != 0");
            }
        }
    }

    /// A tiny deterministic PRNG (xorshift64*) so the warm-start sweep
    /// does not depend on the proptest shim's sampling strategy.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            let unit = (self.0 >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
        fn next_usize(&mut self, lo: usize, hi: usize) -> usize {
            self.next_f64(lo as f64, hi as f64 + 1.0).floor().min(hi as f64) as usize
        }
    }

    /// Build a random feasible covering-style LP: minimize c x subject to
    /// a few `>=` rows and a capacity `<=` row, all satisfiable.
    fn random_master(rng: &mut Lcg, n: usize, rows: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<_> =
            (0..n).map(|_| m.add_var(rng.next_f64(0.1, 2.0), 0.0, f64::INFINITY)).collect();
        for _ in 0..rows {
            let mut terms = Vec::new();
            for &v in &vars {
                if rng.next_f64(0.0, 1.0) < 0.7 {
                    terms.push((v, rng.next_f64(0.2, 1.5)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            m.add_con(&terms, Ge, rng.next_f64(0.5, 3.0));
        }
        let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_con(&all, Le, 100.0);
        m
    }

    /// The warm-start contract: after `add_column`, a warm re-solve must
    /// reach the same objective as a cold solve of the extended model, to
    /// 1e-9, across a seeded sweep of random masters.
    #[test]
    fn warm_resolve_matches_cold_after_add_column() {
        for seed in 1..=20u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let n = rng.next_usize(3, 7);
            let rows = rng.next_usize(2, 5);
            let mut m = random_master(&mut rng, n, rows);
            let mut warm = None;
            let (first, was_warm) = m.solve_lp_with(&mut warm);
            assert!(!was_warm);
            if first.status != LpStatus::Optimal {
                continue; // rare unbounded/degenerate draw: nothing to compare
            }
            // Append a few columns, re-solving warm after each batch.
            for round in 0..3 {
                let ncols = rng.next_usize(1, 3);
                for _ in 0..ncols {
                    let mut coeffs: Vec<(usize, f64)> = Vec::new();
                    for r in 0..m.num_cons() {
                        if rng.next_f64(0.0, 1.0) < 0.8 {
                            coeffs.push((r, rng.next_f64(0.1, 1.5)));
                        }
                    }
                    m.add_column(rng.next_f64(0.05, 1.0), 0.0, f64::INFINITY, &coeffs);
                }
                let (w, was_warm) = m.solve_lp_with(&mut warm);
                assert!(was_warm, "seed {seed} round {round}: warm path not taken");
                let c = m.solve_lp();
                assert_eq!(w.status, c.status, "seed {seed} round {round}");
                if w.status == LpStatus::Optimal {
                    assert!(
                        (w.objective - c.objective).abs() < 1e-9,
                        "seed {seed} round {round}: warm {} vs cold {}",
                        w.objective,
                        c.objective
                    );
                    assert!(m.is_feasible_point(&w.x, 1e-6), "seed {seed}: warm point infeasible");
                    // Duals must price every column nonnegatively, like a
                    // cold optimum (the pricing loop relies on them).
                    for (j, v) in m.vars.iter().enumerate() {
                        let coef_sum: f64 = m
                            .cons
                            .iter()
                            .zip(&w.duals)
                            .map(|(con, &y)| {
                                con.terms
                                    .iter()
                                    .filter(|&&(var, _)| var == j)
                                    .map(|&(_, c)| c * y)
                                    .sum::<f64>()
                            })
                            .sum();
                        assert!(
                            v.obj - coef_sum >= -1e-6,
                            "seed {seed}: column {j} prices negative under warm duals"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warm_resolve_survives_objective_change() {
        // set_obj between solves is a legitimate warm restart (the basis
        // stays primal feasible); the re-solve must track the new optimum.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(2.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 4.0);
        let mut warm = None;
        let (r, _) = m.solve_lp_with(&mut warm);
        assert_close(r.objective, 4.0); // all on x
        m.set_obj(x, 3.0);
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(was_warm);
        assert_close(r.objective, 8.0); // all on y
    }

    #[test]
    fn warm_state_rejects_bound_changes() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        let mut warm = None;
        let _ = m.solve_lp_with(&mut warm);
        assert!(warm.is_some());
        m.set_bounds(x, 0.0, 1.5); // stale basis: must fall back cold
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(!was_warm);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_state_rejects_new_constraints_and_bounded_columns() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        let mut warm = None;
        let _ = m.solve_lp_with(&mut warm);
        let mut with_row = m.clone();
        with_row.add_con(&[(x, 1.0)], Le, 10.0);
        let mut warm2 = warm.clone();
        let (_, was_warm) = with_row.solve_lp_with(&mut warm2);
        assert!(!was_warm, "row count change must force a cold solve");
        // A finite-ub appended column needs a bound row: cold path.
        m.add_column(0.5, 0.0, 3.0, &[(0, 1.0)]);
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(!was_warm);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 1.0); // cover the >= 2 with the cheap column
    }

    proptest::proptest! {
        /// Random LPs constructed around a known feasible point: the solver
        /// must (a) report optimal, (b) return a feasible point, (c) reach
        /// an objective no worse than the seed point's.
        #[test]
        fn solves_random_feasible_lps(
            seed_x in proptest::collection::vec(0.0f64..5.0, 3..6),
            rows in proptest::collection::vec(
                proptest::collection::vec(-2.0f64..2.0, 6), 2..8),
            costs in proptest::collection::vec(-1.0f64..1.0, 6),
        ) {
            let n = seed_x.len();
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|j| m.add_var(costs[j], 0.0, 10.0)).collect();
            for row in &rows {
                let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &c)| (v, c)).collect();
                let lhs: f64 = row.iter().take(n).zip(&seed_x).map(|(c, x)| c * x).sum();
                m.add_con(&terms[..n], Le, lhs + 0.5);
            }
            let r = m.solve_lp();
            proptest::prop_assert_eq!(r.status, LpStatus::Optimal);
            proptest::prop_assert!(m.is_feasible_point(&r.x, 1e-5));
            let seed_obj: f64 = seed_x.iter().zip(&costs).map(|(x, c)| x * c).sum();
            proptest::prop_assert!(r.objective <= seed_obj + 1e-6);
        }
    }
}
