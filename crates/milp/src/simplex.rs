//! Two-phase primal simplex — *sparse revised* implementation — with
//! warm-started re-solves for column generation.
//!
//! The basis is never inverted explicitly: an eta-file factorization
//! ([`crate::factor::Factor`]) carries `B^-1` as a product of per-pivot
//! eta matrices, rebuilt from the sparse basis columns every
//! [`Model::set_refactor_interval`] pivots. Per iteration the engine
//! computes the simplex multipliers `y = B^-T c_B` (BTRAN), prices the
//! sparse nonbasic columns against them, transforms the entering column
//! `w = B^-1 a_j` (FTRAN), runs the ratio test on `w`, and appends one
//! eta — pivot work scales with the column nonzeros and the basis
//! dimension, not with `rows x columns` like the dense tableau this
//! replaced.
//!
//! Method: variables are shifted to `x' = x - lb >= 0`; finite upper
//! bounds become explicit `x' <= ub - lb` rows. Inequalities get slack /
//! surplus variables, rows are sign-normalized to `rhs >= 0`, and rows
//! without a natural slack basis get artificial variables. Phase 1
//! minimizes the artificial sum (infeasible iff positive), phase 2 the
//! shifted objective. Dantzig pricing with a switch to Bland's rule after
//! a degeneracy threshold guards against cycling. Duals are read off the
//! factorization: `y = B^-T c_B`, mapped back through the row-sign
//! normalization.
//!
//! **Warm starts** ([`WarmState`], [`resolve`]): an optimal solve can
//! return its final basis. After the caller appends columns
//! ([`Model::add_column`]) and/or changes objective coefficients, the old
//! basis is still primal feasible, so the re-solve skips phase 1 entirely
//! and continues phase 2 from the previous optimum. Appending a column is
//! O(column nonzeros) — the factorization is untouched. Any structural
//! change the warm path cannot absorb — changed bounds, new constraints,
//! non-`[0, inf)` bounds on appended variables — is detected and falls
//! back to a cold solve.
//!
//! **Column lifecycle** ([`purge_columns`]): a column-generation master
//! accumulates columns forever; nonbasic columns can be physically
//! removed again without invalidating the warm basis. The purge compacts
//! the model and the warm state coherently (column store, basis indices,
//! variable maps); the factorization and basic solution are untouched
//! because a nonbasic column never participates in either.

use crate::factor::Factor;
use crate::model::{LpResult, LpStatus, Model, Relation, VarId};
use crate::TOL;

/// A generous iteration budget scaled to model size.
pub fn default_iter_limit(model: &Model) -> usize {
    // Simplex converges in O(rows) iterations in practice; the hard cap
    // keeps a single degenerate solve on a large model from dominating
    // the branch-and-bound wall clock.
    (500 * (model.num_vars() + model.num_cons()) + 2000).min(60_000)
}

/// The revised-simplex working state: sparse columns over the normalized
/// rows, the basis with its eta-file factorization, and the current
/// basic solution.
#[derive(Debug, Clone)]
pub(crate) struct Core {
    /// Sparse matrix columns over normalized rows: `cols[j]` lists
    /// `(row, coefficient)` after sign normalization.
    pub(crate) cols: Vec<Vec<(usize, f64)>>,
    pub(crate) rows: usize,
    /// Basic column of each (pivot) row.
    pub(crate) basis: Vec<usize>,
    /// Whether each column is currently basic.
    pub(crate) in_basis: Vec<bool>,
    /// Values of the basic variables by row: `xb = B^-1 b0`.
    pub(crate) xb: Vec<f64>,
    /// Current normalized RHS (bound-change deltas are applied here, so
    /// `xb` is always recoverable as `B^-1 b0`).
    pub(crate) b0: Vec<f64>,
    pub(crate) factor: Factor,
    /// Pivot count between factorization rebuilds.
    pub(crate) refactor_interval: usize,
}

impl Core {
    #[inline]
    pub(crate) fn ncols(&self) -> usize {
        self.cols.len()
    }

    #[inline]
    pub(crate) fn dot(col: &[(usize, f64)], y: &[f64]) -> f64 {
        col.iter().map(|&(r, c)| c * y[r]).sum()
    }

    /// `w = B^-1 a_j` into the provided scratch vector.
    pub(crate) fn ftran_col(&self, j: usize, w: &mut Vec<f64>) {
        w.clear();
        w.resize(self.rows, 0.0);
        for &(r, c) in &self.cols[j] {
            w[r] = c;
        }
        self.factor.ftran(w);
    }

    /// `y = B^-T c_B` into the provided scratch vector.
    pub(crate) fn btran_costs(&self, costs: &[f64], y: &mut Vec<f64>) {
        y.clear();
        y.resize(self.rows, 0.0);
        for (yr, &b) in y.iter_mut().zip(&self.basis) {
            *yr = costs[b];
        }
        self.factor.btran(y);
    }

    /// `rho = B^-T e_r` into the provided scratch vector.
    pub(crate) fn btran_unit(&self, r: usize, rho: &mut Vec<f64>) {
        rho.clear();
        rho.resize(self.rows, 0.0);
        rho[r] = 1.0;
        self.factor.btran(rho);
    }

    fn objective(&self, costs: &[f64]) -> f64 {
        self.basis.iter().zip(&self.xb).map(|(&b, &x)| costs[b] * x).sum()
    }

    /// Basis change: column `j` (transformed column `w`) enters at pivot
    /// row `prow`. Updates `xb`, appends the pivot eta, and triggers a
    /// refactorization when the file has grown past the interval.
    pub(crate) fn pivot(&mut self, prow: usize, j: usize, w: &[f64]) {
        let theta = self.xb[prow] / w[prow];
        if theta != 0.0 {
            for (xi, &wi) in self.xb.iter_mut().zip(w) {
                if wi != 0.0 {
                    *xi -= theta * wi;
                }
            }
        }
        self.xb[prow] = theta;
        self.in_basis[self.basis[prow]] = false;
        self.in_basis[j] = true;
        self.basis[prow] = j;
        self.factor.update(w, prow);
        if self.factor.updates_since_refactor() >= self.refactor_interval {
            self.refactor();
        }
    }

    /// Rebuild the factorization off the current basis columns and
    /// recompute `xb` from `b0`. A (numerically) singular rebuild keeps
    /// the old — still valid — eta file.
    pub(crate) fn refactor(&mut self) {
        if self.factor.refactor(&self.cols, &mut self.basis) {
            self.xb.copy_from_slice(&self.b0);
            self.factor.ftran(&mut self.xb);
        }
    }

    /// Ratio test: leaving row for the transformed entering column `w`,
    /// or `None` if the column is unbounded. Two passes, Harris-style:
    /// the first finds the tightest ratio, the second picks — among the
    /// rows within a tolerance whisker of it — the *largest* pivot
    /// element. A bare min-ratio rule is free to pivot on an element
    /// barely above `TOL`, and the `1/a` in that eta factor amplifies
    /// roundoff by up to `1/TOL` until the factorized answers diverge
    /// from the model; on massively degenerate bases the solve then
    /// cycles numerically — "progress" each refactorization reverts.
    /// Ties on the pivot size break toward the smallest basis variable
    /// index, keeping the choice deterministic (and Bland-flavored).
    /// A slightly negative `xb` (roundoff on a degenerate row) clamps to
    /// a zero ratio rather than proposing a negative step.
    fn ratio_test(&self, w: &[f64]) -> Option<usize> {
        let mut theta = f64::INFINITY;
        for (r, &a) in w.iter().enumerate() {
            if a > TOL {
                theta = theta.min(self.xb[r].max(0.0) / a);
            }
        }
        if theta.is_infinite() {
            return None;
        }
        let cutoff = theta + 1e-9 * (1.0 + theta);
        let mut best: Option<(f64, usize, usize)> = None; // (pivot, basis var, row)
        for (r, &a) in w.iter().enumerate() {
            if a > TOL && self.xb[r].max(0.0) / a <= cutoff {
                let better = match best {
                    Some((ba, bb, _)) => a > ba || (a == ba && self.basis[r] < bb),
                    None => true,
                };
                if better {
                    best = Some((a, self.basis[r], r));
                }
            }
        }
        best.map(|(_, _, r)| r)
    }

    /// One optimization run under the given cost vector. Only nonbasic
    /// columns `c` with `allowed(c)` may enter.
    pub(crate) fn optimize(
        &mut self,
        costs: &[f64],
        allowed: impl Fn(usize) -> bool,
        iter_limit: usize,
        iterations: &mut usize,
    ) -> LpStatus {
        // Dantzig pricing stalls on massively degenerate bases (ties upon
        // ties re-enter the same columns without moving the objective).
        // Switch to Bland's rule — guaranteed finite — once the objective
        // has not improved for a streak proportional to the row count.
        let stall_limit = 10 * self.rows + 50;
        let mut stalled = 0usize;
        let mut bland = false;
        let mut last_obj = self.objective(costs);
        let mut y: Vec<f64> = Vec::new();
        let mut w: Vec<f64> = Vec::new();
        loop {
            if *iterations >= iter_limit {
                return LpStatus::IterLimit;
            }
            self.btran_costs(costs, &mut y);
            // Entering column: reduced cost `c_j - y . a_j` below -TOL.
            let mut entering: Option<usize> = None;
            if bland {
                // Bland: smallest index with negative reduced cost.
                for (j, col) in self.cols.iter().enumerate() {
                    if !self.in_basis[j] && allowed(j) && costs[j] - Self::dot(col, &y) < -TOL {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                // Dantzig: most negative reduced cost (earliest on ties).
                let mut best = -TOL;
                for (j, col) in self.cols.iter().enumerate() {
                    if self.in_basis[j] || !allowed(j) {
                        continue;
                    }
                    let rc = costs[j] - Self::dot(col, &y);
                    if rc < best {
                        best = rc;
                        entering = Some(j);
                    }
                }
            }
            let Some(pcol) = entering else {
                return LpStatus::Optimal;
            };
            self.ftran_col(pcol, &mut w);
            let Some(prow) = self.ratio_test(&w) else {
                return LpStatus::Unbounded;
            };
            self.pivot(prow, pcol, &w);
            *iterations += 1;
            let obj = self.objective(costs);
            if obj < last_obj - TOL {
                // Real progress: resume Dantzig (Bland crawls). Each
                // strict improvement is final, so the alternation still
                // terminates.
                last_obj = obj;
                stalled = 0;
                bland = false;
            } else {
                stalled += 1;
                if stalled >= stall_limit {
                    bland = true;
                }
            }
        }
    }
}

/// The reusable outcome of an optimal solve: the factorized basis plus
/// the bookkeeping needed to graft new columns onto it. Opaque to
/// callers; obtain one from [`solve_with_state`] and feed it to
/// [`resolve`].
#[derive(Debug, Clone)]
pub struct WarmState {
    pub(crate) c: Core,
    /// Per model-constraint row: the sign normalization applied at build
    /// (bound rows always have nonnegative RHS and sign `+1`).
    pub(crate) row_sign: Vec<f64>,
    /// Artificial column range `[art_start, art_end)` (never re-enters).
    pub(crate) art_start: usize,
    pub(crate) art_end: usize,
    /// Column -> model variable (None for slack/artificial).
    pub(crate) var_of_col: Vec<Option<usize>>,
    /// Bounds snapshot of every variable seen so far; a mismatch on
    /// re-solve means the warm basis is stale (the dual engine absorbs
    /// the mismatch instead — see [`crate::dual::reoptimize`]).
    pub(crate) bounds: Vec<(f64, f64)>,
    /// Per variable seen at build time: the row carrying its
    /// `x' <= ub - lb` bound row, if the variable had a finite upper
    /// bound. The dual engine edits these rows' RHS when branching
    /// tightens bounds. Appended columns (always `[0, inf)`) get `None`.
    pub(crate) bound_row_of_var: Vec<Option<usize>>,
    pub(crate) num_cons: usize,
}

impl WarmState {
    /// Memory-weight proxy (stored nonzeros plus per-row vectors), the
    /// sparse replacement for the dense tableau's `rows * cols` cell
    /// count. Branch & bound uses it to decide whether a node basis is
    /// cheap enough to share with both children.
    pub(crate) fn weight(&self) -> usize {
        let col_nnz: usize = self.c.cols.iter().map(|c| c.len()).sum();
        col_nnz + self.c.factor.nnz() + 6 * self.c.rows
    }

    /// Counter snapshot `(refactorizations, eta_updates)` for computing
    /// per-solve deltas.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.c.factor.refactorizations, self.c.factor.eta_updates)
    }
}

pub(crate) fn lp_fail(status: LpStatus, iterations: usize) -> LpResult {
    LpResult {
        status,
        x: vec![],
        objective: 0.0,
        iterations,
        duals: vec![],
        refactorizations: 0,
        eta_updates: 0,
    }
}

/// Solve the LP relaxation of `model` (integrality ignored).
pub fn solve(model: &Model, iter_limit: usize) -> LpResult {
    solve_with_state(model, iter_limit).0
}

/// Like [`solve`], additionally returning a [`WarmState`] when the solve
/// reached optimality (and the model has at least one row — trivial
/// models have no basis to reuse).
pub fn solve_with_state(model: &Model, iter_limit: usize) -> (LpResult, Option<WarmState>) {
    let _span = bagsched_types::obs::Span::enter("milp.simplex");
    let n = model.num_vars();
    let lbs: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let obj_offset: f64 = model.vars.iter().map(|v| v.obj * v.lb).sum();
    let ncons = model.cons.len();

    // Shifted RHS per row; rows are model constraints then bound rows.
    let mut rhs: Vec<f64> = Vec::with_capacity(ncons);
    let mut rel: Vec<Relation> = Vec::with_capacity(ncons);
    for con in &model.cons {
        let shift: f64 = con.terms.iter().map(|&(j, c)| c * lbs[j]).sum();
        rhs.push(con.rhs - shift);
        rel.push(con.rel);
    }
    let mut bound_row_of_var: Vec<Option<usize>> = vec![None; n];
    for (j, v) in model.vars.iter().enumerate() {
        if v.ub.is_finite() {
            let range = v.ub - v.lb;
            if range < -TOL {
                return (lp_fail(LpStatus::Infeasible, 0), None);
            }
            bound_row_of_var[j] = Some(rhs.len());
            rhs.push(range.max(0.0));
            rel.push(Relation::Le);
        }
    }

    if rhs.is_empty() {
        // No constraints at all: optimum sits at the lower bounds unless
        // some cost is negative (then x_j -> +inf is improving).
        if model.vars.iter().any(|v| v.obj < -TOL) {
            return (lp_fail(LpStatus::Unbounded, 0), None);
        }
        return (
            LpResult {
                status: LpStatus::Optimal,
                x: lbs,
                objective: obj_offset,
                iterations: 0,
                duals: vec![],
                refactorizations: 0,
                eta_updates: 0,
            },
            None,
        );
    }

    let m = rhs.len();
    let sign: Vec<f64> = rhs.iter().map(|&r| if r < 0.0 { -1.0 } else { 1.0 }).collect();
    let b0: Vec<f64> = rhs.iter().zip(&sign).map(|(&r, &s)| s * r).collect();
    let row_sign: Vec<f64> = sign[..ncons].to_vec();

    // Column layout: structural (n) | slacks | artificials. A row's slack
    // coefficient is `+-sign`; rows whose slack coefficient is not `+1`
    // (surplus rows, equalities, sign-flipped rows) get an artificial.
    let num_slacks = rel.iter().filter(|&&r| r != Relation::Eq).count();
    let art_start = n + num_slacks;
    let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(art_start);
    for (terms, &bound_row) in model.col_terms[..n].iter().zip(&bound_row_of_var) {
        let mut col: Vec<(usize, f64)> = terms.iter().map(|&(r, c)| (r, sign[r] * c)).collect();
        if let Some(br) = bound_row {
            col.push((br, 1.0));
        }
        cols.push(col);
    }
    cols.resize(art_start, Vec::new());
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut art_of_row: Vec<Option<usize>> = vec![None; m];
    for (r, &rl) in rel.iter().enumerate() {
        let slack_coef = match rl {
            Relation::Le => {
                let s = next_slack;
                next_slack += 1;
                cols[s] = vec![(r, sign[r])];
                Some((s, sign[r]))
            }
            Relation::Ge => {
                let s = next_slack;
                next_slack += 1;
                cols[s] = vec![(r, -sign[r])];
                Some((s, -sign[r]))
            }
            Relation::Eq => None,
        };
        match slack_coef {
            Some((s, coef)) if coef > 0.0 => basis[r] = s,
            _ => {
                let a = cols.len();
                cols.push(vec![(r, 1.0)]);
                basis[r] = a;
                art_of_row[r] = Some(a);
            }
        }
    }
    let art_end = cols.len();
    let num_arts = art_end - art_start;

    let mut in_basis = vec![false; art_end];
    for &b in &basis {
        in_basis[b] = true;
    }
    let mut core = Core {
        cols,
        rows: m,
        basis,
        in_basis,
        xb: b0.clone(),
        b0,
        factor: Factor::identity(),
        refactor_interval: model.refactor_interval,
    };

    let mut iterations = 0usize;
    let counters = |c: &Core| (c.factor.refactorizations as usize, c.factor.eta_updates as usize);

    // ---- Phase 1: minimize the sum of artificials. ----
    if num_arts > 0 {
        let mut costs1 = vec![0.0; art_end];
        costs1[art_start..art_end].iter_mut().for_each(|c| *c = 1.0);
        let status = core.optimize(&costs1, |_| true, iter_limit, &mut iterations);
        if status == LpStatus::IterLimit {
            let (rf, eu) = counters(&core);
            return (
                LpResult { refactorizations: rf, eta_updates: eu, ..lp_fail(status, iterations) },
                None,
            );
        }
        let phase1_obj = core.objective(&costs1);
        if phase1_obj > 1e-6 {
            let (rf, eu) = counters(&core);
            return (
                LpResult {
                    refactorizations: rf,
                    eta_updates: eu,
                    ..lp_fail(LpStatus::Infeasible, iterations)
                },
                None,
            );
        }
        // Drive remaining artificials out of the basis. Iterate by
        // artificial column, not by row: a triggered refactorization may
        // permute the basis-to-row assignment mid-loop.
        let art_basics: Vec<usize> =
            core.basis.iter().copied().filter(|&b| b >= art_start).collect();
        let mut rho: Vec<f64> = Vec::new();
        let mut w: Vec<f64> = Vec::new();
        for a in art_basics {
            let Some(r) = core.basis.iter().position(|&b| b == a) else { continue };
            core.btran_unit(r, &mut rho);
            let pivot_col = (0..art_start)
                .find(|&j| !core.in_basis[j] && Core::dot(&core.cols[j], &rho).abs() > 1e-6);
            if let Some(j) = pivot_col {
                core.ftran_col(j, &mut w);
                core.pivot(r, j, &w);
                iterations += 1;
            }
            // If no structural pivot exists the row is redundant
            // (all-zero); the artificial stays basic at value ~0 and we
            // simply never let artificials re-enter in phase 2.
        }
    }

    // ---- Phase 2: minimize the real objective. ----
    let mut costs2 = vec![0.0; core.ncols()];
    for (j, v) in model.vars.iter().enumerate() {
        costs2[j] = v.obj;
    }
    let status = core.optimize(&costs2, |c| c < art_start, iter_limit, &mut iterations);
    if status != LpStatus::Optimal {
        let (rf, eu) = counters(&core);
        return (
            LpResult { refactorizations: rf, eta_updates: eu, ..lp_fail(status, iterations) },
            None,
        );
    }

    let var_of_col = (0..core.ncols()).map(|c| (c < n).then_some(c)).collect();
    let state = WarmState {
        c: core,
        row_sign,
        art_start,
        art_end,
        var_of_col,
        bounds: model.vars.iter().map(|v| (v.lb, v.ub)).collect(),
        bound_row_of_var,
        num_cons: ncons,
    };
    let (rf, eu) = state.counters();
    let res = extract_optimal(model, &state, iterations, rf as usize, eu as usize);
    (res, Some(state))
}

/// Warm re-solve: continue phase 2 from a previous optimal basis after
/// the caller appended columns and/or changed objective coefficients.
///
/// Returns `None` — leaving `state` untouched — when the model changed in
/// a way the warm basis cannot absorb: different constraint count,
/// changed bounds on previously-seen variables, or appended variables
/// whose bounds are not `[0, inf)`. The caller then falls back to a cold
/// [`solve_with_state`].
pub fn resolve(model: &Model, iter_limit: usize, state: &mut WarmState) -> Option<LpResult> {
    let _span = bagsched_types::obs::Span::enter("milp.simplex.warm");
    if model.cons.len() != state.num_cons {
        return None;
    }
    for (v, &(lb, ub)) in model.vars.iter().zip(&state.bounds) {
        if v.lb != lb || v.ub != ub {
            return None;
        }
    }
    if !graft_columns(model, state) {
        return None;
    }
    let (rf0, eu0) = state.counters();

    // ---- Phase 2 from the (still primal-feasible) previous basis. ----
    // Costs are rebuilt from the model each call, so objective edits are
    // picked up without any dirty-tracking.
    let mut costs = vec![0.0; state.c.ncols()];
    for (col, vo) in state.var_of_col.iter().enumerate() {
        if let Some(v) = *vo {
            costs[col] = model.vars[v].obj;
        }
    }
    let mut iterations = 0usize;
    let (art_start, art_end) = (state.art_start, state.art_end);
    let status =
        state.c.optimize(&costs, |c| c < art_start || c >= art_end, iter_limit, &mut iterations);
    let (rf1, eu1) = state.counters();
    let (rf, eu) = ((rf1 - rf0) as usize, (eu1 - eu0) as usize);
    if status != LpStatus::Optimal {
        return Some(LpResult {
            refactorizations: rf,
            eta_updates: eu,
            ..lp_fail(status, iterations)
        });
    }
    Some(extract_optimal(model, state, iterations, rf, eu))
}

/// Append the model's new columns (relative to the state's snapshot) onto
/// the warm state. Returns `false` — leaving the state untouched — when a
/// column cannot be grafted (its bounds are not `[0, inf)`, which would
/// need a fresh bound row) or the model shrank. Unlike the dense tableau
/// this is O(column nonzeros): the factorization does not change when a
/// nonbasic column appears.
pub(crate) fn graft_columns(model: &Model, state: &mut WarmState) -> bool {
    let n_old = state.bounds.len();
    let n_new = model.num_vars();
    if n_new < n_old {
        return false;
    }
    if model.vars[n_old..].iter().any(|v| v.lb != 0.0 || v.ub != f64::INFINITY) {
        return false;
    }
    for j in n_old..n_new {
        let col: Vec<(usize, f64)> =
            model.col_terms[j].iter().map(|&(r, c)| (r, state.row_sign[r] * c)).collect();
        state.c.cols.push(col);
        state.c.in_basis.push(false);
        state.var_of_col.push(Some(j));
        state.bound_row_of_var.push(None);
        state.bounds.push((0.0, f64::INFINITY));
    }
    true
}

/// Read the optimal solution and duals off a converged warm basis.
pub(crate) fn extract_optimal(
    model: &Model,
    state: &WarmState,
    iterations: usize,
    refactorizations: usize,
    eta_updates: usize,
) -> LpResult {
    let c = &state.c;
    let lbs: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut x = lbs.clone();
    for (r, &b) in c.basis.iter().enumerate() {
        if let Some(v) = state.var_of_col[b] {
            x[v] = lbs[v] + c.xb[r].max(0.0);
        }
    }
    let objective = model.objective_value(&x);
    // Simplex multipliers y = B^-T c_B; the model dual of constraint i is
    // y_i mapped back through the sign normalization.
    let mut y = vec![0.0; c.rows];
    for (yr, &b) in y.iter_mut().zip(&c.basis) {
        if let Some(v) = state.var_of_col[b] {
            *yr = model.vars[v].obj;
        }
    }
    c.factor.btran(&mut y);
    let duals = state.row_sign.iter().zip(&y).map(|(&s, &yi)| s * yi).collect();
    LpResult {
        status: LpStatus::Optimal,
        x,
        objective,
        iterations,
        duals,
        refactorizations,
        eta_updates,
    }
}

/// Physically remove nonbasic columns from a model and (when present) its
/// warm state, keeping both coherent: the column store, basis indices,
/// artificial range, and variable maps are compacted; the factorization
/// and the basic solution are untouched because a nonbasic column
/// participates in neither.
///
/// Returns `false` — mutating nothing — when a victim is currently basic,
/// owns a bound row (finite upper bound), or the model and state are out
/// of sync; the caller should then skip the purge (or drop the warm state
/// first). Variable indices above a purged column shift down; the caller
/// owns remapping any [`VarId`]s it holds (`new = old - #purged below`).
pub fn purge_columns(model: &mut Model, warm: Option<&mut WarmState>, victims: &[VarId]) -> bool {
    if victims.is_empty() {
        return true;
    }
    let n = model.num_vars();
    let mut kill_var = vec![false; n];
    for v in victims {
        if v.0 >= n || kill_var[v.0] {
            return false;
        }
        kill_var[v.0] = true;
    }
    if let Some(state) = &warm {
        if state.bounds.len() != n {
            return false; // ungrafted columns outstanding: not synced
        }
        for (col, vo) in state.var_of_col.iter().enumerate() {
            if let Some(v) = *vo {
                if kill_var[v] && (state.c.in_basis[col] || state.bound_row_of_var[v].is_some()) {
                    return false;
                }
            }
        }
    }

    // ---- Model compaction. ----
    let mut new_var = vec![usize::MAX; n];
    let mut next = 0usize;
    for (j, &kill) in kill_var.iter().enumerate() {
        if !kill {
            new_var[j] = next;
            next += 1;
        }
    }
    let mut keep = kill_var.iter().map(|&k| !k);
    model.vars.retain(|_| keep.next().unwrap());
    let mut keep = kill_var.iter().map(|&k| !k);
    model.col_terms.retain(|_| keep.next().unwrap());
    for con in &mut model.cons {
        con.terms.retain_mut(|(j, _)| {
            if kill_var[*j] {
                false
            } else {
                *j = new_var[*j];
                true
            }
        });
    }

    // ---- Warm-state compaction. ----
    let Some(state) = warm else { return true };
    let ncols = state.c.ncols();
    let mut kill_col = vec![false; ncols];
    for (col, vo) in state.var_of_col.iter().enumerate() {
        if vo.is_some_and(|v| kill_var[v]) {
            kill_col[col] = true;
        }
    }
    let mut new_col = vec![usize::MAX; ncols];
    let mut next = 0usize;
    for (c, &kill) in kill_col.iter().enumerate() {
        if !kill {
            new_col[c] = next;
            next += 1;
        }
    }
    let mut keep = kill_col.iter().map(|&k| !k);
    state.c.cols.retain(|_| keep.next().unwrap());
    let mut keep = kill_col.iter().map(|&k| !k);
    state.c.in_basis.retain(|_| keep.next().unwrap());
    for b in &mut state.c.basis {
        *b = new_col[*b];
    }
    // Both range ends may equal the old column count (no artificials /
    // no grafted columns): compact each by the purged columns below it.
    state.art_start -= kill_col[..state.art_start].iter().filter(|&&k| k).count();
    state.art_end -= kill_col[..state.art_end].iter().filter(|&&k| k).count();
    let mut keep = kill_col.iter().map(|&k| !k);
    state.var_of_col.retain(|_| keep.next().unwrap());
    for v in state.var_of_col.iter_mut().flatten() {
        *v = new_var[*v];
    }
    let mut keep = kill_var.iter().map(|&k| !k);
    state.bounds.retain(|_| keep.next().unwrap());
    let mut keep = kill_var.iter().map(|&k| !k);
    state.bound_row_of_var.retain(|_| keep.next().unwrap());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation::*};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), z = 36.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, f64::INFINITY);
        let y = m.add_var(-5.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -36.0);
        assert_close(r.x[0], 2.0);
        assert_close(r.x[1], 6.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 => 10, e.g. (3, 7).
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Eq, 10.0);
        m.add_con(&[(x, 1.0)], Ge, 3.0);
        m.add_con(&[(y, 1.0)], Ge, 2.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 10.0);
        assert!(r.x[0] >= 3.0 - 1e-6 && r.x[1] >= 2.0 - 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 1.0);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        assert_eq!(m.solve_lp().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.0, f64::INFINITY);
        let y = m.add_var(0.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, -1.0)], Le, 1.0);
        assert_eq!(m.solve_lp().status, LpStatus::Unbounded);
    }

    #[test]
    fn respects_upper_bounds() {
        // min -x with x in [0, 7].
        let mut m = Model::new();
        let _x = m.add_var(-1.0, 0.0, 7.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.x[0], 7.0);
    }

    #[test]
    fn respects_shifted_lower_bounds() {
        // min x + y with x >= 2.5, y >= 1, x + y >= 5.
        let mut m = Model::new();
        let x = m.add_var(1.0, 2.5, f64::INFINITY);
        let y = m.add_var(1.0, 1.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 5.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 5.0);
    }

    #[test]
    fn no_constraints_sits_at_lb() {
        let mut m = Model::new();
        m.add_var(1.0, 2.0, f64::INFINITY);
        m.add_var(0.0, -1.0, f64::INFINITY);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 2.0);
        assert_close(r.x[1], -1.0);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new();
        m.add_var(-1.0, 0.0, f64::INFINITY);
        assert_eq!(m.solve_lp().status, LpStatus::Unbounded);
    }

    #[test]
    fn crossing_bounds_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 1.0);
        m.set_bounds(x, 2.0, 1.0);
        assert_eq!(m.solve_lp().status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: many redundant constraints through the origin.
        let mut m = Model::new();
        let x = m.add_var(-0.75, 0.0, f64::INFINITY);
        let y = m.add_var(150.0, 0.0, f64::INFINITY);
        let z = m.add_var(-0.02, 0.0, f64::INFINITY);
        let w = m.add_var(6.0, 0.0, f64::INFINITY);
        // Beale's cycling example (classic form).
        m.add_con(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], Le, 0.0);
        m.add_con(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], Le, 0.0);
        m.add_con(&[(z, 1.0)], Le, 1.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -0.05);
    }

    #[test]
    fn transportation_lp() {
        // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,2],[3,1]].
        let mut m = Model::new();
        let x11 = m.add_var(1.0, 0.0, f64::INFINITY);
        let x12 = m.add_var(2.0, 0.0, f64::INFINITY);
        let x21 = m.add_var(3.0, 0.0, f64::INFINITY);
        let x22 = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x11, 1.0), (x12, 1.0)], Eq, 10.0);
        m.add_con(&[(x21, 1.0), (x22, 1.0)], Eq, 20.0);
        m.add_con(&[(x11, 1.0), (x21, 1.0)], Eq, 15.0);
        m.add_con(&[(x12, 1.0), (x22, 1.0)], Eq, 15.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        // Optimal: x11=10, x21=5, x22=15 => 10 + 15 + 15 = 40.
        assert_close(r.objective, 40.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_le_rows() {
        // Same LP as `textbook_max_problem`. At optimality y·b must equal
        // the primal objective, and every dual of a `<=` row in a
        // minimization is nonpositive (raising the rhs relaxes the
        // feasible set, which can only lower the optimum).
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, f64::INFINITY);
        let y = m.add_var(-5.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_eq!(r.duals.len(), 3);
        let dual_obj: f64 = r.duals.iter().zip([4.0, 12.0, 18.0]).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, r.objective);
        for &d in &r.duals {
            assert!(d <= 1e-9, "Le dual must be nonpositive, got {d}");
        }
    }

    #[test]
    fn duals_satisfy_strong_duality_on_eq_and_ge_rows() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 => optimum 10.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Eq, 10.0);
        m.add_con(&[(x, 1.0)], Ge, 3.0);
        m.add_con(&[(y, 1.0)], Ge, 2.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        let dual_obj: f64 = r.duals.iter().zip([10.0, 3.0, 2.0]).map(|(d, b)| d * b).sum();
        assert_close(dual_obj, 10.0);
    }

    #[test]
    fn duals_price_every_column_nonnegative_at_optimality() {
        // Transportation LP (all-equality rows). At optimality the reduced
        // cost c_j - y·A_j of every column is >= 0, and ~0 for columns
        // that are strictly positive in the solution — exactly the
        // invariant a pricing oracle relies on.
        let mut m = Model::new();
        let costs = [1.0, 2.0, 3.0, 1.0];
        let vars: Vec<_> = costs.iter().map(|&c| m.add_var(c, 0.0, f64::INFINITY)).collect();
        m.add_con(&[(vars[0], 1.0), (vars[1], 1.0)], Eq, 10.0);
        m.add_con(&[(vars[2], 1.0), (vars[3], 1.0)], Eq, 20.0);
        m.add_con(&[(vars[0], 1.0), (vars[2], 1.0)], Eq, 15.0);
        m.add_con(&[(vars[1], 1.0), (vars[3], 1.0)], Eq, 15.0);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        // Column j participates in its supply row and its demand row.
        let rows_of = [[0usize, 2], [0, 3], [1, 2], [1, 3]];
        for (j, rows) in rows_of.iter().enumerate() {
            let rc = costs[j] - rows.iter().map(|&i| r.duals[i]).sum::<f64>();
            assert!(rc >= -1e-6, "column {j}: negative reduced cost {rc} at optimality");
            if r.x[j] > 1e-6 {
                assert!(rc.abs() <= 1e-6, "basic column {j}: reduced cost {rc} != 0");
            }
        }
    }

    #[test]
    fn refactorization_counters_populate_on_long_solves() {
        // A model big enough to force more pivots than the refactor
        // interval; with the interval forced to 4, at least one
        // refactorization and many eta updates must be reported.
        let mut m = Model::new();
        let n = 14;
        let vars: Vec<_> =
            (0..n).map(|j| m.add_var(-((j % 5 + 1) as f64) - j as f64 * 1e-3, 0.0, 3.0)).collect();
        for k in 0..6 {
            let terms: Vec<_> =
                vars.iter().enumerate().map(|(j, &v)| (v, ((j + k) % 4 + 1) as f64)).collect();
            m.add_con(&terms, Le, 15.0 + k as f64);
        }
        m.set_refactor_interval(4);
        let r = m.solve_lp();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(r.eta_updates > 0, "no eta updates recorded");
        assert!(r.refactorizations > 0, "interval 4 never triggered a refactorization");
    }

    /// A tiny deterministic PRNG (xorshift64*) so the warm-start sweep
    /// does not depend on the proptest shim's sampling strategy.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            let unit = (self.0 >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
        fn next_usize(&mut self, lo: usize, hi: usize) -> usize {
            self.next_f64(lo as f64, hi as f64 + 1.0).floor().min(hi as f64) as usize
        }
    }

    /// Build a random feasible covering-style LP: minimize c x subject to
    /// a few `>=` rows and a capacity `<=` row, all satisfiable.
    fn random_master(rng: &mut Lcg, n: usize, rows: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<_> =
            (0..n).map(|_| m.add_var(rng.next_f64(0.1, 2.0), 0.0, f64::INFINITY)).collect();
        for _ in 0..rows {
            let mut terms = Vec::new();
            for &v in &vars {
                if rng.next_f64(0.0, 1.0) < 0.7 {
                    terms.push((v, rng.next_f64(0.2, 1.5)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            m.add_con(&terms, Ge, rng.next_f64(0.5, 3.0));
        }
        let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_con(&all, Le, 100.0);
        m
    }

    /// The warm-start contract: after `add_column`, a warm re-solve must
    /// reach the same objective as a cold solve of the extended model, to
    /// 1e-9, across a seeded sweep of random masters.
    #[test]
    fn warm_resolve_matches_cold_after_add_column() {
        for seed in 1..=20u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let n = rng.next_usize(3, 7);
            let rows = rng.next_usize(2, 5);
            let mut m = random_master(&mut rng, n, rows);
            let mut warm = None;
            let (first, was_warm) = m.solve_lp_with(&mut warm);
            assert!(!was_warm);
            if first.status != LpStatus::Optimal {
                continue; // rare unbounded/degenerate draw: nothing to compare
            }
            // Append a few columns, re-solving warm after each batch.
            for round in 0..3 {
                let ncols = rng.next_usize(1, 3);
                for _ in 0..ncols {
                    let mut coeffs: Vec<(usize, f64)> = Vec::new();
                    for r in 0..m.num_cons() {
                        if rng.next_f64(0.0, 1.0) < 0.8 {
                            coeffs.push((r, rng.next_f64(0.1, 1.5)));
                        }
                    }
                    m.add_column(rng.next_f64(0.05, 1.0), 0.0, f64::INFINITY, &coeffs);
                }
                let (w, was_warm) = m.solve_lp_with(&mut warm);
                assert!(was_warm, "seed {seed} round {round}: warm path not taken");
                let c = m.solve_lp();
                assert_eq!(w.status, c.status, "seed {seed} round {round}");
                if w.status == LpStatus::Optimal {
                    assert!(
                        (w.objective - c.objective).abs() < 1e-9,
                        "seed {seed} round {round}: warm {} vs cold {}",
                        w.objective,
                        c.objective
                    );
                    assert!(m.is_feasible_point(&w.x, 1e-6), "seed {seed}: warm point infeasible");
                    // Duals must price every column nonnegatively, like a
                    // cold optimum (the pricing loop relies on them).
                    for (j, v) in m.vars.iter().enumerate() {
                        let coef_sum: f64 = m
                            .cons
                            .iter()
                            .zip(&w.duals)
                            .map(|(con, &y)| {
                                con.terms
                                    .iter()
                                    .filter(|&&(var, _)| var == j)
                                    .map(|&(_, c)| c * y)
                                    .sum::<f64>()
                            })
                            .sum();
                        assert!(
                            v.obj - coef_sum >= -1e-6,
                            "seed {seed}: column {j} prices negative under warm duals"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warm_resolve_survives_objective_change() {
        // set_obj between solves is a legitimate warm restart (the basis
        // stays primal feasible); the re-solve must track the new optimum.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(2.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 4.0);
        let mut warm = None;
        let (r, _) = m.solve_lp_with(&mut warm);
        assert_close(r.objective, 4.0); // all on x
        m.set_obj(x, 3.0);
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(was_warm);
        assert_close(r.objective, 8.0); // all on y
    }

    #[test]
    fn warm_state_rejects_bound_changes() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        let mut warm = None;
        let _ = m.solve_lp_with(&mut warm);
        assert!(warm.is_some());
        m.set_bounds(x, 0.0, 1.5); // stale basis: must fall back cold
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(!was_warm);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_state_rejects_new_constraints_and_bounded_columns() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        let mut warm = None;
        let _ = m.solve_lp_with(&mut warm);
        let mut with_row = m.clone();
        with_row.add_con(&[(x, 1.0)], Le, 10.0);
        let mut warm2 = warm.clone();
        let (_, was_warm) = with_row.solve_lp_with(&mut warm2);
        assert!(!was_warm, "row count change must force a cold solve");
        // A finite-ub appended column needs a bound row: cold path.
        m.add_column(0.5, 0.0, 3.0, &[(0, 1.0)]);
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(!was_warm);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 1.0); // cover the >= 2 with the cheap column
    }

    #[test]
    fn purge_compacts_model_and_warm_state() {
        // Build a master, graft columns, purge a nonbasic one, and keep
        // re-solving warm: objectives must keep matching cold solves of
        // the compacted model.
        let mut m = Model::new();
        let a = m.add_var(1.0, 0.0, f64::INFINITY);
        let b = m.add_var(1.5, 0.0, f64::INFINITY);
        m.add_con(&[(a, 1.0), (b, 1.0)], Ge, 4.0);
        m.add_con(&[(a, 1.0)], Le, 3.0);
        let mut warm = None;
        let (r, _) = m.solve_lp_with(&mut warm);
        assert_eq!(r.status, LpStatus::Optimal);
        // An expensive column that will never be basic.
        let junk = m.add_column(9.0, 0.0, f64::INFINITY, &[(0, 1.0)]);
        let (r, was_warm) = m.solve_lp_with(&mut warm);
        assert!(was_warm);
        assert_close(r.x[junk.0], 0.0);
        let before = m.num_vars();
        assert!(purge_columns(&mut m, warm.as_mut(), &[junk]));
        assert_eq!(m.num_vars(), before - 1);
        let (r2, was_warm) = m.solve_lp_with(&mut warm);
        assert!(was_warm, "purge must keep the warm state usable");
        assert_close(r2.objective, r.objective);
        let cold = m.solve_lp();
        assert_close(r2.objective, cold.objective);
        // And the purged state still grafts fresh columns.
        m.add_column(0.25, 0.0, f64::INFINITY, &[(0, 1.0)]);
        let (r3, was_warm) = m.solve_lp_with(&mut warm);
        assert!(was_warm);
        assert_close(r3.objective, 0.25 * 4.0);
    }

    #[test]
    fn purge_refuses_basic_columns_and_bound_rows() {
        let mut m = Model::new();
        let a = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(a, 1.0)], Ge, 2.0);
        let mut warm = None;
        let _ = m.solve_lp_with(&mut warm);
        // `a` is basic (it carries the covering): refuse.
        assert!(!purge_columns(&mut m, warm.as_mut(), &[a]));
        assert_eq!(m.num_vars(), 1);
        // A bounded variable owns a bound row: refuse even when nonbasic.
        let mut m2 = Model::new();
        let p = m2.add_var(1.0, 0.0, f64::INFINITY);
        let q = m2.add_var(2.0, 0.0, 5.0);
        m2.add_con(&[(p, 1.0), (q, 1.0)], Ge, 2.0);
        let mut warm2 = None;
        let _ = m2.solve_lp_with(&mut warm2);
        assert!(!purge_columns(&mut m2, warm2.as_mut(), &[q]));
        // Out-of-range and duplicate victims are rejected too.
        assert!(!purge_columns(&mut m2, warm2.as_mut(), &[VarId(99)]));
        assert!(!purge_columns(&mut m2, warm2.as_mut(), &[p, p]));
    }

    /// A compact dense two-phase simplex, kept as a test oracle for the
    /// sparse revised engine (satellite 4(a)). Solve-only: no warm
    /// starts, no duals — just the optimal objective.
    mod dense_oracle {
        use crate::model::{LpStatus, Model, Relation};
        use crate::TOL;

        pub fn solve(model: &Model) -> (LpStatus, f64) {
            let n = model.num_vars();
            let lbs: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
            let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
            for con in &model.cons {
                let mut coeffs = vec![0.0; n];
                let mut shift = 0.0;
                for &(j, c) in &con.terms {
                    coeffs[j] += c;
                    shift += c * lbs[j];
                }
                rows.push((coeffs, con.rel, con.rhs - shift));
            }
            for (j, v) in model.vars.iter().enumerate() {
                if v.ub.is_finite() {
                    let range = v.ub - v.lb;
                    if range < -TOL {
                        return (LpStatus::Infeasible, 0.0);
                    }
                    let mut coeffs = vec![0.0; n];
                    coeffs[j] = 1.0;
                    rows.push((coeffs, Relation::Le, range.max(0.0)));
                }
            }
            if rows.is_empty() {
                if model.vars.iter().any(|v| v.obj < -TOL) {
                    return (LpStatus::Unbounded, 0.0);
                }
                let obj = model.vars.iter().map(|v| v.obj * v.lb).sum();
                return (LpStatus::Optimal, obj);
            }
            let m = rows.len();
            let num_slacks = rows.iter().filter(|(_, rel, _)| *rel != Relation::Eq).count();
            let cols = n + num_slacks + m;
            let width = cols + 1;
            let mut a = vec![0.0; m * width];
            let mut basis = vec![usize::MAX; m];
            let mut obj = vec![0.0; width];
            let art_start = n + num_slacks;
            let mut next_slack = n;
            let mut next_art = art_start;
            for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
                let sign = if *rhs < 0.0 { -1.0 } else { 1.0 };
                for (j, &c) in coeffs.iter().enumerate() {
                    a[r * width + j] = sign * c;
                }
                a[r * width + cols] = sign * rhs;
                let slack = match rel {
                    Relation::Le => {
                        let s = next_slack;
                        next_slack += 1;
                        a[r * width + s] = sign;
                        Some((s, sign))
                    }
                    Relation::Ge => {
                        let s = next_slack;
                        next_slack += 1;
                        a[r * width + s] = -sign;
                        Some((s, -sign))
                    }
                    Relation::Eq => None,
                };
                match slack {
                    Some((s, coef)) if coef > 0.0 => basis[r] = s,
                    _ => {
                        let art = next_art;
                        next_art += 1;
                        a[r * width + art] = 1.0;
                        basis[r] = art;
                    }
                }
            }
            let pivot = |a: &mut Vec<f64>,
                         obj: &mut Vec<f64>,
                         basis: &mut Vec<usize>,
                         prow: usize,
                         pcol: usize| {
                let inv = 1.0 / a[prow * width + pcol];
                for c in 0..width {
                    a[prow * width + c] *= inv;
                }
                for r in 0..m {
                    if r == prow {
                        continue;
                    }
                    let f = a[r * width + pcol];
                    if f.abs() > 1e-12 {
                        for c in 0..width {
                            a[r * width + c] -= f * a[prow * width + c];
                        }
                    }
                }
                let f = obj[pcol];
                if f.abs() > 1e-12 {
                    for c in 0..width {
                        obj[c] -= f * a[prow * width + c];
                    }
                }
                basis[prow] = pcol;
            };
            let optimize = |a: &mut Vec<f64>,
                            obj: &mut Vec<f64>,
                            basis: &mut Vec<usize>,
                            hi: usize|
             -> LpStatus {
                for _ in 0..20_000 {
                    // Bland's rule throughout: slow but cycle-free — it is
                    // only an oracle.
                    let Some(pcol) = (0..hi).find(|&c| obj[c] < -TOL) else {
                        return LpStatus::Optimal;
                    };
                    let mut best: Option<(f64, usize)> = None;
                    for r in 0..m {
                        let v = a[r * width + pcol];
                        if v > TOL {
                            let ratio = a[r * width + cols] / v;
                            match best {
                                Some((br, _)) if br <= ratio => {}
                                _ => best = Some((ratio, r)),
                            }
                        }
                    }
                    let Some((_, prow)) = best else { return LpStatus::Unbounded };
                    pivot(a, obj, basis, prow, pcol);
                }
                LpStatus::IterLimit
            };
            if next_art > art_start {
                for r in 0..m {
                    if basis[r] >= art_start {
                        for c in 0..width {
                            obj[c] -= a[r * width + c];
                        }
                    }
                }
                for o in &mut obj[art_start..next_art] {
                    *o += 1.0;
                }
                let st = optimize(&mut a, &mut obj, &mut basis, cols);
                if st != LpStatus::Optimal || -obj[cols] > 1e-6 {
                    return (LpStatus::Infeasible, 0.0);
                }
                for r in 0..m {
                    if basis[r] >= art_start {
                        if let Some(pcol) = (0..art_start).find(|&c| a[r * width + c].abs() > 1e-6)
                        {
                            pivot(&mut a, &mut obj, &mut basis, r, pcol);
                        }
                    }
                }
            }
            obj.iter_mut().for_each(|v| *v = 0.0);
            for (j, v) in model.vars.iter().enumerate() {
                obj[j] = v.obj;
            }
            for r in 0..m {
                let b = basis[r];
                let cost = obj[b];
                if cost.abs() > 1e-12 {
                    for c in 0..width {
                        obj[c] -= cost * a[r * width + c];
                    }
                    obj[b] = 0.0;
                }
            }
            let st = optimize(&mut a, &mut obj, &mut basis, art_start);
            if st != LpStatus::Optimal {
                return (st, 0.0);
            }
            let mut x = lbs.clone();
            for r in 0..m {
                if basis[r] < n {
                    x[basis[r]] = lbs[basis[r]] + a[r * width + cols].max(0.0);
                }
            }
            (LpStatus::Optimal, model.objective_value(&x))
        }
    }

    /// Satellite 4(a): the sparse revised engine must agree with the
    /// dense oracle on status and objective over a seeded sweep of
    /// `add_column` extensions and bound changes.
    #[test]
    fn revised_matches_dense_oracle_over_column_and_bound_sweeps() {
        for seed in 1..=30u64 {
            let mut rng = Lcg(seed.wrapping_mul(0xA24BAED4963EE407) | 1);
            let n = rng.next_usize(3, 6);
            let rows = rng.next_usize(2, 5);
            let mut m = Model::new();
            let vars: Vec<_> = (0..n)
                .map(|_| m.add_var(rng.next_f64(-1.0, 2.0), 0.0, rng.next_f64(2.0, 10.0)))
                .collect();
            for _ in 0..rows {
                let terms: Vec<_> = vars.iter().map(|&v| (v, rng.next_f64(0.1, 1.5))).collect();
                let r = if rng.next_f64(0.0, 1.0) < 0.5 { Ge } else { Le };
                m.add_con(&terms, r, rng.next_f64(1.0, 10.0));
            }
            for round in 0..4 {
                // Alternate: append a column, then tighten a bound.
                if round % 2 == 0 {
                    let coeffs: Vec<(usize, f64)> =
                        (0..m.num_cons()).map(|r| (r, rng.next_f64(0.1, 1.2))).collect();
                    m.add_column(rng.next_f64(-0.5, 1.0), 0.0, f64::INFINITY, &coeffs);
                } else {
                    let j = rng.next_usize(0, n - 1);
                    let (lb, ub) = m.bounds(vars[j]);
                    if ub.is_finite() {
                        let mid = lb + rng.next_f64(0.0, ub - lb);
                        if rng.next_f64(0.0, 1.0) < 0.5 {
                            m.set_bounds(vars[j], lb, mid);
                        } else {
                            m.set_bounds(vars[j], mid, ub);
                        }
                    }
                }
                let r = m.solve_lp();
                let (ost, oobj) = dense_oracle::solve(&m);
                assert_eq!(r.status, ost, "seed {seed} round {round}: status diverged");
                if ost == LpStatus::Optimal {
                    assert!(
                        (r.objective - oobj).abs() < 1e-6,
                        "seed {seed} round {round}: revised {} vs dense {}",
                        r.objective,
                        oobj
                    );
                    assert!(
                        m.is_feasible_point(&r.x, 1e-5),
                        "seed {seed} round {round}: revised point infeasible"
                    );
                }
            }
        }
    }

    proptest::proptest! {
        /// Random LPs constructed around a known feasible point: the solver
        /// must (a) report optimal, (b) return a feasible point, (c) reach
        /// an objective no worse than the seed point's.
        #[test]
        fn solves_random_feasible_lps(
            seed_x in proptest::collection::vec(0.0f64..5.0, 3..6),
            rows in proptest::collection::vec(
                proptest::collection::vec(-2.0f64..2.0, 6), 2..8),
            costs in proptest::collection::vec(-1.0f64..1.0, 6),
        ) {
            let n = seed_x.len();
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|j| m.add_var(costs[j], 0.0, 10.0)).collect();
            for row in &rows {
                let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &c)| (v, c)).collect();
                let lhs: f64 = row.iter().take(n).zip(&seed_x).map(|(c, x)| c * x).sum();
                m.add_con(&terms[..n], Le, lhs + 0.5);
            }
            let r = m.solve_lp();
            proptest::prop_assert_eq!(r.status, LpStatus::Optimal);
            proptest::prop_assert!(m.is_feasible_point(&r.x, 1e-5));
            let seed_obj: f64 = seed_x.iter().zip(&costs).map(|(x, c)| x * c).sum();
            proptest::prop_assert!(r.objective <= seed_obj + 1e-6);
        }
    }
}
