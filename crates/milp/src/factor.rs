//! Product-form basis factorization: eta file with periodic
//! refactorization.
//!
//! The revised simplex ([`crate::simplex`]) never forms `B^-1`
//! explicitly. The basis inverse is carried as a product of *eta
//! matrices* — identity except for one column — one appended per pivot
//! (the Forrest–Tomlin-style update): if the entering column's
//! transformed form is `w = B^-1 a_j` and the pivot row is `r`, then the
//! new basis satisfies `B_new = B E` where `E` is identity with column
//! `r` replaced by `w`. Solving with `B_new` is solving with `B` plus
//! one sparse eta application.
//!
//! The eta file grows by one column per pivot, so both FTRAN
//! (`x = B^-1 b`) and BTRAN (`y = c_B B^-T`) slow down linearly with
//! pivots since the last factorization. [`Factor::refactor`] rebuilds
//! the file from scratch off the current basis columns — Gaussian
//! elimination in product form, smallest-column-first with partial
//! pivoting — and the solver triggers it every
//! [`crate::model::Model::set_refactor_interval`] pivots (default 32,
//! the same cadence the column-generation master already used for its
//! cold refreshes).

/// One eta matrix: identity with column `r` replaced by a sparse column.
#[derive(Debug, Clone)]
struct Eta {
    /// Pivot row.
    r: usize,
    /// `1 / w[r]` — stored inverted so applications multiply.
    inv: f64,
    /// Off-pivot nonzeros `(row, w[row])`, `row != r`.
    nz: Vec<(usize, f64)>,
}

/// Entries below this magnitude are dropped from stored eta columns;
/// keeping denormal dust would only grow the file and add noise.
const DROP_TOL: f64 = 1e-12;

/// Pivot elements below this magnitude make a refactorization attempt
/// numerically singular; the old eta file is kept instead.
const PIVOT_TOL: f64 = 1e-10;

/// An eta-file factorization of the current simplex basis.
#[derive(Debug, Clone, Default)]
pub(crate) struct Factor {
    etas: Vec<Eta>,
    /// Etas appended by pivots since the last successful refactorization
    /// (refactorization etas do not count — they *are* the fresh start).
    updates: usize,
    /// Lifetime refactorization count (telemetry).
    pub(crate) refactorizations: u64,
    /// Lifetime pivot-eta count (telemetry).
    pub(crate) eta_updates: u64,
}

impl Factor {
    /// A factorization of the identity basis.
    pub(crate) fn identity() -> Self {
        Factor::default()
    }

    /// Pivot-etas appended since the last refactorization.
    pub(crate) fn updates_since_refactor(&self) -> usize {
        self.updates
    }

    /// Total stored nonzeros (memory-weight proxy).
    pub(crate) fn nnz(&self) -> usize {
        self.etas.iter().map(|e| e.nz.len() + 1).sum()
    }

    /// FTRAN: overwrite `x` with `B^-1 x` by applying every eta in file
    /// order.
    pub(crate) fn ftran(&self, x: &mut [f64]) {
        for eta in &self.etas {
            let t = x[eta.r] * eta.inv;
            if t == 0.0 {
                continue;
            }
            x[eta.r] = t;
            for &(i, v) in &eta.nz {
                x[i] -= v * t;
            }
        }
    }

    /// BTRAN: overwrite `y` with `B^-T y` by applying every eta in
    /// reverse file order.
    pub(crate) fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut acc = y[eta.r];
            for &(i, v) in &eta.nz {
                acc -= v * y[i];
            }
            y[eta.r] = acc * eta.inv;
        }
    }

    /// Append the pivot eta for entering column `w = B^-1 a_j` at pivot
    /// row `r` (the basis change `B <- B E`).
    pub(crate) fn update(&mut self, w: &[f64], r: usize) {
        let nz: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() > DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { r, inv: 1.0 / w[r], nz });
        self.updates += 1;
        self.eta_updates += 1;
    }

    /// Rebuild the eta file from scratch off the current basis columns:
    /// Gaussian elimination in product form. `basis_cols[k]` is the
    /// sparse matrix column of the variable basic in row `basis[k]`;
    /// columns are processed smallest-nonzero-count first (slacks and
    /// artificials become trivial one-entry etas) with partial pivoting
    /// over still-unassigned rows. On success the row assignment in
    /// `basis` is permuted to match the chosen pivot rows and `true` is
    /// returned; on a numerically singular column the old file is kept
    /// untouched and `false` is returned (the solver just keeps growing
    /// the eta file until the next trigger).
    pub(crate) fn refactor(&mut self, cols: &[Vec<(usize, f64)>], basis: &mut [usize]) -> bool {
        let m = basis.len();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&k| cols[basis[k]].len());

        let mut fresh = Factor {
            etas: Vec::with_capacity(m),
            updates: 0,
            refactorizations: self.refactorizations,
            eta_updates: self.eta_updates,
        };
        let mut assigned = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        let mut w = vec![0.0f64; m];
        for &k in &order {
            let j = basis[k];
            w.iter_mut().for_each(|v| *v = 0.0);
            for &(r, c) in &cols[j] {
                w[r] = c;
            }
            fresh.ftran(&mut w);
            // Partial pivoting over the rows no earlier column claimed.
            let mut prow = usize::MAX;
            let mut pmag = PIVOT_TOL;
            for (r, &v) in w.iter().enumerate() {
                if !assigned[r] && v.abs() > pmag {
                    pmag = v.abs();
                    prow = r;
                }
            }
            if prow == usize::MAX {
                return false; // singular: keep the old (still valid) file
            }
            let nz: Vec<(usize, f64)> = w
                .iter()
                .enumerate()
                .filter(|&(i, &v)| i != prow && v.abs() > DROP_TOL)
                .map(|(i, &v)| (i, v))
                .collect();
            fresh.etas.push(Eta { r: prow, inv: 1.0 / w[prow], nz });
            assigned[prow] = true;
            new_basis[prow] = j;
        }
        fresh.refactorizations += 1;
        *self = fresh;
        basis.copy_from_slice(&new_basis);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic PRNG so tests need no external crates.
    struct Rng(u64);
    impl Rng {
        fn f(&mut self, lo: f64, hi: f64) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            lo + (self.0 >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        }
    }

    /// Dense multiply `B x` where column of row `r`'s basic variable is
    /// `cols[basis[r]]`.
    fn apply_basis(cols: &[Vec<(usize, f64)>], basis: &[usize], x: &[f64]) -> Vec<f64> {
        let m = basis.len();
        let mut out = vec![0.0; m];
        for (r, &j) in basis.iter().enumerate() {
            for &(i, c) in &cols[j] {
                out[i] += c * x[r];
            }
        }
        out
    }

    /// Random sparse well-conditioned columns: identity plus noise.
    fn random_cols(rng: &mut Rng, m: usize) -> Vec<Vec<(usize, f64)>> {
        (0..m)
            .map(|j| {
                let mut col = vec![(j, rng.f(1.0, 3.0))];
                for i in 0..m {
                    if i != j && rng.f(0.0, 1.0) < 0.3 {
                        col.push((i, rng.f(-0.5, 0.5)));
                    }
                }
                col
            })
            .collect()
    }

    #[test]
    fn refactor_then_ftran_solves_bx_eq_b() {
        for seed in 1..=10u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let m = 8;
            let cols = random_cols(&mut rng, m);
            let mut basis: Vec<usize> = (0..m).collect();
            let mut f = Factor::identity();
            assert!(f.refactor(&cols, &mut basis), "seed {seed}: refactor failed");
            let b: Vec<f64> = (0..m).map(|_| rng.f(-2.0, 2.0)).collect();
            let mut x = b.clone();
            f.ftran(&mut x);
            let back = apply_basis(&cols, &basis, &x);
            for (i, (&bi, &ri)) in b.iter().zip(&back).enumerate() {
                assert!((bi - ri).abs() < 1e-9, "seed {seed} row {i}: {bi} vs {ri}");
            }
        }
    }

    #[test]
    fn btran_is_transpose_solve() {
        for seed in 1..=10u64 {
            let mut rng = Rng(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
            let m = 7;
            let cols = random_cols(&mut rng, m);
            let mut basis: Vec<usize> = (0..m).collect();
            let mut f = Factor::identity();
            assert!(f.refactor(&cols, &mut basis));
            let c: Vec<f64> = (0..m).map(|_| rng.f(-1.0, 1.0)).collect();
            let mut y = c.clone();
            f.btran(&mut y);
            // Check B^T y = c, i.e. for every row r: y . col(basis[r]) = c[r].
            for (r, &j) in basis.iter().enumerate() {
                let dot: f64 = cols[j].iter().map(|&(i, v)| v * y[i]).sum();
                assert!((dot - c[r]).abs() < 1e-9, "seed {seed} row {r}: {dot} vs {}", c[r]);
            }
        }
    }

    /// Satellite 4(b): after k pivot-eta updates, `B^-1 b` through the
    /// grown eta file must match a fresh refactorization of the same
    /// basis to tight tolerance.
    #[test]
    fn eta_updates_match_fresh_refactorization() {
        for seed in 1..=10u64 {
            let mut rng = Rng(seed.wrapping_mul(0x2545F4914F6CDD1D) | 1);
            let m = 9;
            // Pool wider than the basis so pivots have columns to bring in.
            let mut cols = random_cols(&mut rng, m);
            for _ in 0..m {
                let mut col = Vec::new();
                for i in 0..m {
                    if rng.f(0.0, 1.0) < 0.5 {
                        col.push((i, rng.f(-1.0, 2.0)));
                    }
                }
                if col.is_empty() {
                    col.push((0, 1.0));
                }
                cols.push(col);
            }
            let mut basis: Vec<usize> = (0..m).collect();
            let mut f = Factor::identity();
            assert!(f.refactor(&cols, &mut basis));
            // k random (valid) pivots via eta updates.
            let mut w = vec![0.0; m];
            let mut pivots = 0;
            let mut attempt = 0;
            while pivots < 6 && attempt < 60 {
                attempt += 1;
                let j = m + (rng.f(0.0, m as f64) as usize).min(m - 1);
                if basis.contains(&j) {
                    continue;
                }
                w.iter_mut().for_each(|v| *v = 0.0);
                for &(r, c) in &cols[j] {
                    w[r] = c;
                }
                f.ftran(&mut w);
                let Some((prow, _)) =
                    w.iter().enumerate().max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                else {
                    continue;
                };
                if w[prow].abs() < 0.1 {
                    continue;
                }
                f.update(&w, prow);
                basis[prow] = j;
                pivots += 1;
            }
            assert!(pivots > 0, "seed {seed}: no pivots exercised");
            assert_eq!(f.updates_since_refactor(), pivots);
            // Same solve through the eta file and through a fresh factor.
            let b: Vec<f64> = (0..m).map(|_| rng.f(-3.0, 3.0)).collect();
            let mut x_eta = b.clone();
            f.ftran(&mut x_eta);
            let mut fresh = Factor::identity();
            let mut basis2 = basis.clone();
            assert!(fresh.refactor(&cols, &mut basis2));
            let mut x_fresh = b.clone();
            fresh.ftran(&mut x_fresh);
            // The refactor may permute the row assignment; compare by
            // basic variable, not by row.
            for (r, &j) in basis.iter().enumerate() {
                let r2 = basis2.iter().position(|&jj| jj == j).expect("same basis set");
                assert!(
                    (x_eta[r] - x_fresh[r2]).abs() < 1e-8,
                    "seed {seed} var {j}: eta {} vs fresh {}",
                    x_eta[r],
                    x_fresh[r2]
                );
            }
            assert_eq!(fresh.updates_since_refactor(), 0);
        }
    }

    #[test]
    fn counters_accumulate() {
        let cols = vec![vec![(0, 2.0)], vec![(1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        let mut basis = vec![0, 1];
        let mut f = Factor::identity();
        assert!(f.refactor(&cols, &mut basis));
        assert_eq!(f.refactorizations, 1);
        let mut w = vec![1.0, 1.0];
        f.ftran(&mut w);
        f.update(&w, 0);
        assert_eq!(f.eta_updates, 1);
        assert_eq!(f.updates_since_refactor(), 1);
        let mut basis2 = vec![2, 1];
        assert!(f.refactor(&cols, &mut basis2));
        assert_eq!(f.refactorizations, 2);
        assert_eq!(f.updates_since_refactor(), 0);
    }
}
