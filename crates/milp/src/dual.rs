//! Bounded-variable dual simplex on the factorized basis: re-optimize a
//! warm basis after branching bound changes.
//!
//! A branch-and-bound child differs from its parent by exactly one
//! variable bound. The parent's optimal basis stays *dual* feasible under
//! that change (reduced costs do not involve the right-hand side), so the
//! child LP does not need a cold phase-1/phase-2 solve: translate the
//! bound change into right-hand-side deltas, push them through the
//! basis factorization (`xb = B^-1 b`), and run dual simplex pivots until
//! primal feasibility is restored. Pivot work then scales with how much
//! the bound change actually disturbed the optimum — usually a handful of
//! pivots — instead of with the whole constraint matrix.
//!
//! Representation: the primal engine ([`crate::simplex`]) keeps variable
//! bounds as shifted variables (`x' = x - lb`) plus explicit
//! `x' <= ub - lb` rows. Both kinds of bound change are RHS edits:
//!
//! * raising `lb` by `d` shifts every constraint row's RHS by `-c_j * d`
//!   and the variable's own bound row by `-d`;
//! * lowering `ub` by `d` shifts only the bound row, by `-d`.
//!
//! The deltas are applied to the stored normalized RHS `b0` and the basic
//! solution is refreshed with one FTRAN. Per dual pivot: the leaving row
//! is the most primal-infeasible basic, its inverse row `rho = B^-T e_r`
//! prices every nonbasic column's pivot element `alpha_j = rho . a_j` in
//! one sparse pass, and the entering column is chosen by a **Harris-style
//! two-pass ratio test**: pass one finds the minimum dual ratio within a
//! small tolerance, pass two picks the numerically largest pivot element
//! among the near-ties. A candidate set whose best pivot element is still
//! tiny means the basis is effectively singular for this change; the
//! engine reports that by returning `None` and the caller falls back to a
//! cold solve. An infeasible row with no eligible entering column is a
//! proof of primal infeasibility (the usual dual-simplex certificate).

use crate::model::{LpResult, LpStatus, Model};
use crate::simplex::{self, Core, WarmState};
use crate::TOL;

/// A row is primal-infeasible when its RHS is below `-FEAS_TOL`.
const FEAS_TOL: f64 = 1e-7;

/// Pivot elements smaller than this are numerically unusable; a dual
/// step forced onto one aborts to the cold path instead of dividing by
/// noise.
const PIV_TOL: f64 = 1e-7;

/// Candidacy threshold for entering columns: coefficients in
/// `(-PIV_TOL, -CAND_TOL]` are considered present (so infeasibility is
/// not declared over roundoff dust) but unusable as pivots.
const CAND_TOL: f64 = 1e-9;

/// Outcome of a warm dual re-optimization.
#[derive(Debug, Clone)]
pub struct DualOutcome {
    /// The re-solve result (`iterations` counts dual pivots *and* the
    /// primal clean-up pivots).
    pub lp: LpResult,
    /// Dual-simplex pivots alone — the work the bound change cost.
    pub dual_pivots: usize,
}

/// Re-optimize `model` from a previous optimal basis after variable-bound
/// changes (and/or appended `[0, inf)` columns / objective edits).
///
/// Returns `None` — leaving `state` in an unspecified but unused-able
/// state only on the singular path; callers must treat `None` as "discard
/// the state and solve cold" — when the change cannot be absorbed:
/// different constraint count, a finite upper bound imposed on a variable
/// that never had a bound row, a bound *relaxation* to infinity, an
/// appended column with non-`[0, inf)` bounds, or a numerically singular
/// dual step.
pub fn reoptimize(model: &Model, iter_limit: usize, state: &mut WarmState) -> Option<DualOutcome> {
    let _span = bagsched_types::obs::Span::enter("milp.dual");
    if model.cons.len() != state.num_cons {
        return None;
    }
    // Collect bound deltas against the snapshot *before* grafting new
    // columns (grafted columns enter with their model bounds, delta-free).
    let n_old = state.bounds.len();
    if model.num_vars() < n_old {
        return None;
    }
    let mut changed: Vec<(usize, f64, f64)> = Vec::new(); // (var, d_lb, bound-row rhs delta)
    for (j, (v, &(lb_old, ub_old))) in model.vars.iter().zip(&state.bounds).enumerate() {
        if v.lb == lb_old && v.ub == ub_old {
            continue;
        }
        if v.ub < v.lb - TOL {
            // Crossed bounds: trivially infeasible, no pivots needed.
            return Some(DualOutcome {
                lp: simplex::lp_fail(LpStatus::Infeasible, 0),
                dual_pivots: 0,
            });
        }
        let d_lb = v.lb - lb_old;
        let d_range = match (ub_old.is_finite(), v.ub.is_finite()) {
            (true, true) => (v.ub - v.lb) - (ub_old - lb_old),
            (false, false) => 0.0,
            // A newly finite ub needs a bound row the basis does not
            // have; relaxing a finite ub to infinity would need to delete
            // one. Neither is a branching move: cold path.
            _ => return None,
        };
        if v.ub.is_finite() && state.bound_row_of_var.get(j).copied().flatten().is_none() {
            return None;
        }
        changed.push((j, d_lb, d_range));
    }

    if !simplex::graft_columns(model, state) {
        return None;
    }
    let (rf0, eu0) = state.counters();

    // ---- Translate bound deltas into RHS deltas on `b0` and refresh
    // the basic solution with one FTRAN. ----
    if !changed.is_empty() {
        for &(j, d_lb, d_range) in &changed {
            if d_lb != 0.0 {
                for &(r, c) in &model.col_terms[j] {
                    state.c.b0[r] -= state.row_sign[r] * c * d_lb;
                }
            }
            if d_range != 0.0 {
                let br = state.bound_row_of_var[j].expect("checked above");
                // Bound rows are built with nonnegative RHS: sign = +1.
                state.c.b0[br] += d_range;
            }
        }
        state.c.xb.copy_from_slice(&state.c.b0);
        state.c.factor.ftran(&mut state.c.xb);
        for &(j, _, _) in &changed {
            state.bounds[j] = (model.vars[j].lb, model.vars[j].ub);
        }
    }

    // Costs are rebuilt from the model each call (objective edits and
    // grafted columns are picked up without dirty-tracking).
    let mut costs = vec![0.0; state.c.ncols()];
    for (col, vo) in state.var_of_col.iter().enumerate() {
        if let Some(v) = *vo {
            costs[col] = model.vars[v].obj;
        }
    }

    // ---- Dual simplex: pivot primal infeasibility away. ----
    let (art_start, art_end) = (state.art_start, state.art_end);
    let allowed = |c: usize| c < art_start || c >= art_end;
    let mut iterations = 0usize;
    let mut dual_pivots = 0usize;
    // Degenerate dual pivots (ratio 0) can cycle like primal ones; after
    // a stall streak switch to a Bland-style rule (smallest-index row and
    // column), which is finite.
    let stall_limit = 10 * state.c.rows + 50;
    let mut stalled = 0usize;
    let mut bland = false;
    let mut last_infeas = f64::INFINITY;
    // Rows whose residual infeasibility is tolerance-dust with no usable
    // entering column: skipped rather than declared infeasible.
    let mut tolerated: Vec<bool> = vec![false; state.c.rows];
    let mut rho: Vec<f64> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    let mut w: Vec<f64> = Vec::new();
    let fail = |status: LpStatus, iterations: usize, dual_pivots: usize, st: &WarmState| {
        let (rf1, eu1) = st.counters();
        Some(DualOutcome {
            lp: LpResult {
                refactorizations: (rf1 - rf0) as usize,
                eta_updates: (eu1 - eu0) as usize,
                ..simplex::lp_fail(status, iterations)
            },
            dual_pivots,
        })
    };
    loop {
        if iterations >= iter_limit {
            return fail(LpStatus::IterLimit, iterations, dual_pivots, state);
        }
        // Leaving row: most negative RHS (Bland: smallest basis index).
        let mut leave: Option<(f64, usize, usize)> = None; // (key, basis, row)
        for (r, _) in tolerated.iter().enumerate().filter(|&(_, &skip)| !skip) {
            let rhs = state.c.xb[r];
            if rhs < -FEAS_TOL {
                let b = state.c.basis[r];
                let key = if bland { (b as f64, 0, r) } else { (rhs, b, r) };
                match leave {
                    Some((kr, kb, _)) if (kr, kb) <= (key.0, key.1) => {}
                    _ => leave = Some(key),
                }
            }
        }
        let Some((_, _, prow)) = leave else { break };

        // One BTRAN pair prices the whole row: `alpha_j = rho . a_j` is
        // the pivot element, `costs_j - y . a_j` the reduced cost.
        state.c.btran_unit(prow, &mut rho);
        state.c.btran_costs(&costs, &mut y);
        let mut has_candidate = false;
        let mut min_ratio = f64::INFINITY;
        // (col, |alpha|, ratio) for every usable candidate of this row.
        let mut cands: Vec<(usize, f64, f64)> = Vec::new();
        for (j, col) in state.c.cols.iter().enumerate() {
            if state.c.in_basis[j] || !allowed(j) {
                continue;
            }
            let alpha = Core::dot(col, &rho);
            if alpha < -CAND_TOL {
                has_candidate = true;
                if alpha <= -PIV_TOL {
                    let rc = costs[j] - Core::dot(col, &y);
                    let ratio = rc.max(0.0) / -alpha;
                    if ratio < min_ratio {
                        min_ratio = ratio;
                    }
                    cands.push((j, -alpha, ratio));
                }
            }
        }
        if !has_candidate {
            if state.c.xb[prow] < -1e-6 {
                // Nonnegative combination of nonnegative variables equals
                // a negative number: primal infeasible, certified.
                return fail(LpStatus::Infeasible, iterations, dual_pivots, state);
            }
            // Dust-sized residual with nothing to pivot on: tolerate.
            tolerated[prow] = true;
            continue;
        }
        if min_ratio.is_infinite() {
            // Candidates exist but every usable pivot element is tiny:
            // numerically singular step, let the caller refactorize.
            return None;
        }
        let slack = min_ratio + 1e-9;
        let mut pcol: Option<(f64, usize)> = None; // (|alpha|, col); Bland: smallest col
        for &(j, mag, ratio) in &cands {
            if ratio <= slack {
                if bland {
                    pcol = Some((mag, j));
                    break;
                }
                match pcol {
                    Some((m, _)) if m >= mag => {}
                    _ => pcol = Some((mag, j)),
                }
            }
        }
        let (_, pcol) = pcol.expect("min_ratio finite implies a usable candidate");
        state.c.ftran_col(pcol, &mut w);
        state.c.pivot(prow, pcol, &w);
        iterations += 1;
        dual_pivots += 1;
        // A pivot can re-disturb rows previously written off as dust.
        tolerated.iter_mut().for_each(|v| *v = false);
        let infeas: f64 = state.c.xb.iter().map(|&x| (-x).max(0.0)).sum();
        if infeas < last_infeas - TOL {
            last_infeas = infeas;
            stalled = 0;
            bland = false;
        } else {
            stalled += 1;
            if stalled >= stall_limit {
                bland = true;
            }
        }
    }

    // ---- Primal clean-up: objective edits or grafted columns may have
    // left dual-infeasible (negative reduced cost) columns. ----
    let status = state.c.optimize(&costs, allowed, iter_limit, &mut iterations);
    if status != LpStatus::Optimal {
        return fail(status, iterations, dual_pivots, state);
    }
    let (rf1, eu1) = state.counters();
    Some(DualOutcome {
        lp: simplex::extract_optimal(
            model,
            state,
            iterations,
            (rf1 - rf0) as usize,
            (eu1 - eu0) as usize,
        ),
        dual_pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation::*, VarId};
    use crate::simplex::solve_with_state;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    fn warm_of(m: &Model) -> WarmState {
        let (lp, state) = solve_with_state(m, 10_000);
        assert_eq!(lp.status, LpStatus::Optimal);
        state.expect("optimal solves return a state")
    }

    #[test]
    fn ub_tightening_matches_cold() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum (2, 6).
        // Branch "y <= 4": new optimum x = 10/3, y = 4, z = -30.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, 10.0);
        let y = m.add_var(-5.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let mut state = warm_of(&m);
        m.set_bounds(y, 0.0, 4.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("bound row exists: warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
        assert_close(out.lp.x[1], 4.0);
        assert!(out.dual_pivots >= 1, "tightening past the optimum must pivot");
    }

    #[test]
    fn lb_raising_matches_cold() {
        // Same LP; branch "x >= 3": optimum x = 3, y = 4.5, z = -31.5.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, 10.0);
        let y = m.add_var(-5.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 3.0, 10.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
        assert_close(out.lp.x[0], 3.0);
    }

    #[test]
    fn unchanged_bounds_are_a_no_op_resolve() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 5.0);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        let mut state = warm_of(&m);
        let out = reoptimize(&m, 10_000, &mut state).expect("no change absorbs trivially");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        assert_close(out.lp.objective, 2.0);
        assert_eq!(out.dual_pivots, 0, "nothing moved, nothing to pivot");
    }

    #[test]
    fn infeasible_branch_detected_without_cold_solve() {
        // x >= 3 against x <= 2 (via constraint): dual simplex must
        // certify infeasibility from the warm basis.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 2.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 3.0, 10.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Infeasible);
    }

    #[test]
    fn crossed_bounds_infeasible_immediately() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 8.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 6.0, 2.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("crossed bounds short-circuit");
        assert_eq!(out.lp.status, LpStatus::Infeasible);
        assert_eq!(out.dual_pivots, 0);
    }

    #[test]
    fn newly_finite_ub_rejected() {
        // The variable never had a bound row: the basis cannot encode
        // the new ub, so the engine must hand back to the cold path.
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 9.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 0.0, 4.0);
        assert!(reoptimize(&m, 10_000, &mut state).is_none());
    }

    #[test]
    fn lb_raise_on_unbounded_var_is_absorbed() {
        // No bound row needed for a pure lb raise.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 4.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 3.0, f64::INFINITY);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        assert_close(out.lp.objective, 4.0);
        assert!(out.lp.x[0] >= 3.0 - 1e-9);
    }

    #[test]
    fn bound_change_then_columns_then_more_bounds() {
        // The B&B + tree-pricing lifecycle: branch, graft a column, branch
        // again — one WarmState absorbs the whole sequence.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 10.0);
        let y = m.add_var(2.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 6.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 0.0, 2.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_close(out.lp.objective, 2.0 + 2.0 * 4.0); // x=2, y=4
                                                         // A cheaper column arrives (cost 0.5, covers the row): the whole
                                                         // demand moves onto it.
        m.add_column(0.5, 0.0, f64::INFINITY, &[(0, 1.0)]);
        let out = reoptimize(&m, 10_000, &mut state).expect("graft + primal clean-up");
        assert_close(out.lp.objective, 0.5 * 6.0);
        // And a further branch on x.
        m.set_bounds(x, 1.0, 2.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
    }

    #[test]
    fn duals_usable_for_pricing_after_reoptimize() {
        // Covering LP: after a bound change the re-optimized duals must
        // still price every column nonnegatively (pricing relies on it).
        let mut m = Model::new();
        let a = m.add_var(1.0, 0.0, 10.0);
        let b = m.add_var(1.5, 0.0, 10.0);
        m.add_con(&[(a, 1.0), (b, 2.0)], Ge, 8.0);
        m.add_con(&[(a, 1.0)], Le, 6.0);
        let mut state = warm_of(&m);
        m.set_bounds(a, 0.0, 3.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        for (j, v) in [(0, 1.0), (1, 1.5)] {
            let coef_sum: f64 = m
                .cons
                .iter()
                .zip(&out.lp.duals)
                .map(|(con, &y)| {
                    con.terms.iter().filter(|&&(var, _)| var == j).map(|&(_, c)| c * y).sum::<f64>()
                })
                .sum();
            assert!(v - coef_sum >= -1e-6, "column {j} prices negative after reoptimize");
        }
    }

    /// Regression for the purge/branch interaction: purging a column
    /// *below* a bounded variable shifts the variable's index, and the
    /// compacted `bound_row_of_var` must follow it — otherwise the next
    /// branching bound change lands on the wrong (or no) bound row.
    #[test]
    fn purge_then_reoptimize_keeps_bound_rows_mapped() {
        let mut m = Model::new();
        // An expensive never-basic column deliberately placed below the
        // bounded variables so a purge shifts their indices.
        let junk = m.add_var(9.0, 0.0, f64::INFINITY);
        let x = m.add_var(-3.0, 0.0, 10.0);
        let y = m.add_var(-5.0, 0.0, 10.0);
        m.add_con(&[(junk, 1.0), (x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let mut state = warm_of(&m);
        assert!(crate::simplex::purge_columns(&mut m, Some(&mut state), &[junk]));
        assert_eq!(m.num_vars(), 2);
        // Branch on (shifted) y: its bound row must still be the one the
        // builder created for it.
        let y2 = VarId(y.0 - 1);
        m.set_bounds(y2, 0.0, 4.0);
        let out =
            reoptimize(&m, 10_000, &mut state).expect("bound rows must stay mapped after purge");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
        assert_close(out.lp.x[y2.0], 4.0);
        // And branch on (shifted) x too, for good measure.
        let x2 = VarId(x.0 - 1);
        m.set_bounds(x2, 1.0, 3.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
    }

    /// Seeded sweep: random bounded LPs, random bound tightenings — the
    /// warm dual re-solve must agree with a cold solve on status and
    /// objective every time.
    #[test]
    fn random_bound_changes_match_cold() {
        struct Rng(u64);
        impl Rng {
            fn f(&mut self, lo: f64, hi: f64) -> f64 {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                lo + (self.0 >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
            }
            fn u(&mut self, lo: usize, hi: usize) -> usize {
                self.f(lo as f64, hi as f64 + 1.0).floor().min(hi as f64) as usize
            }
        }
        for seed in 1..=40u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let n = rng.u(3, 6);
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|_| m.add_var(rng.f(-1.0, 2.0), 0.0, 10.0)).collect();
            for _ in 0..rng.u(2, 5) {
                let terms: Vec<_> = vars.iter().map(|&v| (v, rng.f(0.1, 1.5))).collect();
                m.add_con(&terms, if rng.f(0.0, 1.0) < 0.5 { Ge } else { Le }, rng.f(1.0, 12.0));
            }
            let (lp, state) = solve_with_state(&m, 10_000);
            if lp.status != LpStatus::Optimal {
                continue;
            }
            let mut state = state.unwrap();
            for round in 0..4 {
                // Tighten a random bound the way branching would.
                let j = rng.u(0, n - 1);
                let (lb, ub) = m.bounds(vars[j]);
                if rng.f(0.0, 1.0) < 0.5 {
                    m.set_bounds(vars[j], lb, (lb + rng.f(0.0, ub - lb)).min(ub));
                } else {
                    m.set_bounds(vars[j], (ub - rng.f(0.0, ub - lb)).max(lb), ub);
                }
                let Some(out) = reoptimize(&m, 10_000, &mut state) else {
                    break; // singular step: cold fallback, nothing to check
                };
                let cold = m.solve_lp();
                assert_eq!(
                    out.lp.status, cold.status,
                    "seed {seed} round {round}: warm status diverged"
                );
                if cold.status != LpStatus::Optimal {
                    break; // state is spent once the LP went infeasible
                }
                assert!(
                    (out.lp.objective - cold.objective).abs() < 1e-6,
                    "seed {seed} round {round}: warm {} vs cold {}",
                    out.lp.objective,
                    cold.objective
                );
                assert!(
                    m.is_feasible_point(&out.lp.x, 1e-5),
                    "seed {seed} round {round}: warm point infeasible"
                );
            }
        }
    }
}
