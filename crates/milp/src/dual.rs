//! Bounded-variable dual simplex: re-optimize a warm basis after
//! branching bound changes.
//!
//! A branch-and-bound child differs from its parent by exactly one
//! variable bound. The parent's optimal basis stays *dual* feasible under
//! that change (reduced costs do not involve the right-hand side), so the
//! child LP does not need a cold phase-1/phase-2 solve: translate the
//! bound change into right-hand-side deltas, push them through the
//! implicit `B^-1` the tableau carries, and run dual simplex pivots until
//! primal feasibility is restored. Pivot work then scales with how much
//! the bound change actually disturbed the optimum — usually a handful of
//! pivots — instead of with the whole tableau.
//!
//! Representation: the primal tableau ([`crate::simplex`]) keeps variable
//! bounds as shifted variables (`x' = x - lb`) plus explicit
//! `x' <= ub - lb` rows. Both kinds of bound change are RHS edits:
//!
//! * raising `lb` by `d` shifts every constraint row's RHS by `-c_j * d`
//!   and the variable's own bound row by `-d`;
//! * lowering `ub` by `d` shifts only the bound row, by `-d`.
//!
//! The new tableau RHS is `old + B^-1 * delta_b`, and column `r` of
//! `B^-1` is the current tableau column of row `r`'s initial basis — the
//! same device the warm column graft uses.
//!
//! The entering column is chosen by a **Harris-style two-pass ratio
//! test**: pass one finds the minimum dual ratio within a small
//! tolerance, pass two picks the numerically largest pivot element among
//! the near-ties. A candidate set whose best pivot element is still tiny
//! means the basis is effectively singular for this change; the engine
//! reports that by returning `None` and the caller falls back to a cold
//! solve. An infeasible row with no eligible entering column is a proof
//! of primal infeasibility (the usual dual-simplex certificate).

use crate::model::{LpResult, LpStatus, Model};
use crate::simplex::{self, WarmState};
use crate::TOL;

/// A row is primal-infeasible when its RHS is below `-FEAS_TOL`.
const FEAS_TOL: f64 = 1e-7;

/// Pivot elements smaller than this are numerically unusable; a dual
/// step forced onto one aborts to the cold path instead of dividing by
/// noise.
const PIV_TOL: f64 = 1e-7;

/// Candidacy threshold for entering columns: coefficients in
/// `(-PIV_TOL, -CAND_TOL]` are considered present (so infeasibility is
/// not declared over roundoff dust) but unusable as pivots.
const CAND_TOL: f64 = 1e-9;

/// Outcome of a warm dual re-optimization.
#[derive(Debug, Clone)]
pub struct DualOutcome {
    /// The re-solve result (`iterations` counts dual pivots *and* the
    /// primal clean-up pivots).
    pub lp: LpResult,
    /// Dual-simplex pivots alone — the work the bound change cost.
    pub dual_pivots: usize,
}

/// Re-optimize `model` from a previous optimal basis after variable-bound
/// changes (and/or appended `[0, inf)` columns / objective edits).
///
/// Returns `None` — leaving `state` in an unspecified but unused-able
/// state only on the singular path; callers must treat `None` as "discard
/// the state and solve cold" — when the change cannot be absorbed:
/// different constraint count, a finite upper bound imposed on a variable
/// that never had a bound row, a bound *relaxation* to infinity, an
/// appended column with non-`[0, inf)` bounds, or a numerically singular
/// dual step.
pub fn reoptimize(model: &Model, iter_limit: usize, state: &mut WarmState) -> Option<DualOutcome> {
    if model.cons.len() != state.num_cons {
        return None;
    }
    // Collect bound deltas against the snapshot *before* grafting new
    // columns (grafted columns enter with their model bounds, delta-free).
    let n_old = state.bounds.len();
    if model.num_vars() < n_old {
        return None;
    }
    let mut changed: Vec<(usize, f64, f64)> = Vec::new(); // (var, d_lb, old->new ub delta on the bound row)
    for (j, (v, &(lb_old, ub_old))) in model.vars.iter().zip(&state.bounds).enumerate() {
        if v.lb == lb_old && v.ub == ub_old {
            continue;
        }
        if v.ub < v.lb - TOL {
            // Crossed bounds: trivially infeasible, no pivots needed.
            return Some(DualOutcome {
                lp: LpResult {
                    status: LpStatus::Infeasible,
                    x: vec![],
                    objective: 0.0,
                    iterations: 0,
                    duals: vec![],
                },
                dual_pivots: 0,
            });
        }
        let d_lb = v.lb - lb_old;
        let d_range = match (ub_old.is_finite(), v.ub.is_finite()) {
            (true, true) => (v.ub - v.lb) - (ub_old - lb_old),
            (false, false) => 0.0,
            // A newly finite ub needs a bound row the tableau does not
            // have; relaxing a finite ub to infinity would need to delete
            // one. Neither is a branching move: cold path.
            _ => return None,
        };
        if v.ub.is_finite() && state.bound_row_of_var.get(j).copied().flatten().is_none() {
            return None;
        }
        changed.push((j, d_lb, d_range));
    }

    if !simplex::graft_columns(model, state) {
        return None;
    }

    // ---- Translate bound deltas into per-row RHS deltas. ----
    if !changed.is_empty() {
        let mut delta_b = vec![0.0f64; state.t.rows];
        for ((con, &sign), delta) in model.cons.iter().zip(&state.row_sign).zip(&mut delta_b) {
            for &(j, c) in &con.terms {
                if let Some(&(_, d_lb, _)) = changed.iter().find(|&&(v, _, _)| v == j) {
                    if d_lb != 0.0 {
                        *delta -= sign * c * d_lb;
                    }
                }
            }
        }
        for &(j, _, d_range) in &changed {
            if d_range != 0.0 {
                let br = state.bound_row_of_var[j].expect("checked above");
                // Bound rows are built with nonnegative RHS: sign = +1.
                delta_b[br] += d_range;
            }
        }
        // New RHS = old RHS + B^-1 * delta_b; column r of B^-1 is the
        // tableau column of row r's initial identity basis.
        for (r, &d) in delta_b.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            let bc = state.init_col[r];
            for i in 0..state.t.rows {
                let coef = state.t.at(i, bc);
                if coef != 0.0 {
                    *state.t.rhs_mut(i) += d * coef;
                }
            }
        }
        for &(j, _, _) in &changed {
            state.bounds[j] = (model.vars[j].lb, model.vars[j].ub);
        }
    }

    // A pure bound change leaves the reduced-cost row valid (pivots
    // maintain it and RHS edits never touch it); only grafted columns or
    // cost edits force the O(rows*cols) rebuild.
    if simplex::obj_dirty(model, state) {
        simplex::rebuild_obj(model, state);
    }

    // ---- Dual simplex: pivot primal infeasibility away. ----
    let (art_start, art_end) = (state.art_start, state.art_end);
    let allowed = |c: usize| c < art_start || c >= art_end;
    let t = &mut state.t;
    let mut iterations = 0usize;
    let mut dual_pivots = 0usize;
    // Degenerate dual pivots (ratio 0) can cycle like primal ones; after
    // a stall streak switch to a Bland-style rule (smallest-index row and
    // column), which is finite.
    let stall_limit = 10 * t.rows + 50;
    let mut stalled = 0usize;
    let mut bland = false;
    let mut last_infeas = f64::INFINITY;
    // Rows whose residual infeasibility is tolerance-dust with no usable
    // entering column: skipped rather than declared infeasible.
    let mut tolerated: Vec<bool> = vec![false; t.rows];
    loop {
        if iterations >= iter_limit {
            return Some(DualOutcome {
                lp: LpResult {
                    status: LpStatus::IterLimit,
                    x: vec![],
                    objective: 0.0,
                    iterations,
                    duals: vec![],
                },
                dual_pivots,
            });
        }
        // Leaving row: most negative RHS (Bland: smallest basis index).
        let mut leave: Option<(f64, usize, usize)> = None; // (rhs, basis, row)
        for (r, _) in tolerated.iter().enumerate().filter(|&(_, &skip)| !skip) {
            let rhs = t.rhs(r);
            if rhs < -FEAS_TOL {
                let key = if bland { (t.basis[r] as f64, 0, r) } else { (rhs, t.basis[r], r) };
                match leave {
                    Some((kr, kb, _)) if (kr, kb) <= (key.0, key.1) => {}
                    _ => leave = Some(key),
                }
            }
        }
        let Some((_, _, prow)) = leave else { break };

        // Entering column, Harris-style: pass 1 finds the minimum dual
        // ratio |rc / a| over usable candidates; pass 2 takes the largest
        // pivot element among ratios within a slack of the minimum.
        let mut has_candidate = false;
        let mut min_ratio = f64::INFINITY;
        for c in 0..t.cols {
            if !allowed(c) {
                continue;
            }
            let a = t.at(prow, c);
            if a < -CAND_TOL {
                has_candidate = true;
                if a <= -PIV_TOL {
                    let ratio = t.obj[c].max(0.0) / -a;
                    if ratio < min_ratio {
                        min_ratio = ratio;
                    }
                }
            }
        }
        if !has_candidate {
            let rhs = t.rhs(prow);
            if rhs < -1e-6 {
                // Nonnegative combination of nonnegative variables equals
                // a negative number: primal infeasible, certified.
                return Some(DualOutcome {
                    lp: LpResult {
                        status: LpStatus::Infeasible,
                        x: vec![],
                        objective: 0.0,
                        iterations,
                        duals: vec![],
                    },
                    dual_pivots,
                });
            }
            // Dust-sized residual with nothing to pivot on: tolerate.
            tolerated[prow] = true;
            continue;
        }
        if min_ratio.is_infinite() {
            // Candidates exist but every usable pivot element is tiny:
            // numerically singular step, let the caller refactorize.
            return None;
        }
        let slack = min_ratio + 1e-9;
        let mut pcol: Option<(f64, usize)> = None; // (|a|, col); Bland: smallest col
        for c in 0..t.cols {
            if !allowed(c) {
                continue;
            }
            let a = t.at(prow, c);
            if a <= -PIV_TOL && t.obj[c].max(0.0) / -a <= slack {
                if bland {
                    pcol = Some((a.abs(), c));
                    break;
                }
                match pcol {
                    Some((mag, _)) if mag >= a.abs() => {}
                    _ => pcol = Some((a.abs(), c)),
                }
            }
        }
        let (_, pcol) = pcol.expect("min_ratio finite implies a usable candidate");
        t.pivot(prow, pcol);
        iterations += 1;
        dual_pivots += 1;
        // A pivot can re-disturb rows previously written off as dust.
        tolerated.iter_mut().for_each(|v| *v = false);
        let infeas: f64 = (0..t.rows).map(|r| (-t.rhs(r)).max(0.0)).sum();
        if infeas < last_infeas - TOL {
            last_infeas = infeas;
            stalled = 0;
            bland = false;
        } else {
            stalled += 1;
            if stalled >= stall_limit {
                bland = true;
            }
        }
    }

    // ---- Primal clean-up: objective edits or grafted columns may have
    // left dual-infeasible (negative reduced cost) columns. ----
    let status = t.optimize(allowed, iter_limit, &mut iterations);
    if status != LpStatus::Optimal {
        return Some(DualOutcome {
            lp: LpResult { status, x: vec![], objective: 0.0, iterations, duals: vec![] },
            dual_pivots,
        });
    }
    Some(DualOutcome { lp: simplex::extract_optimal(model, state, iterations), dual_pivots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation::*};
    use crate::simplex::solve_with_state;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    fn warm_of(m: &Model) -> WarmState {
        let (lp, state) = solve_with_state(m, 10_000);
        assert_eq!(lp.status, LpStatus::Optimal);
        state.expect("optimal solves return a state")
    }

    #[test]
    fn ub_tightening_matches_cold() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum (2, 6).
        // Branch "y <= 4": new optimum x = 10/3, y = 4, z = -30.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, 10.0);
        let y = m.add_var(-5.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let mut state = warm_of(&m);
        m.set_bounds(y, 0.0, 4.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("bound row exists: warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
        assert_close(out.lp.x[1], 4.0);
        assert!(out.dual_pivots >= 1, "tightening past the optimum must pivot");
    }

    #[test]
    fn lb_raising_matches_cold() {
        // Same LP; branch "x >= 3": optimum x = 3, y = 4.5, z = -31.5.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, 10.0);
        let y = m.add_var(-5.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 4.0);
        m.add_con(&[(y, 2.0)], Le, 12.0);
        m.add_con(&[(x, 3.0), (y, 2.0)], Le, 18.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 3.0, 10.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
        assert_close(out.lp.x[0], 3.0);
    }

    #[test]
    fn unchanged_bounds_are_a_no_op_resolve() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 5.0);
        m.add_con(&[(x, 1.0)], Ge, 2.0);
        let mut state = warm_of(&m);
        let out = reoptimize(&m, 10_000, &mut state).expect("no change absorbs trivially");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        assert_close(out.lp.objective, 2.0);
        assert_eq!(out.dual_pivots, 0, "nothing moved, nothing to pivot");
    }

    #[test]
    fn infeasible_branch_detected_without_cold_solve() {
        // x >= 3 against x <= 2 (via constraint): dual simplex must
        // certify infeasibility from the warm basis.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 2.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 3.0, 10.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Infeasible);
    }

    #[test]
    fn crossed_bounds_infeasible_immediately() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0)], Le, 8.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 6.0, 2.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("crossed bounds short-circuit");
        assert_eq!(out.lp.status, LpStatus::Infeasible);
        assert_eq!(out.dual_pivots, 0);
    }

    #[test]
    fn newly_finite_ub_rejected() {
        // The variable never had a bound row: the tableau cannot encode
        // the new ub, so the engine must hand back to the cold path.
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0)], Le, 9.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 0.0, 4.0);
        assert!(reoptimize(&m, 10_000, &mut state).is_none());
    }

    #[test]
    fn lb_raise_on_unbounded_var_is_absorbed() {
        // No bound row needed for a pure lb raise.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_var(1.0, 0.0, f64::INFINITY);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 4.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 3.0, f64::INFINITY);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        assert_close(out.lp.objective, 4.0);
        assert!(out.lp.x[0] >= 3.0 - 1e-9);
    }

    #[test]
    fn bound_change_then_columns_then_more_bounds() {
        // The B&B + tree-pricing lifecycle: branch, graft a column, branch
        // again — one WarmState absorbs the whole sequence.
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 10.0);
        let y = m.add_var(2.0, 0.0, 10.0);
        m.add_con(&[(x, 1.0), (y, 1.0)], Ge, 6.0);
        let mut state = warm_of(&m);
        m.set_bounds(x, 0.0, 2.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_close(out.lp.objective, 2.0 + 2.0 * 4.0); // x=2, y=4
                                                         // A cheaper column arrives (cost 0.5, covers the row): the whole
                                                         // demand moves onto it.
        m.add_column(0.5, 0.0, f64::INFINITY, &[(0, 1.0)]);
        let out = reoptimize(&m, 10_000, &mut state).expect("graft + primal clean-up");
        assert_close(out.lp.objective, 0.5 * 6.0);
        // And a further branch on x.
        m.set_bounds(x, 1.0, 2.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        let cold = m.solve_lp();
        assert_close(out.lp.objective, cold.objective);
    }

    #[test]
    fn duals_usable_for_pricing_after_reoptimize() {
        // Covering LP: after a bound change the re-optimized duals must
        // still price every column nonnegatively (pricing relies on it).
        let mut m = Model::new();
        let a = m.add_var(1.0, 0.0, 10.0);
        let b = m.add_var(1.5, 0.0, 10.0);
        m.add_con(&[(a, 1.0), (b, 2.0)], Ge, 8.0);
        m.add_con(&[(a, 1.0)], Le, 6.0);
        let mut state = warm_of(&m);
        m.set_bounds(a, 0.0, 3.0);
        let out = reoptimize(&m, 10_000, &mut state).expect("warm path");
        assert_eq!(out.lp.status, LpStatus::Optimal);
        for (j, v) in [(0, 1.0), (1, 1.5)] {
            let coef_sum: f64 = m
                .cons
                .iter()
                .zip(&out.lp.duals)
                .map(|(con, &y)| {
                    con.terms.iter().filter(|&&(var, _)| var == j).map(|&(_, c)| c * y).sum::<f64>()
                })
                .sum();
            assert!(v - coef_sum >= -1e-6, "column {j} prices negative after reoptimize");
        }
    }

    /// Seeded sweep: random bounded LPs, random bound tightenings — the
    /// warm dual re-solve must agree with a cold solve on status and
    /// objective every time.
    #[test]
    fn random_bound_changes_match_cold() {
        struct Rng(u64);
        impl Rng {
            fn f(&mut self, lo: f64, hi: f64) -> f64 {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                lo + (self.0 >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
            }
            fn u(&mut self, lo: usize, hi: usize) -> usize {
                self.f(lo as f64, hi as f64 + 1.0).floor().min(hi as f64) as usize
            }
        }
        for seed in 1..=40u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let n = rng.u(3, 6);
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|_| m.add_var(rng.f(-1.0, 2.0), 0.0, 10.0)).collect();
            for _ in 0..rng.u(2, 5) {
                let terms: Vec<_> = vars.iter().map(|&v| (v, rng.f(0.1, 1.5))).collect();
                m.add_con(&terms, if rng.f(0.0, 1.0) < 0.5 { Ge } else { Le }, rng.f(1.0, 12.0));
            }
            let (lp, state) = solve_with_state(&m, 10_000);
            if lp.status != LpStatus::Optimal {
                continue;
            }
            let mut state = state.unwrap();
            for round in 0..4 {
                // Tighten a random bound the way branching would.
                let j = rng.u(0, n - 1);
                let (lb, ub) = m.bounds(vars[j]);
                if rng.f(0.0, 1.0) < 0.5 {
                    m.set_bounds(vars[j], lb, (lb + rng.f(0.0, ub - lb)).min(ub));
                } else {
                    m.set_bounds(vars[j], (ub - rng.f(0.0, ub - lb)).max(lb), ub);
                }
                let Some(out) = reoptimize(&m, 10_000, &mut state) else {
                    break; // singular step: cold fallback, nothing to check
                };
                let cold = m.solve_lp();
                assert_eq!(
                    out.lp.status, cold.status,
                    "seed {seed} round {round}: warm status diverged"
                );
                if cold.status != LpStatus::Optimal {
                    break; // state is spent once the LP went infeasible
                }
                assert!(
                    (out.lp.objective - cold.objective).abs() < 1e-6,
                    "seed {seed} round {round}: warm {} vs cold {}",
                    out.lp.objective,
                    cold.objective
                );
                assert!(
                    m.is_feasible_point(&out.lp.x, 1e-5),
                    "seed {seed} round {round}: warm point infeasible"
                );
            }
        }
    }
}
