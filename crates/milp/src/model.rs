//! Modelling layer: variables, bounds, integrality, linear constraints.
//!
//! All problems are *minimization*; maximize by negating the objective.
//! Variable lower bounds must be finite (the schedulers only ever need
//! `x >= 0`); upper bounds may be `f64::INFINITY`.

use crate::simplex;
use crate::TOL;

/// Index of a variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `<= rhs`
    Le,
    /// `== rhs`
    Eq,
    /// `>= rhs`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub obj: f64,
    pub lb: f64,
    pub ub: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: `(variable, coefficient)`, coalesced on build.
    pub terms: Vec<(usize, f64)>,
    pub rel: Relation,
    pub rhs: f64,
}

/// A linear (mixed-integer) minimization problem.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<Constraint>,
    /// Column-major mirror of the constraint matrix: `col_terms[j]` lists
    /// `(constraint index, coefficient)` for variable `j`. Maintained by
    /// every mutator so the revised simplex can price and graft columns
    /// without scanning rows.
    pub(crate) col_terms: Vec<Vec<(usize, f64)>>,
    /// Pivots between basis refactorizations in the revised simplex.
    pub(crate) refactor_interval: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model { vars: Vec::new(), cons: Vec::new(), col_terms: Vec::new(), refactor_interval: 32 }
    }
}

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration budget was exhausted before convergence.
    IterLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    pub status: LpStatus,
    /// Variable values (original variable space); empty unless `Optimal`.
    pub x: Vec<f64>,
    /// Objective value; meaningful only when `Optimal`.
    pub objective: f64,
    /// Simplex iterations spent (both phases).
    pub iterations: usize,
    /// Dual value (simplex multiplier) per model constraint, in
    /// constraint order; empty unless `Optimal`. The reduced cost of any
    /// column `a` with cost `c` is `c - sum_i duals[i] * a[i]` — the
    /// quantity a column-generation pricing oracle minimizes. Duals of
    /// variable-bound rows are internal and not reported.
    pub duals: Vec<f64>,
    /// Basis refactorizations performed during this solve.
    pub refactorizations: usize,
    /// Eta updates (factorized pivots) appended during this solve.
    pub eta_updates: usize,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Add a continuous variable with objective coefficient `obj` and
    /// bounds `[lb, ub]` (`ub` may be infinite; `lb` must be finite).
    pub fn add_var(&mut self, obj: f64, lb: f64, ub: f64) -> VarId {
        assert!(lb.is_finite(), "lower bounds must be finite");
        assert!(!ub.is_nan() && ub >= lb - TOL, "need lb <= ub, got [{lb}, {ub}]");
        self.vars.push(VarDef { obj, lb, ub, integer: false });
        self.col_terms.push(Vec::new());
        VarId(self.vars.len() - 1)
    }

    /// Add an integer variable with objective coefficient `obj` and bounds
    /// `[lb, ub]`.
    pub fn add_int_var(&mut self, obj: f64, lb: f64, ub: f64) -> VarId {
        let v = self.add_var(obj, lb, ub);
        self.vars[v.0].integer = true;
        v
    }

    /// Mark an existing variable integer.
    pub fn set_integer(&mut self, v: VarId, integer: bool) {
        self.vars[v.0].integer = integer;
    }

    /// Tighten (replace) the bounds of a variable.
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        assert!(lb.is_finite(), "lower bounds must be finite");
        self.vars[v.0].lb = lb;
        self.vars[v.0].ub = ub;
    }

    /// Current bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lb, self.vars[v.0].ub)
    }

    /// Whether a variable is integer-constrained.
    pub fn is_integer(&self, v: VarId) -> bool {
        self.vars[v.0].integer
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Add the constraint `sum(coeff * var) rel rhs`. Duplicate variable
    /// mentions are summed; zero coefficients are dropped.
    pub fn add_con(&mut self, terms: &[(VarId, f64)], rel: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut coalesced: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.vars.len(), "variable out of range");
            assert!(c.is_finite(), "coefficients must be finite");
            match coalesced.iter_mut().find(|(u, _)| *u == v.0) {
                Some((_, acc)) => *acc += c,
                None => coalesced.push((v.0, c)),
            }
        }
        coalesced.retain(|&(_, c)| c.abs() > 0.0);
        let row = self.cons.len();
        for &(j, c) in &coalesced {
            self.col_terms[j].push((row, c));
        }
        self.cons.push(Constraint { terms: coalesced, rel, rhs });
    }

    /// Append a variable (column) with objective `obj`, bounds
    /// `[lb, ub]`, and coefficients into *existing* constraints, given as
    /// `(constraint index, coefficient)` pairs. This is the incremental
    /// interface column generation needs: the model — the simplex input —
    /// is extended in place instead of being rebuilt per column.
    pub fn add_column(&mut self, obj: f64, lb: f64, ub: f64, coeffs: &[(usize, f64)]) -> VarId {
        let v = self.add_var(obj, lb, ub);
        for &(r, c) in coeffs {
            assert!(r < self.cons.len(), "constraint index {r} out of range");
            assert!(c.is_finite(), "coefficients must be finite");
            if c.abs() > 0.0 {
                self.cons[r].terms.push((v.0, c));
                self.col_terms[v.0].push((r, c));
            }
        }
        v
    }

    /// Set the number of pivots between basis refactorizations in the
    /// revised simplex (default 32). Smaller keeps the eta file shorter
    /// (cheaper FTRAN/BTRAN) at the cost of more rebuilds.
    pub fn set_refactor_interval(&mut self, interval: usize) {
        self.refactor_interval = interval.max(1);
    }

    /// Rebuild the column-major mirror from the rows. Presolve edits
    /// `cons` wholesale (dropping and renumbering rows) and calls this
    /// once at the end instead of patching the mirror per edit.
    pub(crate) fn rebuild_col_terms(&mut self) {
        for col in &mut self.col_terms {
            col.clear();
        }
        for (r, con) in self.cons.iter().enumerate() {
            for &(j, c) in &con.terms {
                self.col_terms[j].push((r, c));
            }
        }
    }

    /// Change the objective coefficient of a variable (the pricing loop
    /// switches between a feasibility and an optimality objective).
    pub fn set_obj(&mut self, v: VarId, obj: f64) {
        self.vars[v.0].obj = obj;
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Check whether `x` satisfies every constraint and bound up to `tol`.
    pub fn is_feasible_point(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lb - tol || xi > v.ub + tol {
                return false;
            }
        }
        for con in &self.cons {
            let lhs: f64 = con.terms.iter().map(|&(j, c)| c * x[j]).sum();
            let ok = match con.rel {
                Relation::Le => lhs <= con.rhs + tol,
                Relation::Ge => lhs >= con.rhs - tol,
                Relation::Eq => (lhs - con.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solve the LP relaxation (integrality ignored) with the default
    /// iteration budget.
    pub fn solve_lp(&self) -> LpResult {
        simplex::solve(self, simplex::default_iter_limit(self))
    }

    /// Solve the LP relaxation, reusing (and refreshing) a warm-start
    /// state across solves. With `Some` state from a previous optimal
    /// solve of this model — possibly extended by [`Model::add_column`]
    /// and/or re-weighted by [`Model::set_obj`] since — the re-solve
    /// continues from the previous basis and skips phase 1 entirely.
    /// Returns the result and whether the warm path was taken; on the
    /// cold path the state is replaced (or cleared when the solve did not
    /// reach optimality).
    pub fn solve_lp_with(&self, warm: &mut Option<simplex::WarmState>) -> (LpResult, bool) {
        let limit = simplex::default_iter_limit(self);
        if let Some(state) = warm.as_mut() {
            if let Some(res) = simplex::resolve(self, limit, state) {
                return (res, true);
            }
        }
        let (res, state) = simplex::solve_with_state(self, limit);
        *warm = state;
        (res, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, f64::INFINITY);
        let y = m.add_int_var(2.0, 0.0, 5.0);
        assert_eq!(m.num_vars(), 2);
        assert!(!m.is_integer(x));
        assert!(m.is_integer(y));
        m.add_con(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        assert_eq!(m.num_cons(), 1);
        assert_eq!(m.objective_value(&[1.0, 1.5]), 4.0);
    }

    #[test]
    fn coalesces_duplicate_terms() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 1.0);
        m.add_con(&[(x, 1.0), (x, 2.0)], Relation::Le, 2.0);
        assert_eq!(m.cons[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn drops_zero_coefficients() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 1.0);
        let y = m.add_var(0.0, 0.0, 1.0);
        m.add_con(&[(x, 0.0), (y, 1.0)], Relation::Ge, 0.5);
        assert_eq!(m.cons[0].terms, vec![(1, 1.0)]);
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 0.0, 2.0);
        let y = m.add_var(0.0, 1.0, 3.0);
        m.add_con(&[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        assert!(m.is_feasible_point(&[1.0, 2.0], 1e-9));
        assert!(!m.is_feasible_point(&[0.0, 0.5], 1e-9)); // y below lb
        assert!(!m.is_feasible_point(&[2.0, 2.0], 1e-9)); // eq violated
        assert!(!m.is_feasible_point(&[1.0], 1e-9)); // wrong len
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_lb() {
        let mut m = Model::new();
        m.add_var(0.0, f64::NEG_INFINITY, 0.0);
    }

    #[test]
    fn add_column_matches_monolithic_model() {
        // Build max 3x + 5y (see simplex tests) once directly and once by
        // starting from the constraints and appending the columns: both
        // must solve to the same optimum.
        let mut whole = Model::new();
        let x = whole.add_var(-3.0, 0.0, f64::INFINITY);
        let y = whole.add_var(-5.0, 0.0, f64::INFINITY);
        whole.add_con(&[(x, 1.0)], Relation::Le, 4.0);
        whole.add_con(&[(y, 2.0)], Relation::Le, 12.0);
        whole.add_con(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);

        let mut inc = Model::new();
        inc.add_con(&[], Relation::Le, 4.0);
        inc.add_con(&[], Relation::Le, 12.0);
        inc.add_con(&[], Relation::Le, 18.0);
        inc.add_column(-3.0, 0.0, f64::INFINITY, &[(0, 1.0), (2, 3.0)]);
        inc.add_column(-5.0, 0.0, f64::INFINITY, &[(1, 2.0), (2, 2.0)]);

        let a = whole.solve_lp();
        let b = inc.solve_lp();
        assert_eq!(a.status, b.status);
        assert!((a.objective - b.objective).abs() < 1e-9);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn add_column_drops_zero_coefficients() {
        let mut m = Model::new();
        m.add_con(&[], Relation::Ge, 1.0);
        m.add_con(&[], Relation::Ge, 2.0);
        let v = m.add_column(0.0, 0.0, 5.0, &[(0, 0.0), (1, 4.0)]);
        assert!(m.cons[0].terms.is_empty());
        assert_eq!(m.cons[1].terms, vec![(v.0, 4.0)]);
    }

    #[test]
    fn set_obj_changes_the_optimum() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.0, 3.0);
        assert!((m.solve_lp().x[0]).abs() < 1e-9);
        m.set_obj(x, -1.0);
        assert!((m.solve_lp().x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_column_rejects_bad_constraint_index() {
        let mut m = Model::new();
        m.add_column(0.0, 0.0, 1.0, &[(0, 1.0)]);
    }
}
