//! Re-inserting the set-aside medium jobs (paper Lemma 3).
//!
//! The transformation removed every medium job of a modified non-priority
//! bag. They are now added back through an integral flow in a bag ->
//! machine network: bag `l` may send at most one medium job to machine
//! `i` (edge capacity 1) and only if `i` holds no job of the large side
//! `B'_l`; machine capacities come from rounding up the even fractional
//! distribution, which Lemma 3 bounds by `2 / eps^{k-1}` jobs — a load
//! increase of at most `2 eps`.
//!
//! Flow integrality (Dinic) is exactly the argument the paper invokes.

use crate::assign_large::WorkState;
use crate::report::{GuessFailure, Stats};
use crate::rounding::Rounded;
use crate::transform::Transformed;
use bagsched_flow::BipartiteProblem;
use bagsched_types::{JobId, MachineId};
use std::collections::HashMap;

/// Assign every removed medium job to a machine. Returns `(original job,
/// machine)` pairs and updates the state's load bookkeeping. Augmenting
/// paths pushed by the underlying max-flow (both capacity-relaxation
/// rounds, successful or not) are recorded into `stats`.
pub fn reinsert_medium(
    inst: &bagsched_types::Instance,
    trans: &Transformed,
    rounded: &Rounded,
    state: &mut WorkState,
    stats: &mut Stats,
) -> Result<Vec<(JobId, MachineId)>, GuessFailure> {
    if trans.removed_medium.is_empty() {
        return Ok(Vec::new());
    }
    let m = trans.tinst.num_machines();

    // Medium jobs per original bag.
    let mut per_bag: HashMap<usize, Vec<JobId>> = HashMap::new();
    for &j in &trans.removed_medium {
        per_bag.entry(inst.bag_of(j).idx()).or_default().push(j);
    }
    let bags: Vec<usize> = {
        let mut v: Vec<usize> = per_bag.keys().copied().collect();
        v.sort_unstable();
        v
    };

    // Free machines per bag: those without a job of the large side B'_l.
    let free: Vec<Vec<usize>> = bags
        .iter()
        .map(|&l| {
            let large_side = trans.large_side_of[l];
            (0..m)
                .filter(|&i| large_side.is_none_or(|ls| state.bag_on(MachineId(i as u32), ls) == 0))
                .collect()
        })
        .collect();

    // Fractional even spread -> per-machine capacity (ceil).
    let mut frac = vec![0.0f64; m];
    for (bi, &l) in bags.iter().enumerate() {
        let count = per_bag[&l].len() as f64;
        let nfree = free[bi].len() as f64;
        if nfree == 0.0 {
            return Err(GuessFailure::MediumFlow);
        }
        for &i in &free[bi] {
            frac[i] += count / nfree;
        }
    }

    // Build and solve; on a shortfall relax capacities once (the theory
    // guarantees the first round, the retry only guards float edges).
    for slack in 0..2u64 {
        let mut problem = BipartiteProblem::new(bags.len(), m);
        for (bi, &l) in bags.iter().enumerate() {
            problem.set_supply(bi, per_bag[&l].len() as u64);
            for &i in &free[bi] {
                problem.allow(bi, i, 1);
            }
        }
        for (i, &f) in frac.iter().enumerate() {
            problem.set_capacity(i, (f - 1e-9).ceil().max(0.0) as u64 + slack);
        }
        let solution = problem.solve();
        stats.flow_augmentations += solution.stats.augmenting_paths;
        if !solution.is_complete() {
            continue;
        }
        // Materialize: pop concrete jobs per (bag, machine). A flow that
        // over-draws a bag's supply (it cannot under the network built
        // above, but a mismatch must not abort the whole run) fails the
        // guess instead of panicking — the driver falls back per guess.
        let mut out = Vec::with_capacity(trans.removed_medium.len());
        let mut pools: HashMap<usize, Vec<JobId>> = per_bag.clone();
        for (bi, i, amount) in solution.flows {
            debug_assert_eq!(amount, 1);
            let Some(job) = pools.get_mut(&bags[bi]).and_then(Vec::pop) else {
                return Err(GuessFailure::MediumFlow);
            };
            out.push((job, MachineId(i as u32)));
            state.loads[i] += rounded.size[job.idx()];
        }
        return Ok(out);
    }
    Err(GuessFailure::MediumFlow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, JobClass};
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    /// Build a transformed instance that definitely has removed medium
    /// jobs: heavy first band pushes k to 2, bag 1 non-priority with a
    /// medium job.
    fn fixture() -> (Instance, Transformed, Rounded) {
        let mut jobs = vec![(0.3, 0); 10];
        jobs.extend([(0.9, 1), (0.15, 1), (0.01, 1), (0.15, 2), (0.01, 2)]);
        let inst = Instance::new(&jobs, 2);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 2);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        (inst, t, r)
    }

    #[test]
    fn reinserts_all_mediums() {
        let (inst, t, r) = fixture();
        if t.removed_medium.is_empty() {
            // Classification landed differently; nothing to test.
            return;
        }
        let mut state = WorkState::new(t.tinst.num_jobs(), 2);
        let mut stats = Stats::default();
        let placed = reinsert_medium(&inst, &t, &r, &mut state, &mut stats).unwrap();
        assert_eq!(placed.len(), t.removed_medium.len());
        assert!(
            stats.flow_augmentations >= placed.len() as u64,
            "unit-capacity network: one augmenting path per placed job"
        );
        // At most one medium of each bag per machine.
        let mut seen: std::collections::HashSet<(usize, u32)> = Default::default();
        for &(j, mid) in &placed {
            assert!(
                seen.insert((inst.bag_of(j).idx(), mid.0)),
                "two mediums of one bag on machine {mid:?}"
            );
        }
    }

    #[test]
    fn avoids_large_side_machines() {
        let (inst, t, r) = fixture();
        if t.removed_medium.is_empty() {
            return;
        }
        // Pin bag 1's large-side job to machine 0.
        let mut state = WorkState::new(t.tinst.num_jobs(), 2);
        let bag1 = inst.bag_of(t.removed_medium[0]).idx();
        if let Some(ls) = t.large_side_of[bag1] {
            let large_job = t.tinst.bag(ls)[0];
            state.place(&t, large_job, MachineId(0));
            let placed = reinsert_medium(&inst, &t, &r, &mut state, &mut Stats::default()).unwrap();
            for &(j, mid) in &placed {
                if inst.bag_of(j).idx() == bag1 {
                    assert_ne!(mid, MachineId(0), "medium shares a machine with its large side");
                }
            }
        }
    }

    #[test]
    fn empty_mediums_trivial() {
        let inst = Instance::new(&[(0.9, 0)], 2);
        let sizes = vec![0.9];
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 2);
        let cfg = EptasConfig::with_epsilon(0.5);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let mut state = WorkState::new(t.tinst.num_jobs(), 2);
        let mut stats = Stats::default();
        assert!(reinsert_medium(&inst, &t, &r, &mut state, &mut stats).unwrap().is_empty());
        assert_eq!(stats.flow_augmentations, 0);
    }

    #[test]
    fn load_increase_is_bounded() {
        let (inst, t, r) = fixture();
        if t.removed_medium.is_empty() {
            return;
        }
        let mut state = WorkState::new(t.tinst.num_jobs(), 2);
        let before: Vec<f64> = state.loads.clone();
        reinsert_medium(&inst, &t, &r, &mut state, &mut Stats::default()).unwrap();
        // Lemma 3: increase <= 2*eps per machine... with clamped constants
        // we check a conservative multiple.
        let medium_top = t.removed_medium.iter().map(|&j| r.size[j.idx()]).fold(0.0f64, f64::max);
        let per_machine_cap = (t.removed_medium.len() as f64 / 1.0) * medium_top;
        for (b, a) in before.iter().zip(&state.loads) {
            assert!(a - b <= per_machine_cap + 1e-9);
        }
        // Classes sanity: everything reinserted really was medium.
        for &j in &t.removed_medium {
            let c = classify(&r, 2);
            assert_eq!(c.of(j.idx()), JobClass::Medium);
        }
    }
}
