//! Machine patterns (paper Definition 3).
//!
//! A *pattern* is a multiset of large/medium job slots with total height
//! at most `T = 1 + 2eps + eps^2`. A slot is either reserved for a
//! specific size-restricted **priority** bag `B_l^s` (at most one slot per
//! priority bag in a pattern — the bag-constraint), or a wildcard `B_x^s`
//! slot for a job of size `s` from *any* non-priority bag (arbitrarily
//! many per pattern; Lemma 7 repairs the resulting conflicts).
//!
//! Patterns are enumerated by DFS over the slot symbols present in the
//! transformed instance, with multiplicities capped by job availability —
//! which keeps the pattern space tied to the instance rather than the
//! paper's worst-case bound. The enumeration budget is explicit.

use crate::classes::BagClasses;
use crate::classify::JobClass;
use crate::rounding::SizeExp;
use crate::transform::Transformed;
use bagsched_types::BagId;
use std::collections::HashMap;

/// The bag component of a slot: a concrete priority bag or the wildcard.
///
/// Under class-level aggregation ([`collect_symbols_classed`]) the
/// `Priority` variant carries the *representative* bag of an
/// interchangeability class; the per-pattern multiplicity of such a
/// symbol is then capped by the class size rather than 1, and
/// [`crate::declass`] maps slots back to concrete member bags after the
/// MILP. With singleton classes (the per-bag path) the representative is
/// the bag itself and nothing changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotBag {
    /// A priority bag of the transformed instance.
    Priority(BagId),
    /// `B_x`: any non-priority bag.
    X,
}

/// A slot symbol: a size class together with its bag restriction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Symbol {
    /// Rounded-size exponent of the slot.
    pub exp: SizeExp,
    /// Rounded size (`(1+eps)^exp`).
    pub size: f64,
    /// Which bag(s) may fill the slot.
    pub bag: SlotBag,
    /// How many jobs exist for this symbol (multiplicity cap).
    pub avail: u32,
}

/// One machine pattern: symbol multiplicities and the resulting height.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// `(symbol index, multiplicity)`, multiplicities positive.
    pub entries: Vec<(usize, u16)>,
    /// Total height of all slots.
    pub height: f64,
}

impl Pattern {
    /// Whether the pattern is the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of slots (counting multiplicity).
    pub fn num_slots(&self) -> usize {
        self.entries.iter().map(|&(_, c)| c as usize).sum()
    }

    /// Per-class slot counts of this pattern, summed over sizes — the
    /// `mult_C(p)` of the class-aggregated MILP. The single home of the
    /// rule; the MILP builders' `class_mult_table` and the in-tree
    /// pricer's free-capacity coefficients both derive from it.
    pub(crate) fn class_multiplicities(
        &self,
        symbols: &[Symbol],
        classes: &BagClasses,
    ) -> Vec<u32> {
        let mut mult = vec![0u32; classes.num_classes()];
        for &(si, count) in &self.entries {
            if let SlotBag::Priority(rep) = symbols[si].bag {
                mult[classes.of(rep).expect("symbol reps are classed")] += count as u32;
            }
        }
        mult
    }
}

/// The enumerated pattern universe for one transformed instance.
#[derive(Debug, Clone)]
pub struct PatternSet {
    /// All slot symbols (by size descending, priority before wildcard).
    pub symbols: Vec<Symbol>,
    /// All valid patterns; index 0 is always the empty pattern.
    pub patterns: Vec<Pattern>,
    /// For each pattern, the priority bags it touches (`chi_p(B_l) = 1`).
    pub priority_bags_used: Vec<Vec<BagId>>,
}

impl PatternSet {
    /// Assemble a pattern set from symbols and patterns, deriving the
    /// `chi` table. `patterns[0]` must be the empty pattern (both the
    /// eager enumerator and the column-generation pool guarantee it).
    pub fn from_parts(symbols: Vec<Symbol>, patterns: Vec<Pattern>) -> Self {
        debug_assert!(patterns.first().is_some_and(Pattern::is_empty));
        let priority_bags_used = patterns
            .iter()
            .map(|p| {
                p.entries
                    .iter()
                    .filter_map(|&(si, _)| match symbols[si].bag {
                        SlotBag::Priority(b) => Some(b),
                        SlotBag::X => None,
                    })
                    .collect()
            })
            .collect();
        PatternSet { symbols, patterns, priority_bags_used }
    }

    /// `chi_p(B_l)`: whether pattern `p` holds a slot of priority bag `l`.
    pub fn chi(&self, p: usize, l: BagId) -> bool {
        self.priority_bags_used[p].contains(&l)
    }
}

/// Why pattern enumeration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBudgetExceeded {
    /// The configured cap that was hit.
    pub budget: usize,
}

/// Collect the per-bag slot symbols of the transformed instance, in the
/// deterministic order shared by the eager enumerator and the
/// column-generation pricer: size descending, priority before wildcard,
/// then bag id. Equivalent to [`collect_symbols_classed`] with singleton
/// classes.
pub fn collect_symbols(trans: &Transformed) -> Vec<Symbol> {
    collect_symbols_classed(trans, &BagClasses::singletons(trans))
}

/// Collect slot symbols keyed on `(size, bag class)`: one symbol per
/// (rounded size, interchangeability class) pair, carrying the class
/// *representative* bag and the summed availability of all members. With
/// singleton classes this is exactly the per-bag symbol set; with real
/// classes it collapses the symbol count — and with it the master-LP
/// covering rows — to the number of distinct profiles.
pub fn collect_symbols_classed(trans: &Transformed, classes: &BagClasses) -> Vec<Symbol> {
    let epsilon = trans.t.sqrt() - 1.0; // T = (1 + eps)^2

    // Collect symbol availabilities, priority bags keyed by class rep.
    let mut prio: HashMap<(SizeExp, BagId), u32> = HashMap::new();
    let mut wild: HashMap<SizeExp, u32> = HashMap::new();
    for (j, &class) in trans.tclass.iter().enumerate() {
        if class == JobClass::Small {
            continue;
        }
        let tbag = trans.tinst.bag_of(bagsched_types::JobId(j as u32));
        let exp = trans.texp[j];
        if trans.is_priority_tbag[tbag.idx()] {
            let rep = classes.rep(classes.of(tbag).expect("priority bags are classed"));
            *prio.entry((exp, rep)).or_insert(0) += 1;
        } else {
            *wild.entry(exp).or_insert(0) += 1;
        }
    }

    let mut symbols: Vec<Symbol> = Vec::new();
    for (&(exp, bag), &avail) in &prio {
        let size = crate::rounding::exp_size(exp, epsilon);
        symbols.push(Symbol { exp, size, bag: SlotBag::Priority(bag), avail });
    }
    for (&exp, &avail) in &wild {
        let size = crate::rounding::exp_size(exp, epsilon);
        // `avail` is the *total* job count — it is the RHS of the covering
        // constraint (2). Per-pattern multiplicity is limited by the
        // height bound inside the DFS, never here.
        symbols.push(Symbol { exp, size, bag: SlotBag::X, avail });
    }
    symbols.sort_by(|a, b| {
        b.size.total_cmp(&a.size).then_with(|| match (a.bag, b.bag) {
            (SlotBag::Priority(x), SlotBag::Priority(y)) => x.cmp(&y),
            (SlotBag::Priority(_), SlotBag::X) => std::cmp::Ordering::Less,
            (SlotBag::X, SlotBag::Priority(_)) => std::cmp::Ordering::Greater,
            (SlotBag::X, SlotBag::X) => std::cmp::Ordering::Equal,
        })
    });
    symbols
}

/// Collect slot symbols for *coarse* classes
/// ([`BagClasses::compute_coarse`]): keyed like
/// [`collect_symbols_classed`] on `(size, class representative)`, but the
/// availability is `K * min` — class size times the **minimum** per-size
/// non-small job count over the members — instead of the member sum.
/// Coarse class members are only near-identical, so the minimum is the
/// largest per-member slot count every member can actually absorb: any
/// class-level pattern priced against it de-classes into concrete
/// patterns feasible for *every* member, and [`crate::declass`]'s repair
/// pass re-places the per-member surplus (`count_b - min`) afterwards.
/// With singleton classes `min` is the bag's own count and this is
/// exactly [`collect_symbols_classed`].
pub fn collect_symbols_coarse(trans: &Transformed, classes: &BagClasses) -> Vec<Symbol> {
    let epsilon = trans.t.sqrt() - 1.0; // T = (1 + eps)^2

    // Per priority bag: non-small job count per size exponent.
    let mut per_bag: HashMap<BagId, HashMap<SizeExp, u32>> = HashMap::new();
    let mut wild: HashMap<SizeExp, u32> = HashMap::new();
    for (j, &class) in trans.tclass.iter().enumerate() {
        if class == JobClass::Small {
            continue;
        }
        let tbag = trans.tinst.bag_of(bagsched_types::JobId(j as u32));
        let exp = trans.texp[j];
        if trans.is_priority_tbag[tbag.idx()] {
            *per_bag.entry(tbag).or_default().entry(exp).or_insert(0) += 1;
        } else {
            *wild.entry(exp).or_insert(0) += 1;
        }
    }

    let mut symbols: Vec<Symbol> = Vec::new();
    for c in 0..classes.num_classes() {
        let rep = classes.rep(c);
        let k = classes.size(c) as u32;
        // Iterating the representative's exponents covers the whole
        // class: an exponent some member lacks has minimum 0 and would
        // be dropped anyway (coarse grouping guarantees identical
        // supports, so this is belt and braces).
        let Some(rep_counts) = per_bag.get(&rep) else { continue };
        for &exp in rep_counts.keys() {
            let min = classes.members[c]
                .iter()
                .map(|b| per_bag.get(b).and_then(|m| m.get(&exp)).copied().unwrap_or(0))
                .min()
                .unwrap_or(0);
            if min == 0 {
                continue;
            }
            let size = crate::rounding::exp_size(exp, epsilon);
            symbols.push(Symbol { exp, size, bag: SlotBag::Priority(rep), avail: k * min });
        }
    }
    for (&exp, &avail) in &wild {
        let size = crate::rounding::exp_size(exp, epsilon);
        symbols.push(Symbol { exp, size, bag: SlotBag::X, avail });
    }
    symbols.sort_by(|a, b| {
        b.size.total_cmp(&a.size).then_with(|| match (a.bag, b.bag) {
            (SlotBag::Priority(x), SlotBag::Priority(y)) => x.cmp(&y),
            (SlotBag::Priority(_), SlotBag::X) => std::cmp::Ordering::Less,
            (SlotBag::X, SlotBag::Priority(_)) => std::cmp::Ordering::Greater,
            (SlotBag::X, SlotBag::X) => std::cmp::Ordering::Equal,
        })
    });
    symbols
}

/// Enumerate all valid patterns of the transformed instance.
pub fn enumerate_patterns(
    trans: &Transformed,
    max_patterns: usize,
) -> Result<PatternSet, PatternBudgetExceeded> {
    let t = trans.t;
    let symbols = collect_symbols(trans);

    let mut dfs = Dfs {
        symbols: &symbols,
        t,
        budget: max_patterns,
        entries: Vec::new(),
        bag_used: vec![false; trans.tinst.num_bags()],
        out: Vec::new(),
    };
    dfs.run(0, 0.0).map_err(|()| PatternBudgetExceeded { budget: max_patterns })?;
    let mut patterns = dfs.out;

    // Normalize: the empty pattern (generated by the all-zero branch,
    // hence first) sits at index 0.
    let empty_idx = patterns.iter().position(Pattern::is_empty).expect("empty pattern is valid");
    patterns.swap(0, empty_idx);

    Ok(PatternSet::from_parts(symbols, patterns))
}

/// The pattern-enumeration DFS: fixed inputs plus the mutable search
/// state, so the recursion only threads `(idx, height)`.
struct Dfs<'a> {
    symbols: &'a [Symbol],
    /// Height bound `T`.
    t: f64,
    /// Maximum number of patterns before `Err(())`.
    budget: usize,
    /// Current partial pattern (symbol index, multiplicity).
    entries: Vec<(usize, u16)>,
    /// Priority bags used along the current path (the bag-constraint).
    bag_used: Vec<bool>,
    /// Completed patterns.
    out: Vec<Pattern>,
}

impl Dfs<'_> {
    fn run(&mut self, idx: usize, height: f64) -> Result<(), ()> {
        if idx == self.symbols.len() {
            if self.out.len() >= self.budget {
                return Err(());
            }
            self.out.push(Pattern { entries: self.entries.clone(), height });
            return Ok(());
        }
        let sym = self.symbols[idx];
        let by_height = if sym.size > 1e-12 {
            ((self.t - height) / sym.size + 1e-9).floor().max(0.0) as u32
        } else {
            0
        };
        let max_mult = match sym.bag {
            SlotBag::Priority(b) => {
                if self.bag_used[b.idx()] {
                    0
                } else {
                    1.min(sym.avail).min(by_height)
                }
            }
            SlotBag::X => sym.avail.min(by_height),
        };
        // multiplicity 0 first, so the empty pattern is generated first.
        self.run(idx + 1, height)?;
        for mult in 1..=max_mult {
            self.entries.push((idx, mult as u16));
            if let SlotBag::Priority(b) = sym.bag {
                self.bag_used[b.idx()] = true;
            }
            let res = self.run(idx + 1, height + mult as f64 * sym.size);
            self.entries.pop();
            if let SlotBag::Priority(b) = sym.bag {
                self.bag_used[b.idx()] = false;
            }
            res?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn patterns_for(
        jobs: &[(f64, u32)],
        m: usize,
        eps: f64,
        cap: Option<usize>,
        budget: usize,
    ) -> (Transformed, Result<PatternSet, PatternBudgetExceeded>) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, eps).unwrap();
        let c = classify(&r, m);
        let mut cfg = EptasConfig::with_epsilon(eps);
        cfg.priority_cap = cap;
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let ps = enumerate_patterns(&t, budget);
        (t, ps)
    }

    #[test]
    fn single_large_job_two_patterns() {
        let (_, ps) = patterns_for(&[(0.9, 0)], 2, 0.5, None, 100);
        let ps = ps.unwrap();
        assert_eq!(ps.patterns.len(), 2);
        assert!(ps.patterns[0].is_empty());
        assert_eq!(ps.patterns[1].num_slots(), 1);
    }

    #[test]
    fn priority_bag_capped_at_one_slot() {
        let (_, ps) = patterns_for(&[(0.9, 0), (0.9, 0)], 2, 0.5, None, 100);
        let ps = ps.unwrap();
        for p in &ps.patterns {
            assert!(p.num_slots() <= 1, "pattern holds two slots of one priority bag");
        }
    }

    #[test]
    fn wildcard_slots_stack_up_to_height() {
        let jobs = [
            (0.9, 0),
            (0.9, 0),
            (0.9, 0), // priority hog (3 jobs of the class)
            (0.9, 1),
            (0.01, 1),
            (0.9, 2),
            (0.01, 2),
        ];
        let (_, ps) = patterns_for(&jobs, 6, 0.5, Some(1), 1000);
        let ps = ps.unwrap();
        assert!(ps.symbols.iter().any(|s| s.bag == SlotBag::X));
        let has_double = ps
            .patterns
            .iter()
            .any(|p| p.entries.iter().any(|&(si, c)| ps.symbols[si].bag == SlotBag::X && c >= 2));
        assert!(has_double, "expected a pattern with two stacked wildcard slots");
    }

    #[test]
    fn heights_never_exceed_t() {
        let jobs = [(0.9, 0), (0.5, 1), (0.3, 2), (0.9, 3), (0.5, 4), (0.01, 5)];
        let (t, ps) = patterns_for(&jobs, 4, 0.5, None, 100_000);
        let ps = ps.unwrap();
        for p in &ps.patterns {
            assert!(p.height <= t.t + 1e-9, "height {} > T {}", p.height, t.t);
            let h: f64 = p.entries.iter().map(|&(si, c)| ps.symbols[si].size * c as f64).sum();
            assert!((h - p.height).abs() < 1e-9);
        }
    }

    #[test]
    fn chi_reflects_priority_usage() {
        let (t, ps) = patterns_for(&[(0.9, 0), (0.8, 1)], 2, 0.5, None, 1000);
        let ps = ps.unwrap();
        let both = ps
            .patterns
            .iter()
            .position(|p| p.num_slots() == 2)
            .expect("a two-slot pattern exists (T = 2.25 fits two larges)");
        for tbag in 0..t.tinst.num_bags() {
            assert!(ps.chi(both, BagId(tbag as u32)));
        }
        assert!(!ps.chi(0, BagId(0)), "empty pattern uses no bag");
    }

    #[test]
    fn budget_exceeded_reported() {
        let jobs: Vec<(f64, u32)> = (0..12).map(|i| (0.5 + (i as f64) * 0.03, i)).collect();
        let (_, ps) = patterns_for(&jobs, 12, 0.5, None, 3);
        assert_eq!(ps.unwrap_err().budget, 3);
    }

    #[test]
    fn small_jobs_contribute_no_symbols() {
        let (_, ps) = patterns_for(&[(0.001, 0), (0.002, 1)], 2, 0.5, None, 100);
        let ps = ps.unwrap();
        assert!(ps.symbols.is_empty());
        assert_eq!(ps.patterns.len(), 1);
    }

    #[test]
    fn symbol_count_matches_distinct_pairs() {
        let jobs = [(0.9, 0), (0.3, 0)];
        let (t, ps) = patterns_for(&jobs, 2, 0.5, None, 1000);
        let ps = ps.unwrap();
        let expected: std::collections::HashSet<_> = (0..t.tinst.num_jobs())
            .filter(|&j| t.tclass[j] != JobClass::Small)
            .map(|j| t.texp[j])
            .collect();
        assert_eq!(ps.symbols.len(), expected.len());
    }

    #[test]
    fn coarse_symbols_match_classed_on_singletons() {
        let jobs = [(0.9, 0), (0.5, 1), (0.3, 2), (0.01, 2)];
        let (t, _) = patterns_for(&jobs, 3, 0.5, None, 1000);
        let singles = BagClasses::singletons(&t);
        assert_eq!(
            collect_symbols_coarse(&t, &singles),
            collect_symbols_classed(&t, &singles),
            "singleton coarse symbols must be the per-bag symbols"
        );
    }

    #[test]
    fn coarse_availability_is_class_size_times_minimum() {
        // Bags 0/1 hold two 0.9-jobs, bag 2 holds three: one coarse
        // class of 3 members at tol 1.0, priority avail 3 * min(2,2,3).
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.9, 1), (0.9, 2), (0.9, 2), (0.9, 2)];
        let (t, _) = patterns_for(&jobs, 7, 0.5, None, 100_000);
        let coarse = BagClasses::compute_coarse(&t, 1.0);
        assert_eq!(coarse.num_classes(), 1);
        let syms = collect_symbols_coarse(&t, &coarse);
        let prio: Vec<&Symbol> =
            syms.iter().filter(|s| matches!(s.bag, SlotBag::Priority(_))).collect();
        assert_eq!(prio.len(), 1);
        assert_eq!(prio[0].avail, 6, "avail must be K * min = 3 * 2");
        assert_eq!(prio[0].bag, SlotBag::Priority(coarse.rep(0)));
    }

    #[test]
    fn wildcard_multiplicity_capped_by_availability() {
        // Only one non-priority large job exists, so no pattern may hold
        // two wildcard slots of that size even though height permits.
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 0), (0.9, 1), (0.01, 1)];
        let (_, ps) = patterns_for(&jobs, 5, 0.5, Some(1), 1000);
        let ps = ps.unwrap();
        for p in &ps.patterns {
            for &(si, c) in &p.entries {
                assert!(c as u32 <= ps.symbols[si].avail);
            }
        }
    }
}
