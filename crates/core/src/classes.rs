//! Bag classes: grouping interchangeable priority bags (the unlock for
//! large tight instances, ROADMAP "class-level aggregation").
//!
//! Two priority bags of the transformed instance whose jobs have
//! identical `(rounded size, job class) -> count` profiles are fully
//! interchangeable: renaming one to the other maps any feasible schedule
//! to a feasible schedule of the same makespan. The pattern/master/MILP
//! stack can therefore key slot symbols, covering rows and the pricing
//! item space on `(size, bag class)` instead of `(size, bag)` — on tight
//! clustered instances this collapses hundreds of per-bag symbols to the
//! handful of distinct cluster profiles. [`crate::declass`] maps
//! class-level solutions back to concrete bags before the placement
//! phases run, so everything downstream of the MILP is untouched.
//!
//! Non-priority bags are never classed — their large jobs already share
//! the wildcard `B_x` symbols, which is a coarser aggregation.

use crate::classify::JobClass;
use crate::transform::Transformed;
use bagsched_types::BagId;

/// The partition of the transformed instance's priority bags into
/// interchangeability classes.
#[derive(Debug, Clone)]
pub struct BagClasses {
    /// Class index per transformed bag (`None` for non-priority bags).
    pub class_of: Vec<Option<usize>>,
    /// Members per class, ascending bag id; `members[c][0]` is the
    /// class *representative* that keys the aggregated slot symbols.
    pub members: Vec<Vec<BagId>>,
}

impl BagClasses {
    /// Compute the classes by full-profile grouping: the profile of a bag
    /// is the multiset of `(rounded exponent, job class)` over *all* its
    /// jobs (large, medium and small alike — anything less than full
    /// identity would break interchangeability for the small-job phases).
    pub fn compute(trans: &Transformed) -> Self {
        let groups = trans.tinst.group_bags_by_profile(|j| {
            let code = match trans.tclass[j.idx()] {
                JobClass::Large => 0u8,
                JobClass::Medium => 1,
                JobClass::Small => 2,
            };
            (trans.texp[j.idx()], code)
        });
        let mut class_of = vec![None; trans.tinst.num_bags()];
        let mut members = Vec::new();
        for group in groups {
            let prio: Vec<BagId> =
                group.into_iter().filter(|b| trans.is_priority_tbag[b.idx()]).collect();
            if prio.is_empty() {
                continue;
            }
            for &b in &prio {
                class_of[b.idx()] = Some(members.len());
            }
            members.push(prio);
        }
        BagClasses { class_of, members }
    }

    /// The degenerate partition: one class per priority bag. Class-keyed
    /// code run with singletons reproduces the per-bag semantics exactly
    /// ([`crate::config::EptasConfig::class_aggregation`] `= false`).
    pub fn singletons(trans: &Transformed) -> Self {
        let mut class_of = vec![None; trans.tinst.num_bags()];
        let mut members = Vec::new();
        for (b, slot) in class_of.iter_mut().enumerate() {
            if trans.is_priority_tbag[b] {
                *slot = Some(members.len());
                members.push(vec![BagId(b as u32)]);
            }
        }
        BagClasses { class_of, members }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.members.len()
    }

    /// Number of bags in class `c`.
    pub fn size(&self, c: usize) -> usize {
        self.members[c].len()
    }

    /// The representative bag that keys class `c`'s slot symbols.
    pub fn rep(&self, c: usize) -> BagId {
        self.members[c][0]
    }

    /// Class of a transformed bag (`None` for non-priority bags).
    pub fn of(&self, b: BagId) -> Option<usize> {
        self.class_of[b.idx()]
    }

    /// Whether every class is a singleton (then aggregation is the
    /// identity and the per-bag fast paths apply).
    pub fn all_singletons(&self) -> bool {
        self.members.iter().all(|m| m.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn transformed(jobs: &[(f64, u32)], m: usize, eps: f64) -> Transformed {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, eps).unwrap();
        let c = classify(&r, m);
        let cfg = EptasConfig::with_epsilon(eps);
        let p = select_priority(&inst, &r, &c, &cfg);
        transform(&inst, &r, &c, &p)
    }

    #[test]
    fn identical_profiles_share_a_class() {
        // Bags 0, 1, 2 each hold one 0.9-job; bag 3 holds two of them —
        // a different profile, hence its own class.
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.9, 2), (0.9, 3), (0.9, 3)], 4, 0.5);
        let c = BagClasses::compute(&t);
        assert_eq!(c.num_classes(), 2);
        assert_eq!(c.members[0], vec![BagId(0), BagId(1), BagId(2)]);
        assert_eq!(c.size(0), 3);
        assert_eq!(c.rep(0), BagId(0));
        assert_eq!(c.of(BagId(1)), Some(0));
        assert_eq!(c.of(BagId(3)), Some(1));
        assert!(!c.all_singletons());
    }

    #[test]
    fn profile_is_a_multiset_over_all_jobs() {
        // Bags 0 and 1 both hold {0.9, 0.9}; bag 2 holds a single 0.9 —
        // distinct class despite sharing the size.
        let t = transformed(&[(0.9, 0), (0.9, 0), (0.9, 1), (0.9, 1), (0.9, 2)], 5, 0.5);
        let c = BagClasses::compute(&t);
        assert_eq!(c.of(BagId(0)), c.of(BagId(1)));
        assert_ne!(c.of(BagId(0)), c.of(BagId(2)));
    }

    #[test]
    fn small_jobs_split_otherwise_equal_bags() {
        // Bags 0 and 1 share the large profile but bag 1 carries a small
        // job: full-profile identity must separate them.
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.01, 1)], 3, 0.5);
        let c = BagClasses::compute(&t);
        assert_ne!(c.of(BagId(0)), c.of(BagId(1)));
    }

    #[test]
    fn singletons_cover_exactly_the_priority_bags() {
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.9, 2)], 3, 0.5);
        let s = BagClasses::singletons(&t);
        assert!(s.all_singletons());
        let prio = t.is_priority_tbag.iter().filter(|&&p| p).count();
        assert_eq!(s.num_classes(), prio);
        for c in 0..s.num_classes() {
            assert_eq!(s.of(s.rep(c)), Some(c));
        }
    }

    #[test]
    fn non_priority_bags_are_never_classed() {
        // Force a non-priority bag via a cap of 1.
        let inst = Instance::new(&[(0.9, 0), (0.9, 0), (0.9, 1), (0.01, 1)], 4);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let cl = classify(&r, 4);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        let p = select_priority(&inst, &r, &cl, &cfg);
        let t = transform(&inst, &r, &cl, &p);
        let c = BagClasses::compute(&t);
        for b in 0..t.tinst.num_bags() {
            assert_eq!(
                c.of(BagId(b as u32)).is_some(),
                t.is_priority_tbag[b],
                "bag {b}: classed iff priority"
            );
        }
    }
}
