//! Bag classes: grouping interchangeable priority bags (the unlock for
//! large tight instances, ROADMAP "class-level aggregation").
//!
//! Two priority bags of the transformed instance whose jobs have
//! identical `(rounded size, job class) -> count` profiles are fully
//! interchangeable: renaming one to the other maps any feasible schedule
//! to a feasible schedule of the same makespan. The pattern/master/MILP
//! stack can therefore key slot symbols, covering rows and the pricing
//! item space on `(size, bag class)` instead of `(size, bag)` — on tight
//! clustered instances this collapses hundreds of per-bag symbols to the
//! handful of distinct cluster profiles. [`crate::declass`] maps
//! class-level solutions back to concrete bags before the placement
//! phases run, so everything downstream of the MILP is untouched.
//!
//! Non-priority bags are never classed — their large jobs already share
//! the wildcard `B_x` symbols, which is a coarser aggregation.

use crate::classify::JobClass;
use crate::rounding::SizeExp;
use crate::transform::Transformed;
use bagsched_types::{BagId, JobId};
use std::collections::BTreeMap;

/// Quantized bag profile used as the coarse-class grouping key: sorted
/// `((rounded exponent, job-class code), count bucket)` pairs.
type CoarseKey = Vec<((SizeExp, u8), u32)>;

/// The partition of the transformed instance's priority bags into
/// interchangeability classes.
#[derive(Debug, Clone)]
pub struct BagClasses {
    /// Class index per transformed bag (`None` for non-priority bags).
    pub class_of: Vec<Option<usize>>,
    /// Members per class, ascending bag id; `members[c][0]` is the
    /// class *representative* that keys the aggregated slot symbols.
    pub members: Vec<Vec<BagId>>,
}

impl BagClasses {
    /// Compute the classes by full-profile grouping: the profile of a bag
    /// is the multiset of `(rounded exponent, job class)` over *all* its
    /// jobs (large, medium and small alike — anything less than full
    /// identity would break interchangeability for the small-job phases).
    pub fn compute(trans: &Transformed) -> Self {
        let groups = trans.tinst.group_bags_by_profile(|j| {
            let code = match trans.tclass[j.idx()] {
                JobClass::Large => 0u8,
                JobClass::Medium => 1,
                JobClass::Small => 2,
            };
            (trans.texp[j.idx()], code)
        });
        let mut class_of = vec![None; trans.tinst.num_bags()];
        let mut members = Vec::new();
        for group in groups {
            let prio: Vec<BagId> =
                group.into_iter().filter(|b| trans.is_priority_tbag[b.idx()]).collect();
            if prio.is_empty() {
                continue;
            }
            for &b in &prio {
                class_of[b.idx()] = Some(members.len());
            }
            members.push(prio);
        }
        BagClasses { class_of, members }
    }

    /// Compute *coarse* classes by template-based profile quantization:
    /// each priority bag's `(rounded exponent, job class) -> count`
    /// profile is mapped onto a geometric count grid (buckets of
    /// relative width `tol`, see [`count_bucket`]) and bags whose
    /// quantized profiles coincide share a class — even when their exact
    /// per-size counts differ by up to a `(1 + tol)` factor.
    ///
    /// Two invariants the downstream stack relies on:
    ///
    /// * **coarsening**: identical exact profiles always land in one
    ///   coarse class, so the coarse partition is a coarsening of
    ///   [`BagClasses::compute`] — equal class counts mean the
    ///   partitions are identical and coarsening buys nothing;
    /// * **identical supports**: bucket 0 starts at count 1, so a bag
    ///   *lacking* a `(size, class)` key can never share a class with a
    ///   bag holding one — within a coarse class every member owns at
    ///   least one job of every profile key.
    ///
    /// Unlike exact classes, coarse class members are *not* fully
    /// interchangeable: the aggregated stack prices against the
    /// per-size **minimum** count over members
    /// ([`crate::pattern::collect_symbols_coarse`]) so every class-level
    /// pattern stays feasible for every member, and
    /// [`crate::declass`]'s repair pass re-places each member's surplus
    /// jobs afterwards. `tol = 0` reproduces the exact partition.
    pub fn compute_coarse(trans: &Transformed, tol: f64) -> Self {
        let nbags = trans.tinst.num_bags();
        let mut profiles: Vec<BTreeMap<(SizeExp, u8), u32>> = vec![BTreeMap::new(); nbags];
        for j in 0..trans.tinst.num_jobs() {
            let b = trans.tinst.bag_of(JobId(j as u32));
            if !trans.is_priority_tbag[b.idx()] {
                continue;
            }
            let code = match trans.tclass[j] {
                JobClass::Large => 0u8,
                JobClass::Medium => 1,
                JobClass::Small => 2,
            };
            *profiles[b.idx()].entry((trans.texp[j], code)).or_insert(0) += 1;
        }
        let mut class_of = vec![None; nbags];
        let mut members: Vec<Vec<BagId>> = Vec::new();
        // Classes are numbered in order of their smallest member, so the
        // representative (`members[c][0]`) is deterministic like
        // `compute()`'s.
        let mut groups: BTreeMap<CoarseKey, usize> = BTreeMap::new();
        for b in 0..nbags {
            if !trans.is_priority_tbag[b] {
                continue;
            }
            let key: CoarseKey =
                profiles[b].iter().map(|(&k, &count)| (k, count_bucket(count, tol))).collect();
            let c = *groups.entry(key).or_insert_with(|| {
                members.push(Vec::new());
                members.len() - 1
            });
            class_of[b] = Some(c);
            members[c].push(BagId(b as u32));
        }
        BagClasses { class_of, members }
    }

    /// The degenerate partition: one class per priority bag. Class-keyed
    /// code run with singletons reproduces the per-bag semantics exactly
    /// ([`crate::config::EptasConfig::class_aggregation`] `= false`).
    pub fn singletons(trans: &Transformed) -> Self {
        let mut class_of = vec![None; trans.tinst.num_bags()];
        let mut members = Vec::new();
        for (b, slot) in class_of.iter_mut().enumerate() {
            if trans.is_priority_tbag[b] {
                *slot = Some(members.len());
                members.push(vec![BagId(b as u32)]);
            }
        }
        BagClasses { class_of, members }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.members.len()
    }

    /// Number of bags in class `c`.
    pub fn size(&self, c: usize) -> usize {
        self.members[c].len()
    }

    /// The representative bag that keys class `c`'s slot symbols.
    pub fn rep(&self, c: usize) -> BagId {
        self.members[c][0]
    }

    /// Class of a transformed bag (`None` for non-priority bags).
    pub fn of(&self, b: BagId) -> Option<usize> {
        self.class_of[b.idx()]
    }

    /// Whether every class is a singleton (then aggregation is the
    /// identity and the per-bag fast paths apply).
    pub fn all_singletons(&self) -> bool {
        self.members.iter().all(|m| m.len() == 1)
    }
}

/// Geometric bucket index of a job count: boundaries grow as
/// `b <- max(b + 1, ceil(b * (1 + tol)))` starting at 1, so counts within
/// a `(1 + tol)` relative band share a bucket while every count keeps its
/// own bucket at `tol = 0`. Pure integer thresholds: bucketing is exact
/// and deterministic, no float comparisons between counts.
fn count_bucket(count: u32, tol: f64) -> u32 {
    debug_assert!(count >= 1, "profile entries hold at least one job");
    let mut boundary = 1u64;
    let mut idx = 0u32;
    loop {
        let grown = ((boundary as f64) * (1.0 + tol)).ceil() as u64;
        let next = grown.max(boundary + 1);
        if next > count as u64 {
            return idx;
        }
        boundary = next;
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn transformed(jobs: &[(f64, u32)], m: usize, eps: f64) -> Transformed {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, eps).unwrap();
        let c = classify(&r, m);
        let cfg = EptasConfig::with_epsilon(eps);
        let p = select_priority(&inst, &r, &c, &cfg);
        transform(&inst, &r, &c, &p)
    }

    #[test]
    fn identical_profiles_share_a_class() {
        // Bags 0, 1, 2 each hold one 0.9-job; bag 3 holds two of them —
        // a different profile, hence its own class.
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.9, 2), (0.9, 3), (0.9, 3)], 4, 0.5);
        let c = BagClasses::compute(&t);
        assert_eq!(c.num_classes(), 2);
        assert_eq!(c.members[0], vec![BagId(0), BagId(1), BagId(2)]);
        assert_eq!(c.size(0), 3);
        assert_eq!(c.rep(0), BagId(0));
        assert_eq!(c.of(BagId(1)), Some(0));
        assert_eq!(c.of(BagId(3)), Some(1));
        assert!(!c.all_singletons());
    }

    #[test]
    fn profile_is_a_multiset_over_all_jobs() {
        // Bags 0 and 1 both hold {0.9, 0.9}; bag 2 holds a single 0.9 —
        // distinct class despite sharing the size.
        let t = transformed(&[(0.9, 0), (0.9, 0), (0.9, 1), (0.9, 1), (0.9, 2)], 5, 0.5);
        let c = BagClasses::compute(&t);
        assert_eq!(c.of(BagId(0)), c.of(BagId(1)));
        assert_ne!(c.of(BagId(0)), c.of(BagId(2)));
    }

    #[test]
    fn small_jobs_split_otherwise_equal_bags() {
        // Bags 0 and 1 share the large profile but bag 1 carries a small
        // job: full-profile identity must separate them.
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.01, 1)], 3, 0.5);
        let c = BagClasses::compute(&t);
        assert_ne!(c.of(BagId(0)), c.of(BagId(1)));
    }

    #[test]
    fn singletons_cover_exactly_the_priority_bags() {
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.9, 2)], 3, 0.5);
        let s = BagClasses::singletons(&t);
        assert!(s.all_singletons());
        let prio = t.is_priority_tbag.iter().filter(|&&p| p).count();
        assert_eq!(s.num_classes(), prio);
        for c in 0..s.num_classes() {
            assert_eq!(s.of(s.rep(c)), Some(c));
        }
    }

    #[test]
    fn count_buckets_are_geometric_and_exact_at_zero() {
        // tol = 0: every count its own bucket.
        for c in 1..50u32 {
            assert_eq!(count_bucket(c, 0.0), c - 1);
        }
        // tol = 1.0: boundaries 1, 2, 4, 8, ... — bit-length buckets.
        assert_eq!(count_bucket(1, 1.0), 0);
        assert_eq!(count_bucket(2, 1.0), 1);
        assert_eq!(count_bucket(3, 1.0), 1);
        assert_eq!(count_bucket(4, 1.0), 2);
        assert_eq!(count_bucket(7, 1.0), 2);
        assert_eq!(count_bucket(8, 1.0), 3);
        // Monotone in the count for a fixed tolerance.
        for c in 1..200u32 {
            assert!(count_bucket(c + 1, 0.5) >= count_bucket(c, 0.5));
        }
    }

    #[test]
    fn coarse_is_a_coarsening_of_exact() {
        // Bags 0/1 hold two 0.9-jobs, bag 2 holds three: distinct exact
        // classes, one coarse class at tol = 1.0 (boundaries 1, 2, 4, …
        // put counts 2 and 3 in the [2, 3] bucket).
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.9, 1), (0.9, 2), (0.9, 2), (0.9, 2)];
        let t = transformed(&jobs, 7, 0.5);
        let exact = BagClasses::compute(&t);
        let coarse = BagClasses::compute_coarse(&t, 1.0);
        assert_eq!(exact.num_classes(), 2);
        assert_eq!(coarse.num_classes(), 1, "counts 2 and 3 must share a bucket at tol 1.0");
        assert_eq!(coarse.members[0], vec![BagId(0), BagId(1), BagId(2)]);
        assert_eq!(coarse.rep(0), BagId(0));
        // Every exact class sits inside one coarse class.
        for c in 0..exact.num_classes() {
            let coarse_ids: Vec<_> =
                exact.members[c].iter().map(|&b| coarse.of(b).unwrap()).collect();
            assert!(coarse_ids.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn coarse_at_zero_tolerance_matches_exact() {
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.9, 1), (0.9, 2), (0.9, 2), (0.9, 2)];
        let t = transformed(&jobs, 7, 0.5);
        let exact = BagClasses::compute(&t);
        let coarse = BagClasses::compute_coarse(&t, 0.0);
        assert_eq!(coarse.num_classes(), exact.num_classes());
        for b in 0..t.tinst.num_bags() {
            assert_eq!(coarse.of(BagId(b as u32)), exact.of(BagId(b as u32)));
        }
    }

    #[test]
    fn coarse_never_merges_distinct_supports() {
        // Bag 0 holds a large job, bag 1 holds a large and a small job:
        // the supports differ, so no tolerance may merge them.
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.01, 1)], 3, 0.5);
        let coarse = BagClasses::compute_coarse(&t, 10.0);
        assert_ne!(coarse.of(BagId(0)), coarse.of(BagId(1)));
    }

    #[test]
    fn non_priority_bags_are_never_classed() {
        // Force a non-priority bag via a cap of 1.
        let inst = Instance::new(&[(0.9, 0), (0.9, 0), (0.9, 1), (0.01, 1)], 4);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let cl = classify(&r, 4);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        let p = select_priority(&inst, &r, &cl, &cfg);
        let t = transform(&inst, &r, &cl, &p);
        let c = BagClasses::compute(&t);
        for b in 0..t.tinst.num_bags() {
            assert_eq!(
                c.of(BagId(b as u32)).is_some(),
                t.is_priority_tbag[b],
                "bag {b}: classed iff priority"
            );
        }
    }
}
