//! The configuration MILP (paper §3, constraints (1)–(9)).
//!
//! Variables:
//! * `x_p` (integer): machines assigned pattern `p` — constraint (6);
//! * `y_{(l,s),p}` (fractional): small jobs of priority size-restricted
//!   bag `B_l^s` placed on top of pattern `p` — constraints (8)/(9).
//!   (Constraint (7) would make the largest of these integral; see
//!   `EptasConfig::paper_integral_y` and DESIGN.md §2.)
//! * `a_p` (fractional): aggregate *area* of non-priority small jobs on
//!   pattern `p`. The paper uses per-(bag, size) `y` variables for
//!   non-priority bags too, but its own Lemma 9 consumes only the area
//!   distribution of those variables (group-bag-LPT re-places the jobs
//!   from scratch), so aggregating them is a lossless model reduction
//!   that shrinks the LP by a factor of the number of non-priority bags.
//!
//! Constraints (paper numbering):
//! * (1) `sum_p x_p <= m`;
//! * (2) per slot symbol: `sum_p x_p * mult_p(symbol) = avail` on the
//!   per-bag path (the paper writes `>=`; equality is equally valid — an
//!   optimal schedule uses each job exactly once — and prunes the
//!   search). The class-aggregated path uses the paper's `>=` instead,
//!   because class multiplicities make every up-dive of the
//!   branch-and-bound overshoot an equality; [`crate::declass`] trims
//!   the surplus slots afterwards;
//! * (3) per priority small pair: `sum_p y = count`, plus the aggregate
//!   `sum_p a_p = total non-priority small area`;
//! * (4) per pattern: `sum y * size + a_p <= x_p * (T - height(p))`;
//! * (5) per (pattern, priority bag): `sum_s y <= x_p` when the pattern
//!   holds no job of the bag, `y = 0` otherwise (encoded by simply not
//!   creating those variables).
//!
//! When the joint model exceeds the configured size budget, a *two-stage*
//! path solves the x-MILP with aggregate small-job cuts and then
//! constructs `y` greedily (documented deviation; the driver reports
//! which path ran).
//!
//! ## Pattern generation: pricing first, enumeration as oracle
//!
//! [`solve_patterns`] drives a generate→solve→price loop: the
//! [`crate::pricing`] subsystem grows a small pattern pool by column
//! generation against the master-LP duals, and the joint/two-stage MILP
//! then runs on that pool. Eager [`enumerate_patterns`] remains the
//! cross-validation oracle: it is consulted (with a reduced budget) when
//! the MILP over the priced pool fails inconclusively, and it is the
//! full fallback when pricing stalls or is disabled
//! ([`EptasConfig::column_generation`]).

use crate::classes::BagClasses;
use crate::classify::JobClass;
use crate::config::EptasConfig;
use crate::par::CancelToken;
use crate::pattern::{
    collect_symbols_classed, collect_symbols_coarse, enumerate_patterns, Pattern, PatternSet,
    Symbol,
};
use crate::pricing::{generate_columns, MilpRow, Pricing, TreePriceDriver};
use crate::report::{GuessFailure, Stats};
use crate::rounding::SizeExp;
use crate::transform::Transformed;
use bagsched_milp::{
    solve_milp_seeded, MilpOptions, MilpResult, MilpStatus, Model, Relation, VarId, WarmState,
};
use bagsched_types::{BagId, JobId};
use std::collections::HashMap;

/// A priority size-restricted bag of small jobs: `B_l^s` with `l` priority.
#[derive(Debug, Clone)]
pub struct SmallPair {
    /// The (transformed) priority bag.
    pub tbag: BagId,
    /// Size exponent.
    pub exp: SizeExp,
    /// Rounded size.
    pub size: f64,
    /// The jobs of this pair.
    pub jobs: Vec<JobId>,
}

/// Solution of the MILP phase.
#[derive(Debug, Clone)]
pub struct MilpOutcome {
    /// Machines per pattern (integral), indexed over the solved pool —
    /// including any tree-priced patterns appended at its tail (the
    /// extended [`PatternSet`] returned alongside by the solve).
    pub x: Vec<u32>,
    /// Fractional job counts per `(pair index, pattern index)`.
    pub y: HashMap<(usize, usize), f64>,
    /// The priority small pairs (index space of `y`).
    pub pairs: Vec<SmallPair>,
    /// Whether the joint (paper-faithful) model was solved.
    pub joint: bool,
    /// Branch-and-bound nodes.
    pub nodes: usize,
    /// Simplex iterations.
    pub lp_iterations: usize,
}

/// Which pattern pipeline a [`PatternSolve`] runs.
///
/// The explicit strategies expose the formerly separate entry points
/// (`solve_patterns`, `solve_with_patterns`, the classed variant) behind
/// one surface; [`PatternStrategy::Auto`] is the driver's production
/// path, which picks per guess and falls back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternStrategy {
    /// Pick automatically: class-aggregated pricing above the symbol
    /// budget, per-bag pricing below it, eager enumeration as the
    /// stall/failure fallback — the historical `solve_patterns` logic,
    /// preserved decision for decision.
    Auto,
    /// Eager enumeration of the full pattern pool, then the MILP: the
    /// cross-validation oracle.
    Eager,
    /// Per-bag column generation against the master-LP duals; a stall is
    /// reported as [`GuessFailure::PricingStalled`] instead of falling
    /// back.
    Pricing,
    /// Class-aggregated column generation keyed on `(size, bag class)`,
    /// de-classed to concrete bags on success; verdicts the class level
    /// cannot settle are reported as [`GuessFailure::PricingStalled`].
    Classed,
    /// Like [`PatternStrategy::Classed`], but over *coarse* classes
    /// ([`BagClasses::compute_coarse`]): profiles quantized onto a
    /// geometric template grid, availabilities priced at the per-size
    /// member minimum, and the de-class repair pass re-placing each
    /// member's surplus jobs. Only ever recorded in replay seeds — the
    /// auto path engages it when even exact classes are too many.
    Coarse,
}

/// Replayable state of one successful pattern solve, captured by
/// [`PatternSolve::run`] and consumed by [`PatternSolve::replay`]: the
/// winning strategy, its symbol space, its (pre-tree-extension) pattern
/// pool, and the root basis of the x-MILP when in-tree pricing ran.
///
/// Replaying skips pattern *generation* — pricing rounds, enumeration —
/// and, when the seed carries the captured [`MilpOutcome`] (the driver
/// attaches it after every successful guess), the restricted MILP too:
/// the cached integral solution is handed straight to the placement
/// phases. A seed without a captured solution re-solves the MILP over
/// the cached pool, seeding the branch-and-bound root with the cached
/// basis ([`bagsched_milp::solve_milp_seeded`]). On an instance
/// identical to the captured one either path reproduces the original
/// solve decision for decision. Validation is structural: the rounded
/// guess and the symbol space (sizes, bags *and* availabilities) must
/// match bit-exactly, so replaying against a mismatched instance (a
/// fingerprint collision upstream) fails with
/// [`GuessFailure::SeedMismatch`] instead of mis-scheduling.
#[derive(Debug, Clone)]
pub struct ReplaySeed {
    strategy: PatternStrategy,
    /// `trans.t` at capture; replay requires a bit-exact match.
    t: f64,
    /// The symbol space the pool is indexed over (replay validation).
    symbols: Vec<Symbol>,
    /// The pattern pool of the winning solve, before any tree-priced
    /// extension (tree columns re-derive on replay).
    pool: Vec<Pattern>,
    /// Root basis of the winning x-MILP (tree-priced path only).
    root_warm: Option<WarmState>,
    /// The final (post-extension, post-declass) pattern set and integral
    /// outcome the placement phases consumed; replay reuses them
    /// verbatim instead of re-running branch-and-bound.
    solution: Option<Box<(PatternSet, MilpOutcome)>>,
}

impl ReplaySeed {
    /// The strategy the seed replays.
    pub fn strategy(&self) -> PatternStrategy {
        self.strategy
    }

    /// Number of cached patterns.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Attach the final pattern set and integral outcome of the solve
    /// this seed was captured from, so the next replay skips the
    /// restricted MILP entirely.
    pub fn with_solution(mut self, ps: &PatternSet, out: &MilpOutcome) -> Self {
        self.solution = Some(Box::new((ps.clone(), out.clone())));
        self
    }
}

/// Solution of one [`PatternSolve::run`]: the pool the downstream
/// placement phases consume (tree-priced tail included), the MILP
/// outcome over it, and the replay seed for the next identical solve.
#[derive(Debug, Clone)]
pub struct PatternSolution {
    /// The solved pattern set (`outcome.x`'s index space).
    pub patterns: PatternSet,
    /// The MILP solution over `patterns`.
    pub outcome: MilpOutcome,
    /// Replayable state of this solve.
    pub seed: ReplaySeed,
}

/// Builder unifying the pattern-generation + MILP entry points: choose a
/// [`PatternStrategy`] (or let [`PatternStrategy::Auto`] pick), or
/// replay a cached [`ReplaySeed`], then [`run`](PatternSolve::run).
///
/// ```ignore
/// let sol = PatternSolve::new(&trans, &cfg).run(&mut stats)?;          // auto
/// let sol = PatternSolve::new(&trans, &cfg)
///     .strategy(PatternStrategy::Eager)
///     .run(&mut stats)?;                                               // oracle
/// let sol = PatternSolve::new(&trans, &cfg).replay(&seed).run(&mut stats)?;
/// ```
#[derive(Debug)]
pub struct PatternSolve<'a> {
    trans: &'a Transformed,
    cfg: &'a EptasConfig,
    strategy: PatternStrategy,
    replay: Option<&'a ReplaySeed>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> PatternSolve<'a> {
    /// Start a pattern solve for one guess with the default
    /// ([`PatternStrategy::Auto`]) strategy.
    pub fn new(trans: &'a Transformed, cfg: &'a EptasConfig) -> Self {
        PatternSolve { trans, cfg, strategy: PatternStrategy::Auto, replay: None, cancel: None }
    }

    /// Force a specific pipeline instead of the auto pick.
    pub fn strategy(mut self, strategy: PatternStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replay a cached seed instead of generating patterns. Takes
    /// precedence over [`strategy`](PatternSolve::strategy); the seed
    /// carries its own.
    pub fn replay(mut self, seed: &'a ReplaySeed) -> Self {
        self.replay = Some(seed);
        self
    }

    /// Observe a cancellation token: the pricing loop polls it per
    /// round and the branch-and-bound between nodes, unwinding as
    /// [`GuessFailure::Cancelled`]. The solve's results are only valid
    /// while the token has not tripped — a racing caller must discard
    /// the output of a cancelled solve.
    pub fn cancel_token(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Run the solve. Work counters are recorded into `stats` whatever
    /// the outcome.
    pub fn run(self, stats: &mut Stats) -> Result<PatternSolution, GuessFailure> {
        let cancel = self.cancel;
        if let Some(seed) = self.replay {
            return run_replay(self.trans, self.cfg, seed, stats, cancel);
        }
        match self.strategy {
            PatternStrategy::Auto => run_auto(self.trans, self.cfg, stats, cancel),
            PatternStrategy::Eager => run_eager(self.trans, self.cfg, stats, cancel),
            PatternStrategy::Pricing => run_pricing(self.trans, self.cfg, stats, cancel),
            PatternStrategy::Classed => {
                let classes = BagClasses::compute(self.trans);
                solve_patterns_aggregated(self.trans, &classes, self.cfg, stats, cancel, false)
                    .unwrap_or(Err(GuessFailure::PricingStalled))
            }
            PatternStrategy::Coarse => {
                let classes = BagClasses::compute_coarse(self.trans, self.cfg.coarse_tolerance);
                stats.coarse_classes_formed += classes.num_classes() as u64;
                solve_patterns_aggregated(self.trans, &classes, self.cfg, stats, cancel, true)
                    .unwrap_or(Err(GuessFailure::PricingStalled))
            }
        }
    }
}

/// Collect the priority small pairs of the transformed instance, one per
/// concrete `(priority bag, size)`.
pub fn priority_small_pairs(trans: &Transformed) -> Vec<SmallPair> {
    priority_small_pairs_classed(trans, &BagClasses::singletons(trans))
}

/// Priority small pairs keyed on `(bag class, size)`: the pair's `tbag`
/// is the class representative and its jobs are the union over all
/// member bags (identical profiles guarantee identical small multisets).
/// Singleton classes reproduce [`priority_small_pairs`] exactly.
pub fn priority_small_pairs_classed(trans: &Transformed, classes: &BagClasses) -> Vec<SmallPair> {
    let epsilon = trans.t.sqrt() - 1.0;
    let mut map: HashMap<(BagId, SizeExp), Vec<JobId>> = HashMap::new();
    for j in 0..trans.tinst.num_jobs() {
        if trans.tclass[j] != JobClass::Small {
            continue;
        }
        let tbag = trans.tinst.bag_of(JobId(j as u32));
        if trans.is_priority_tbag[tbag.idx()] {
            let rep = classes.rep(classes.of(tbag).expect("priority bags are classed"));
            map.entry((rep, trans.texp[j])).or_default().push(JobId(j as u32));
        }
    }
    let mut pairs: Vec<SmallPair> = map
        .into_iter()
        .map(|((tbag, exp), jobs)| SmallPair {
            tbag,
            exp,
            size: crate::rounding::exp_size(exp, epsilon),
            jobs,
        })
        .collect();
    // Deterministic order, large sizes first (the greedy path packs big
    // pieces while area is plentiful).
    pairs.sort_by(|a, b| b.size.total_cmp(&a.size).then(a.tbag.cmp(&b.tbag)));
    pairs
}

/// Total rounded area of non-priority small jobs (fillers included).
pub fn nonpriority_small_area(trans: &Transformed) -> f64 {
    (0..trans.tinst.num_jobs())
        .filter(|&j| {
            trans.tclass[j] == JobClass::Small
                && !trans.is_priority_tbag[trans.tinst.bag_of(JobId(j as u32)).idx()]
        })
        .map(|j| trans.tinst.size(JobId(j as u32)))
        .sum()
}

/// Generate patterns and solve the MILP for one guess: the top entry
/// point the driver uses.
///
/// With [`EptasConfig::column_generation`] on (the default) the pattern
/// pool comes from the pricing loop; the returned [`PatternSet`] is
/// whatever pool the successful solve ran on, so the downstream placement
/// phases see a consistent view. Verdict soundness:
///
/// * pricing-proven infeasibility ([`Pricing::Infeasible`]) refutes a
///   relaxation of the full MILP — `Err(MilpInfeasible)` is exact, on
///   the class-aggregated master too (aggregation only relaxes);
/// * with [`EptasConfig::class_aggregation`], instances whose *per-bag
///   slot symbols* exceed [`EptasConfig::pricing_symbol_budget`] — where
///   the per-bag master is too large and the pre-aggregation pipeline
///   degraded to eager enumeration — first run the whole pricing/MILP
///   stack keyed on bag classes and [`crate::declass`] the solution; any
///   failure of that attempt falls back to the per-bag path below, so
///   aggregation never worsens a verdict;
/// * a failure of the MILP *restricted to the priced pool* is
///   inconclusive, so the eager oracle is consulted with the (small)
///   [`EptasConfig::pricing_fallback_budget`]; if even that budget is
///   exceeded the restricted verdict stands as an inconclusive failure —
///   the driver raises the guess, exactly as it does for every other
///   budget-type failure;
/// * a pricing stall falls back to full eager enumeration, which may
///   fail with [`GuessFailure::PatternBudget`] as before.
pub fn solve_patterns(
    trans: &Transformed,
    cfg: &EptasConfig,
    stats: &mut Stats,
) -> Result<(PatternSet, MilpOutcome), GuessFailure> {
    PatternSolve::new(trans, cfg).run(stats).map(|sol| (sol.patterns, sol.outcome))
}

/// The auto pipeline behind [`PatternStrategy::Auto`].
fn run_auto(
    trans: &Transformed,
    cfg: &EptasConfig,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
) -> Result<PatternSolution, GuessFailure> {
    if cfg.column_generation {
        // Class aggregation is the *scale* path: it engages exactly when
        // the per-bag master would be over the symbol budget — i.e. when
        // the pre-PR pipeline skipped pricing and degraded to eager
        // enumeration (budget-fail + LPT on tight instances). Below the
        // ceiling the per-bag path is proven, fast, and byte-for-byte
        // deterministic, so nothing changes there.
        let singles = BagClasses::singletons(trans);
        let symbols = collect_symbols_classed(trans, &singles);
        if cfg.class_aggregation && symbols.len() > cfg.pricing_symbol_budget {
            let classes = BagClasses::compute(trans);
            if !classes.all_singletons() {
                // A `None` (unrealizable or stalled at class level)
                // retries this guess on the per-bag path below — which,
                // above the budget, degrades to eager enumeration,
                // exactly the pre-aggregation behaviour.
                if let Some(resolved) =
                    solve_patterns_aggregated(trans, &classes, cfg, stats, cancel, false)
                {
                    return resolved;
                }
            }
            // Coarse rescue: when exact classes could not settle the
            // guess — typically because their *count* is itself over the
            // class-count ceiling in the pricing gate — retry with
            // template-quantized coarse classes, which merge
            // near-identical profiles and price against the per-size
            // member minimum. Only worth running when coarsening
            // actually merged something (equal counts = same partition).
            if cfg.class_coarsening {
                let coarse = BagClasses::compute_coarse(trans, cfg.coarse_tolerance);
                if !coarse.all_singletons() && coarse.num_classes() < classes.num_classes() {
                    stats.coarse_classes_formed += coarse.num_classes() as u64;
                    if let Some(resolved) =
                        solve_patterns_aggregated(trans, &coarse, cfg, stats, cancel, true)
                    {
                        return resolved;
                    }
                }
            }
        }
        let classes = singles;
        stats.bag_classes += classes.num_classes() as u64;
        stats.symbols_after_aggregation += symbols.len() as u64;
        match generate_columns(trans, &symbols, &classes, cfg, stats, cancel) {
            Pricing::Infeasible => return Err(GuessFailure::MilpInfeasible),
            Pricing::Cancelled => return Err(GuessFailure::Cancelled),
            Pricing::Converged(pool) => {
                let ps = PatternSet::from_parts(symbols, pool);
                match solve_restricted(
                    trans,
                    &ps,
                    &classes,
                    cfg,
                    stats,
                    cfg.tree_pricing,
                    None,
                    cancel,
                ) {
                    Ok((out, ext, warm)) => {
                        let seed = ReplaySeed {
                            strategy: PatternStrategy::Pricing,
                            t: trans.t,
                            symbols: ps.symbols.clone(),
                            pool: ps.patterns.clone(),
                            root_warm: warm,
                            solution: None,
                        };
                        return Ok(PatternSolution {
                            patterns: ext.unwrap_or(ps),
                            outcome: out,
                            seed,
                        });
                    }
                    Err(restricted) => {
                        // Inconclusive on a restricted pool: consult the
                        // oracle if enumeration is cheap, otherwise let
                        // the restricted verdict stand (both variants are
                        // "raise the guess" to the driver).
                        let budget = cfg.max_patterns.min(cfg.pricing_fallback_budget);
                        match enumerate_patterns(trans, budget) {
                            Ok(full) => {
                                stats.patterns_enumerated += full.patterns.len() as u64;
                                return solve_eager_pool(trans, cfg, full, stats, cancel);
                            }
                            Err(e) => {
                                stats.patterns_enumerated += e.budget as u64;
                                return Err(restricted);
                            }
                        }
                    }
                }
            }
            Pricing::Stalled => {} // fall through to the eager path
        }
    }
    run_eager(trans, cfg, stats, cancel)
}

/// The eager pipeline behind [`PatternStrategy::Eager`] and the auto
/// path's stall fallback: full enumeration, then the restricted MILP.
fn run_eager(
    trans: &Transformed,
    cfg: &EptasConfig,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
) -> Result<PatternSolution, GuessFailure> {
    let ps = enumerate_patterns(trans, cfg.max_patterns).map_err(|e| {
        // The DFS aborts after generating exactly `budget` patterns.
        stats.patterns_enumerated += e.budget as u64;
        GuessFailure::PatternBudget
    })?;
    stats.patterns_enumerated += ps.patterns.len() as u64;
    solve_eager_pool(trans, cfg, ps, stats, cancel)
}

/// Solve an eagerly enumerated pool and wrap it as a replayable
/// solution. Tree pricing stays off (the pool is complete by
/// construction), so the seed carries no root basis — the eager MILP
/// runs presolved, where a captured basis could not be replayed.
fn solve_eager_pool(
    trans: &Transformed,
    cfg: &EptasConfig,
    ps: PatternSet,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
) -> Result<PatternSolution, GuessFailure> {
    let singles = BagClasses::singletons(trans);
    let (out, _, _) = solve_restricted(trans, &ps, &singles, cfg, stats, false, None, cancel)?;
    let seed = ReplaySeed {
        strategy: PatternStrategy::Eager,
        t: trans.t,
        symbols: ps.symbols.clone(),
        pool: ps.patterns.clone(),
        root_warm: None,
        solution: None,
    };
    Ok(PatternSolution { patterns: ps, outcome: out, seed })
}

/// The per-bag pricing pipeline behind [`PatternStrategy::Pricing`].
fn run_pricing(
    trans: &Transformed,
    cfg: &EptasConfig,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
) -> Result<PatternSolution, GuessFailure> {
    let classes = BagClasses::singletons(trans);
    let symbols = collect_symbols_classed(trans, &classes);
    stats.bag_classes += classes.num_classes() as u64;
    stats.symbols_after_aggregation += symbols.len() as u64;
    match generate_columns(trans, &symbols, &classes, cfg, stats, cancel) {
        Pricing::Infeasible => Err(GuessFailure::MilpInfeasible),
        Pricing::Stalled => Err(GuessFailure::PricingStalled),
        Pricing::Cancelled => Err(GuessFailure::Cancelled),
        Pricing::Converged(pool) => {
            let ps = PatternSet::from_parts(symbols, pool);
            let (out, ext, warm) =
                solve_restricted(trans, &ps, &classes, cfg, stats, cfg.tree_pricing, None, cancel)?;
            let seed = ReplaySeed {
                strategy: PatternStrategy::Pricing,
                t: trans.t,
                symbols: ps.symbols.clone(),
                pool: ps.patterns.clone(),
                root_warm: warm,
                solution: None,
            };
            Ok(PatternSolution { patterns: ext.unwrap_or(ps), outcome: out, seed })
        }
    }
}

/// Replay a cached seed: validate the symbol space, rebuild the pool,
/// and re-solve the restricted MILP seeded with the cached root basis.
fn run_replay(
    trans: &Transformed,
    cfg: &EptasConfig,
    seed: &ReplaySeed,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
) -> Result<PatternSolution, GuessFailure> {
    // The rounded guess pins the whole size geometry; a drifted `t`
    // means the cached pool belongs to a different guess grid.
    if trans.t.to_bits() != seed.t.to_bits() {
        return Err(GuessFailure::SeedMismatch);
    }
    let classes = match seed.strategy {
        PatternStrategy::Eager | PatternStrategy::Pricing => BagClasses::singletons(trans),
        PatternStrategy::Classed => {
            let classes = BagClasses::compute(trans);
            if classes.all_singletons() {
                return Err(GuessFailure::SeedMismatch);
            }
            classes
        }
        PatternStrategy::Coarse => {
            let classes = BagClasses::compute_coarse(trans, cfg.coarse_tolerance);
            if classes.all_singletons() {
                return Err(GuessFailure::SeedMismatch);
            }
            classes
        }
        // Auto never lands in a seed: capture always records the
        // concrete winning pipeline.
        PatternStrategy::Auto => return Err(GuessFailure::SeedMismatch),
    };
    let symbols_now = match seed.strategy {
        PatternStrategy::Coarse => collect_symbols_coarse(trans, &classes),
        _ => collect_symbols_classed(trans, &classes),
    };
    if symbols_now != seed.symbols {
        return Err(GuessFailure::SeedMismatch);
    }
    // The captured integral solution short-circuits the whole MILP: the
    // symbol space (availabilities included) matched bit-exactly, so the
    // cached multiplicities place this instance's large/priority jobs
    // decision for decision. Anything the outcome cannot cover (e.g. a
    // drifted small-job area on a colliding fingerprint) fails in a
    // placement phase as an ordinary `GuessFailure` and the driver
    // solves cold.
    if let Some(cached) = &seed.solution {
        let (ps, out) = cached.as_ref().clone();
        return Ok(PatternSolution { patterns: ps, outcome: out, seed: seed.clone() });
    }
    let ps = PatternSet::from_parts(seed.symbols.clone(), seed.pool.clone());
    match seed.strategy {
        PatternStrategy::Eager => {
            let (out, _, _) =
                solve_restricted(trans, &ps, &classes, cfg, stats, false, None, cancel)?;
            Ok(PatternSolution { patterns: ps, outcome: out, seed: seed.clone() })
        }
        PatternStrategy::Pricing => {
            let (out, ext, warm) = solve_restricted(
                trans,
                &ps,
                &classes,
                cfg,
                stats,
                cfg.tree_pricing,
                seed.root_warm.as_ref(),
                cancel,
            )?;
            let seed = ReplaySeed { root_warm: warm, ..seed.clone() };
            Ok(PatternSolution { patterns: ext.unwrap_or(ps), outcome: out, seed })
        }
        PatternStrategy::Classed | PatternStrategy::Coarse => {
            let (out, ext, warm) = solve_restricted(
                trans,
                &ps,
                &classes,
                cfg,
                stats,
                cfg.tree_pricing,
                seed.root_warm.as_ref(),
                cancel,
            )?;
            let seed = ReplaySeed { root_warm: warm, ..seed.clone() };
            let ps = ext.unwrap_or(ps);
            let (cps, cout) = crate::declass::declass(trans, &classes, &ps, &out, stats)?;
            Ok(PatternSolution { patterns: cps, outcome: cout, seed })
        }
        PatternStrategy::Auto => unreachable!("rejected above"),
    }
}

/// The class-aggregated attempt: pricing and the MILP keyed on `(size,
/// bag class)`, de-classed to concrete bags on success. With `coarse`
/// set the classes are template-quantized ([`BagClasses::compute_coarse`])
/// and the symbol availabilities are priced at the per-size member
/// minimum ([`collect_symbols_coarse`]); the de-class repair pass then
/// re-places each member's surplus jobs.
///
/// Returns `Some` only for verdicts that are *final*: a de-classed
/// solution, or a pricing infeasibility proof (exact — every per-bag
/// pattern multiset maps to a class-level one covering at least the
/// minimum availabilities, so the aggregated master is a relaxation on
/// the coarse path too). `None` means the class level could not settle
/// the guess — pricing stalled, the restricted MILP failed, or the
/// concrete small-job split or surplus repair failed — and the caller
/// retries per-bag, where the joint model and the eager oracle are
/// available.
fn solve_patterns_aggregated(
    trans: &Transformed,
    classes: &BagClasses,
    cfg: &EptasConfig,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
    coarse: bool,
) -> Option<Result<PatternSolution, GuessFailure>> {
    stats.bag_classes += classes.num_classes() as u64;
    let symbols = if coarse {
        collect_symbols_coarse(trans, classes)
    } else {
        collect_symbols_classed(trans, classes)
    };
    stats.symbols_after_aggregation += symbols.len() as u64;
    match generate_columns(trans, &symbols, classes, cfg, stats, cancel) {
        Pricing::Infeasible => Some(Err(GuessFailure::MilpInfeasible)),
        Pricing::Stalled => None,
        Pricing::Cancelled => Some(Err(GuessFailure::Cancelled)),
        Pricing::Converged(pool) => {
            let ps = PatternSet::from_parts(symbols, pool);
            let (out, ext, warm) =
                solve_restricted(trans, &ps, classes, cfg, stats, cfg.tree_pricing, None, cancel)
                    .ok()?;
            let seed = ReplaySeed {
                strategy: if coarse { PatternStrategy::Coarse } else { PatternStrategy::Classed },
                t: trans.t,
                symbols: ps.symbols.clone(),
                pool: ps.patterns.clone(),
                root_warm: warm,
                solution: None,
            };
            let ps = ext.unwrap_or(ps);
            let (cps, cout) = crate::declass::declass(trans, classes, &ps, &out, stats).ok()?;
            Some(Ok(PatternSolution { patterns: cps, outcome: cout, seed }))
        }
    }
}

/// The one place pattern sets grow a tree-priced tail: patterns append in
/// column order, the `chi` table is rebuilt. Built once per tree-priced
/// solve and handed up to the caller alongside the outcome.
fn extend_patterns(ps: PatternSet, extra: &[Pattern]) -> PatternSet {
    let mut patterns = ps.patterns;
    patterns.extend(extra.iter().cloned());
    PatternSet::from_parts(ps.symbols, patterns)
}

/// Build and solve the MILP for one guess over a *given* pattern set.
/// Simplex/branch-and-bound work counters are recorded into `stats`
/// whatever the outcome, so infeasible and budget-exhausted guesses still
/// account for their cost.
pub fn solve_with_patterns(
    trans: &Transformed,
    ps: &PatternSet,
    cfg: &EptasConfig,
    stats: &mut Stats,
) -> Result<MilpOutcome, GuessFailure> {
    solve_with_patterns_classed(trans, ps, &BagClasses::singletons(trans), cfg, stats)
}

/// Per-pattern slot counts per bag class: `table[p][c]` is how many slots
/// of class `c` pattern `p` holds (summed over sizes). The class-keyed
/// generalization of `chi`: with singleton classes the entries are 0/1
/// and `table[p][c] == 1` iff `chi_p(rep_c)`.
pub(crate) fn class_mult_table(ps: &PatternSet, classes: &BagClasses) -> Vec<Vec<u32>> {
    ps.patterns.iter().map(|pat| pat.class_multiplicities(&ps.symbols, classes)).collect()
}

/// [`solve_with_patterns`] generalized to class-keyed pattern sets: the
/// covering rows of the MILP run over whatever symbols `ps` carries, and
/// the small-job constraints (3)–(5) run per `(class, size)` with the
/// per-pattern free capacity `|C| - mult_C(p)` replacing the boolean
/// `chi` exclusion. Singleton classes reproduce the per-bag model
/// term for term. Tree pricing is off on this entry point (it is the
/// oracle/cross-validation surface); the priced-pool path goes through
/// [`solve_restricted`].
pub(crate) fn solve_with_patterns_classed(
    trans: &Transformed,
    ps: &PatternSet,
    classes: &BagClasses,
    cfg: &EptasConfig,
    stats: &mut Stats,
) -> Result<MilpOutcome, GuessFailure> {
    solve_restricted(trans, ps, classes, cfg, stats, false, None, None).map(|(out, _, _)| out)
}

/// The restricted configuration MILP over a (priced or enumerated) pool,
/// optionally with in-tree pricing (`tree`): fractional node LPs of the
/// branch-and-bound then consult the knapsack pricing DFS against the
/// node duals and graft improving patterns as new integer columns (see
/// [`TreePriceDriver`]). Only the priced-pool path enables it — eager
/// pools are already complete by construction. When tree columns were
/// generated the second return value carries the extended pattern set
/// (`x`'s index space), built exactly once. `root_warm` seeds the
/// x-MILP's root LP with a basis from a previous identical solve; the
/// third return value is this solve's root basis for the next one (see
/// [`bagsched_milp::solve_milp_seeded`]).
#[allow(clippy::too_many_arguments)]
fn solve_restricted(
    trans: &Transformed,
    ps: &PatternSet,
    classes: &BagClasses,
    cfg: &EptasConfig,
    stats: &mut Stats,
    tree: bool,
    root_warm: Option<&WarmState>,
    cancel: Option<&CancelToken>,
) -> Result<(MilpOutcome, Option<PatternSet>, Option<WarmState>), GuessFailure> {
    let pairs = priority_small_pairs_classed(trans, classes);
    let w_nonprio = nonpriority_small_area(trans);
    let class_mult = class_mult_table(ps, classes);

    // Estimate the joint model size.
    let np = ps.patterns.len();
    let y_cols: usize = pairs
        .iter()
        .map(|pair| {
            let c = classes.of(pair.tbag).expect("pair reps are classed");
            let cap = classes.size(c) as u32;
            (0..np).filter(|&p| class_mult[p][c] < cap).count()
        })
        .sum();
    let classes_with_smalls: Vec<usize> = {
        let mut seen = Vec::new();
        for pair in &pairs {
            let c = classes.of(pair.tbag).expect("pair reps are classed");
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    };
    let est_cols = np + y_cols + np; // x + y + a
    let est_rows = 1 + ps.symbols.len() + pairs.len() + 1 + np + np * classes_with_smalls.len();

    let joint = est_cols <= cfg.joint_col_budget
        && est_rows <= cfg.joint_row_budget
        && est_cols.saturating_mul(est_rows) <= cfg.joint_cell_budget;
    // The per-bag path keeps the equality covering (2) — it prunes the
    // search and downstream consumes counts exactly. The aggregated path
    // uses the paper's original `>=`: with class multiplicities the
    // branch-and-bound dive constantly overshoots an equality when it
    // rounds up, turning every up-child infeasible; under `>=` dives
    // land, and [`crate::declass`] trims the surplus slots (a sub-multiset
    // of a pattern is itself a valid pattern).
    let covering = if classes.all_singletons() { Relation::Eq } else { Relation::Ge };
    let ctx =
        ClassCtx { classes, class_mult: &class_mult, with_smalls: &classes_with_smalls, covering };
    if joint {
        solve_joint(trans, ps, cfg, pairs, w_nonprio, &ctx, stats, tree, root_warm, cancel)
    } else {
        solve_two_stage(trans, ps, cfg, pairs, w_nonprio, &ctx, stats, tree, root_warm, cancel)
    }
}

/// The class context threaded through the MILP builders.
pub(crate) struct ClassCtx<'a> {
    pub classes: &'a BagClasses,
    /// `[pattern][class]` slot counts (see [`class_mult_table`]).
    pub class_mult: &'a [Vec<u32>],
    /// Classes that own priority small jobs, in pair order.
    pub with_smalls: &'a [usize],
    /// Relation of the covering rows (2): `Eq` per-bag, `Ge` aggregated.
    pub covering: Relation,
}

impl ClassCtx<'_> {
    /// Per-machine capacity pattern `p` leaves for small jobs of class
    /// `c`: member bags without a large slot on the machine.
    fn free_cap(&self, p: usize, c: usize) -> u32 {
        (self.classes.size(c) as u32).saturating_sub(self.class_mult[p][c])
    }
}

/// Fold one MILP solve's counters into the run-wide stats.
fn record_milp(stats: &mut Stats, res: &bagsched_milp::MilpResult) {
    stats.simplex_pivots += res.lp_iterations as u64;
    stats.lp_solves += res.lp_solves as u64;
    stats.milp_nodes += res.nodes as u64;
    stats.dual_pivots += res.dual_pivots as u64;
    stats.node_warm_starts += res.node_warm_starts as u64;
    stats.tree_columns_generated += res.tree_columns as u64;
    stats.basis_refactorizations += res.basis_refactorizations as u64;
    stats.eta_updates += res.eta_updates as u64;
}

fn milp_options(cfg: &EptasConfig, cancel: Option<&CancelToken>) -> MilpOptions {
    MilpOptions {
        max_nodes: cfg.milp_max_nodes,
        time_limit: cfg.milp_time_limit,
        int_tol: 1e-6,
        first_solution: true,
        dual_simplex: cfg.dual_simplex,
        price_after_nodes: 32,
        cancel: cancel.map(CancelToken::probe),
    }
}

/// Run the restricted MILP, with the in-tree pricer attached when `tree`
/// is set. Returns the raw result plus the tree-priced patterns and their
/// solution values (the tail of the extended `x` index space).
fn run_milp(
    model: &Model,
    cfg: &EptasConfig,
    stats: &mut Stats,
    tree: Option<TreePriceDriver<'_>>,
    root_warm: Option<&WarmState>,
    cancel: Option<&CancelToken>,
) -> (MilpResult, Vec<Pattern>, Vec<u32>, Option<WarmState>) {
    match tree {
        Some(mut driver) => {
            let (res, warm_out) =
                solve_milp_seeded(model, &milp_options(cfg, cancel), Some(&mut driver), root_warm);
            stats.add(&driver.stats);
            let tree_x = match res.status {
                MilpStatus::Optimal | MilpStatus::Feasible => {
                    driver.new_vars.iter().map(|&v| res.x[v.0].round() as u32).collect()
                }
                _ => Vec::new(),
            };
            (res, driver.new_patterns, tree_x, warm_out)
        }
        None => {
            // Without a pricer the warm seam stays closed: passing a
            // seed would skip presolve and change which model the B&B
            // explores relative to the cold path it must reproduce.
            let (res, _) = solve_milp_seeded(model, &milp_options(cfg, cancel), None, None);
            (res, Vec::new(), Vec::new(), None)
        }
    }
}

/// The paper-faithful joint model, class-keyed: constraint (5) becomes
/// `sum_s y_{(C,s),p} <= (|C| - mult_C(p)) * x_p` — each machine of
/// pattern `p` has `|C| - mult_C(p)` member bags without a large slot,
/// and the bag-constraint allows one small job per such bag. Singleton
/// classes recover the paper's boolean `chi` form exactly.
///
/// Tree-priced columns participate only in rows (1) and (2): they carry
/// no `y`/`a` variables, so no small jobs are modelled on them — a sound
/// restriction (their machines simply stay small-free in the MILP's
/// view).
#[allow(clippy::too_many_arguments)]
fn solve_joint(
    trans: &Transformed,
    ps: &PatternSet,
    cfg: &EptasConfig,
    pairs: Vec<SmallPair>,
    w_nonprio: f64,
    ctx: &ClassCtx<'_>,
    stats: &mut Stats,
    tree: bool,
    root_warm: Option<&WarmState>,
    cancel: Option<&CancelToken>,
) -> Result<(MilpOutcome, Option<PatternSet>, Option<WarmState>), GuessFailure> {
    let m = trans.tinst.num_machines() as f64;
    let np = ps.patterns.len();
    let mut model = Model::new();
    model.set_refactor_interval(cfg.refactor_interval);

    // x_p: integer in [0, m]; empty pattern costs nothing. The tiny
    // index-dependent perturbation breaks the column symmetry of
    // bag-symmetric patterns — without it the simplex stalls in degenerate
    // pivots on the covering equalities and the B&B dive cannot reach an
    // incumbent within budget.
    let x: Vec<VarId> = (0..np)
        .map(|p| model.add_int_var(if p == 0 { 0.0 } else { 1.0 + p as f64 * 1e-9 }, 0.0, m))
        .collect();

    // Integral-y threshold of constraint (7): eps^{2k+11}.
    let eps = cfg.epsilon;
    let y_int_threshold = if cfg.paper_integral_y {
        // medium_threshold = eps^{k+1}  =>  eps^{2k+11} = mt^2 * eps^9.
        let mt = medium_threshold_of(trans);
        mt * mt * eps.powi(9)
    } else {
        f64::INFINITY
    };

    // y variables per (pair, pattern with free class capacity). The tiny
    // perturbation breaks ties among symmetric (pair, pattern) columns,
    // like for `x`.
    let mut y: HashMap<(usize, usize), VarId> = HashMap::new();
    for (i, pair) in pairs.iter().enumerate() {
        let c = ctx.classes.of(pair.tbag).expect("pair reps are classed");
        for p in 0..np {
            if ctx.free_cap(p, c) > 0 {
                let tiny = (i * np + p) as f64 * 1e-12;
                let v = if pair.size > y_int_threshold {
                    model.add_int_var(tiny, 0.0, pair.jobs.len() as f64)
                } else {
                    model.add_var(tiny, 0.0, pair.jobs.len() as f64)
                };
                y.insert((i, p), v);
            }
        }
    }

    // a_p variables.
    let a: Vec<VarId> = (0..np).map(|_| model.add_var(0.0, 0.0, f64::INFINITY)).collect();

    // Row layout for the in-tree pricer, recorded as the rows are built.
    let mut rows: Vec<MilpRow> = Vec::new();

    // (1)
    let ones: Vec<(VarId, f64)> = x.iter().map(|&v| (v, 1.0)).collect();
    model.add_con(&ones, Relation::Le, m);
    rows.push(MilpRow::Machine);

    // (2) per symbol.
    for (si, sym) in ps.symbols.iter().enumerate() {
        let mut terms = Vec::new();
        for (p, pat) in ps.patterns.iter().enumerate() {
            if let Some(&(_, mult)) = pat.entries.iter().find(|&&(s, _)| s == si) {
                terms.push((x[p], mult as f64));
            }
        }
        model.add_con(&terms, ctx.covering, sym.avail as f64);
        rows.push(MilpRow::Symbol(si));
    }

    // (3) per pair.
    for (i, pair) in pairs.iter().enumerate() {
        let terms: Vec<(VarId, f64)> =
            (0..np).filter_map(|p| y.get(&(i, p)).map(|&v| (v, 1.0))).collect();
        model.add_con(&terms, Relation::Eq, pair.jobs.len() as f64);
        rows.push(MilpRow::Other);
    }
    // (3') aggregate non-priority area.
    if w_nonprio > 0.0 {
        let terms: Vec<(VarId, f64)> = a.iter().map(|&v| (v, 1.0)).collect();
        model.add_con(&terms, Relation::Eq, w_nonprio);
        rows.push(MilpRow::Other);
    }

    // (4) per pattern.
    for (p, pat) in ps.patterns.iter().enumerate() {
        let budget = trans.t - pat.height;
        let mut terms: Vec<(VarId, f64)> = vec![(a[p], 1.0), (x[p], -budget)];
        for (i, pair) in pairs.iter().enumerate() {
            if let Some(&v) = y.get(&(i, p)) {
                terms.push((v, pair.size));
            }
        }
        model.add_con(&terms, Relation::Le, 0.0);
        rows.push(MilpRow::Other);
    }

    // (5) per (pattern, class with smalls): small jobs of the class are
    // capped by the member bags without a large slot on the machine.
    for &c in ctx.with_smalls {
        let rep = ctx.classes.rep(c);
        for (p, &xp) in x.iter().enumerate() {
            let free = ctx.free_cap(p, c);
            if free == 0 {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = vec![(xp, -(free as f64))];
            for (i, pair) in pairs.iter().enumerate() {
                if pair.tbag == rep {
                    if let Some(&v) = y.get(&(i, p)) {
                        terms.push((v, 1.0));
                    }
                }
            }
            if terms.len() > 1 {
                model.add_con(&terms, Relation::Le, 0.0);
                rows.push(MilpRow::Other);
            }
        }
    }

    let driver = tree
        .then(|| TreePriceDriver::new(&ps.symbols, ctx.classes, trans.t, cfg, rows, &ps.patterns));
    let (res, tree_patterns, tree_x, warm_out) =
        run_milp(&model, cfg, stats, driver, root_warm, cancel);
    record_milp(stats, &res);
    match res.status {
        MilpStatus::Optimal | MilpStatus::Feasible => {
            let mut xs: Vec<u32> = x.iter().map(|&v| res.x[v.0].round() as u32).collect();
            xs.extend(tree_x);
            let ys: HashMap<(usize, usize), f64> = y
                .into_iter()
                .filter_map(|(key, v)| {
                    let val = res.x[v.0];
                    (val > 1e-9).then_some((key, val))
                })
                .collect();
            let ext =
                (!tree_patterns.is_empty()).then(|| extend_patterns(ps.clone(), &tree_patterns));
            Ok((
                MilpOutcome {
                    x: xs,
                    y: ys,
                    pairs,
                    joint: true,
                    nodes: res.nodes,
                    lp_iterations: res.lp_iterations,
                },
                ext,
                warm_out,
            ))
        }
        MilpStatus::Infeasible => Err(GuessFailure::MilpInfeasible),
        // A budget stop under a tripped token is a cancellation, not a
        // verdict: the driver must not raise the search on it.
        MilpStatus::Budget | MilpStatus::Unbounded => {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                Err(GuessFailure::Cancelled)
            } else {
                Err(GuessFailure::MilpBudget)
            }
        }
    }
}

/// Two-stage path: x-MILP with aggregate cuts, then greedy fractional y.
///
/// This model is all-`x` rows, so tree-priced columns participate fully
/// (coverings, area cut, per-class cuts): small jobs *can* be realized on
/// their machines — the greedy `y` runs over the extended pattern set.
#[allow(clippy::too_many_arguments)]
fn solve_two_stage(
    trans: &Transformed,
    ps: &PatternSet,
    cfg: &EptasConfig,
    pairs: Vec<SmallPair>,
    w_nonprio: f64,
    ctx: &ClassCtx<'_>,
    stats: &mut Stats,
    tree: bool,
    root_warm: Option<&WarmState>,
    cancel: Option<&CancelToken>,
) -> Result<(MilpOutcome, Option<PatternSet>, Option<WarmState>), GuessFailure> {
    let m = trans.tinst.num_machines() as f64;
    let np = ps.patterns.len();
    let mut model = Model::new();
    model.set_refactor_interval(cfg.refactor_interval);
    let mut rows: Vec<MilpRow> = Vec::new();
    // Perturbed like the joint model: see the comment there.
    let x: Vec<VarId> = (0..np)
        .map(|p| model.add_int_var(if p == 0 { 0.0 } else { 1.0 + p as f64 * 1e-9 }, 0.0, m))
        .collect();

    let ones: Vec<(VarId, f64)> = x.iter().map(|&v| (v, 1.0)).collect();
    model.add_con(&ones, Relation::Le, m);
    rows.push(MilpRow::Machine);
    for (si, sym) in ps.symbols.iter().enumerate() {
        let mut terms = Vec::new();
        for (p, pat) in ps.patterns.iter().enumerate() {
            if let Some(&(_, mult)) = pat.entries.iter().find(|&&(s, _)| s == si) {
                terms.push((x[p], mult as f64));
            }
        }
        model.add_con(&terms, ctx.covering, sym.avail as f64);
        rows.push(MilpRow::Symbol(si));
    }

    // Aggregate area cut: all small jobs must fit above the patterns.
    let w_prio: f64 = pairs.iter().map(|p| p.size * p.jobs.len() as f64).sum();
    let area_terms: Vec<(VarId, f64)> =
        ps.patterns.iter().enumerate().map(|(p, pat)| (x[p], trans.t - pat.height)).collect();
    model.add_con(&area_terms, Relation::Ge, w_prio + w_nonprio);
    rows.push(MilpRow::AreaCut);

    // Per class with smalls: count and area cuts over the free member
    // capacity (singleton classes: chi = 0 patterns with weight 1).
    for &c in ctx.with_smalls {
        let rep = ctx.classes.rep(c);
        let count: f64 =
            pairs.iter().filter(|pr| pr.tbag == rep).map(|pr| pr.jobs.len() as f64).sum();
        let area: f64 =
            pairs.iter().filter(|pr| pr.tbag == rep).map(|pr| pr.size * pr.jobs.len() as f64).sum();
        let count_terms: Vec<(VarId, f64)> = (0..np)
            .filter(|&p| ctx.free_cap(p, c) > 0)
            .map(|p| (x[p], ctx.free_cap(p, c) as f64))
            .collect();
        model.add_con(&count_terms, Relation::Ge, count);
        rows.push(MilpRow::ClassCount(c));
        let area_terms: Vec<(VarId, f64)> = (0..np)
            .filter(|&p| ctx.free_cap(p, c) > 0)
            .map(|p| (x[p], trans.t - ps.patterns[p].height))
            .collect();
        model.add_con(&area_terms, Relation::Ge, area);
        rows.push(MilpRow::ClassArea(c));
    }

    let driver = tree
        .then(|| TreePriceDriver::new(&ps.symbols, ctx.classes, trans.t, cfg, rows, &ps.patterns));
    let (res, tree_patterns, tree_x, warm_out) =
        run_milp(&model, cfg, stats, driver, root_warm, cancel);
    record_milp(stats, &res);
    let xs: Vec<u32> = match res.status {
        MilpStatus::Optimal | MilpStatus::Feasible => {
            let mut xs: Vec<u32> = x.iter().map(|&v| res.x[v.0].round() as u32).collect();
            xs.extend(tree_x);
            xs
        }
        MilpStatus::Infeasible => return Err(GuessFailure::MilpInfeasible),
        MilpStatus::Budget | MilpStatus::Unbounded => {
            return Err(if cancel.is_some_and(CancelToken::is_cancelled) {
                GuessFailure::Cancelled
            } else {
                GuessFailure::MilpBudget
            });
        }
    };

    // The greedy `y` must see the same index space as `xs`: extend the
    // pattern set (and the per-pattern class table) with the tree
    // columns, once — the same extended set rides up to the caller.
    let ext = (!tree_patterns.is_empty()).then(|| extend_patterns(ps.clone(), &tree_patterns));
    let y = match &ext {
        None => greedy_small_y(trans, ps, &xs, &pairs, w_nonprio, ctx)?,
        Some(ext) => {
            let class_mult = class_mult_table(ext, ctx.classes);
            let ext_ctx = ClassCtx {
                classes: ctx.classes,
                class_mult: &class_mult,
                with_smalls: ctx.with_smalls,
                covering: ctx.covering,
            };
            greedy_small_y(trans, ext, &xs, &pairs, w_nonprio, &ext_ctx)?
        }
    };
    Ok((
        MilpOutcome {
            x: xs,
            y,
            pairs,
            joint: false,
            nodes: res.nodes,
            lp_iterations: res.lp_iterations,
        },
        ext,
        warm_out,
    ))
}

/// Greedy fractional y over a solved `x`: big pieces first, onto the
/// pattern with the most free area per machine, respecting the
/// per-(pattern, class) count cap `free_cap * x_p` and the area budgets;
/// non-priority area `w_nonprio` must still fit afterwards. Shared by the
/// two-stage path and the de-classer (which re-realizes the small jobs on
/// the concrete patterns).
pub(crate) fn greedy_small_y(
    trans: &Transformed,
    ps: &PatternSet,
    xs: &[u32],
    pairs: &[SmallPair],
    w_nonprio: f64,
    ctx: &ClassCtx<'_>,
) -> Result<HashMap<(usize, usize), f64>, GuessFailure> {
    let np = ps.patterns.len();
    let mut area_left: Vec<f64> = ps
        .patterns
        .iter()
        .enumerate()
        .map(|(p, pat)| xs[p] as f64 * (trans.t - pat.height))
        .collect();
    let mut class_cap: HashMap<(usize, usize), f64> = HashMap::new();
    for &c in ctx.with_smalls {
        for (p, &xp) in xs.iter().enumerate() {
            let free = ctx.free_cap(p, c);
            if free > 0 {
                class_cap.insert((c, p), free as f64 * xp as f64);
            }
        }
    }
    let mut y: HashMap<(usize, usize), f64> = HashMap::new();
    for (i, pair) in pairs.iter().enumerate() {
        let c = ctx.classes.of(pair.tbag).expect("pair reps are classed");
        let mut remaining = pair.jobs.len() as f64;
        while remaining > 1e-9 {
            // Pattern with maximal free area per machine among those with
            // cap and area left.
            let best = (0..np)
                .filter(|&p| xs[p] > 0 && ctx.free_cap(p, c) > 0)
                .filter(|&p| class_cap.get(&(c, p)).copied().unwrap_or(0.0) > 1e-9)
                .filter(|&p| area_left[p] > 1e-9)
                .max_by(|&a, &b| {
                    (area_left[a] / xs[a] as f64).total_cmp(&(area_left[b] / xs[b] as f64))
                });
            let Some(p) = best else {
                return Err(GuessFailure::SmallPlacement);
            };
            let cap = class_cap[&(c, p)];
            let by_area = area_left[p] / pair.size;
            let take = remaining.min(cap).min(by_area);
            if take <= 1e-9 {
                return Err(GuessFailure::SmallPlacement);
            }
            *y.entry((i, p)).or_insert(0.0) += take;
            area_left[p] -= take * pair.size;
            *class_cap.get_mut(&(c, p)).unwrap() -= take;
            remaining -= take;
        }
    }
    let total_area_left: f64 = area_left.iter().sum();
    if total_area_left + 1e-6 < w_nonprio {
        return Err(GuessFailure::SmallPlacement);
    }
    Ok(y)
}

/// Recover `eps^{k+1}` from the transformed instance's job classes.
fn medium_threshold_of(trans: &Transformed) -> f64 {
    // Smallest non-small rounded size is >= eps^{k+1}; in its absence use
    // T (the threshold is only used for the optional constraint (7)).
    (0..trans.tinst.num_jobs())
        .filter(|&j| trans.tclass[j] != JobClass::Small)
        .map(|j| trans.tinst.size(JobId(j as u32)))
        .fold(trans.t, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::pattern::enumerate_patterns;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn pipeline(
        jobs: &[(f64, u32)],
        m: usize,
        cfg: &EptasConfig,
    ) -> (Transformed, PatternSet, Result<MilpOutcome, GuessFailure>) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, cfg.epsilon).unwrap();
        let c = classify(&r, m);
        let p = select_priority(&inst, &r, &c, cfg);
        let t = transform(&inst, &r, &c, &p);
        let ps = enumerate_patterns(&t, cfg.max_patterns).unwrap();
        let out = solve_with_patterns(&t, &ps, cfg, &mut Stats::default());
        (t, ps, out)
    }

    #[test]
    fn feasible_guess_covers_all_slots() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1), (0.4, 2), (0.05, 0), (0.05, 3)];
        let (t, ps, out) = pipeline(&jobs, 3, &cfg);
        let out = out.expect("guess T covers this instance");
        assert!(out.joint, "small model must take the joint path");
        // (1): machines.
        let total: u32 = out.x.iter().sum();
        assert!(total as usize <= t.tinst.num_machines());
        // (2): every symbol exactly covered.
        for (si, sym) in ps.symbols.iter().enumerate() {
            let covered: u32 = ps
                .patterns
                .iter()
                .enumerate()
                .map(|(p, pat)| {
                    pat.entries
                        .iter()
                        .find(|&&(s, _)| s == si)
                        .map_or(0, |&(_, mult)| out.x[p] * mult as u32)
                })
                .sum();
            assert_eq!(covered, sym.avail, "symbol {si} mis-covered");
        }
        // (3): y sums to counts.
        for (i, pair) in out.pairs.iter().enumerate() {
            let sum: f64 = (0..ps.patterns.len()).filter_map(|p| out.y.get(&(i, p))).sum();
            assert!(
                (sum - pair.jobs.len() as f64).abs() < 1e-6,
                "pair {i}: y sums to {sum}, want {}",
                pair.jobs.len()
            );
        }
    }

    #[test]
    fn infeasible_guess_detected() {
        // Five unit jobs on two machines: each pattern holds at most two
        // slots of size ~1 (T = 2.25), so two machines cover at most four.
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3), (1.0, 4)];
        let (_, _, out) = pipeline(&jobs, 2, &cfg);
        assert_eq!(out.unwrap_err(), GuessFailure::MilpInfeasible);
    }

    #[test]
    fn two_stage_path_triggers_on_tiny_budget() {
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.joint_col_budget = 1; // force the two-stage path
        let jobs = [(0.9, 0), (0.9, 1), (0.05, 0), (0.05, 1)];
        let (_, _, out) = pipeline(&jobs, 2, &cfg);
        let out = out.expect("two-stage path should also succeed here");
        assert!(!out.joint);
        // y still covers all priority small jobs.
        for (i, pair) in out.pairs.iter().enumerate() {
            let sum: f64 = out.y.iter().filter(|((pi, _), _)| *pi == i).map(|(_, &v)| v).sum();
            assert!((sum - pair.jobs.len() as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn y_respects_chi_exclusion() {
        let cfg = EptasConfig::with_epsilon(0.5);
        // Priority bag 0 has a large job and small jobs: no y of bag 0 may
        // sit on a pattern containing bag 0's large slot.
        let jobs = [(0.9, 0), (0.05, 0), (0.05, 0), (0.9, 1)];
        let (_, ps, out) = pipeline(&jobs, 3, &cfg);
        let out = out.unwrap();
        for ((i, p), &v) in &out.y {
            if v > 1e-9 {
                assert!(
                    !ps.chi(*p, out.pairs[*i].tbag),
                    "y of bag {:?} placed on conflicting pattern {p}",
                    out.pairs[*i].tbag
                );
            }
        }
    }

    #[test]
    fn area_constraint_respected() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1), (0.05, 2), (0.05, 3), (0.05, 4)];
        let (t, ps, out) = pipeline(&jobs, 2, &cfg);
        let out = out.unwrap();
        // Reconstruct per-pattern small load and check (4) in aggregate:
        // priority y-load must fit in the x-weighted free area.
        for p in 0..ps.patterns.len() {
            let yload: f64 = out
                .y
                .iter()
                .filter(|((_, pp), _)| *pp == p)
                .map(|((i, _), &v)| v * out.pairs[*i].size)
                .sum();
            let budget = out.x[p] as f64 * (t.t - ps.patterns[p].height);
            assert!(yload <= budget + 1e-6, "pattern {p}: {yload} > {budget}");
        }
    }

    #[test]
    fn small_pairs_extraction() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let inst = Instance::new(&[(0.9, 0), (0.05, 0), (0.05, 0), (0.01, 0)], 2);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 2);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let pairs = priority_small_pairs(&t);
        // Bag 0 is priority (has the only large job); two small sizes.
        let total_jobs: usize = pairs.iter().map(|p| p.jobs.len()).sum();
        assert_eq!(total_jobs, 3);
        // Sorted by size descending.
        for w in pairs.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
    }
}
