//! The configuration MILP (paper §3, constraints (1)–(9)).
//!
//! Variables:
//! * `x_p` (integer): machines assigned pattern `p` — constraint (6);
//! * `y_{(l,s),p}` (fractional): small jobs of priority size-restricted
//!   bag `B_l^s` placed on top of pattern `p` — constraints (8)/(9).
//!   (Constraint (7) would make the largest of these integral; see
//!   `EptasConfig::paper_integral_y` and DESIGN.md §2.)
//! * `a_p` (fractional): aggregate *area* of non-priority small jobs on
//!   pattern `p`. The paper uses per-(bag, size) `y` variables for
//!   non-priority bags too, but its own Lemma 9 consumes only the area
//!   distribution of those variables (group-bag-LPT re-places the jobs
//!   from scratch), so aggregating them is a lossless model reduction
//!   that shrinks the LP by a factor of the number of non-priority bags.
//!
//! Constraints (paper numbering):
//! * (1) `sum_p x_p <= m`;
//! * (2) per slot symbol: `sum_p x_p * mult_p(symbol) = avail` (the paper
//!   writes `>=`; equality is equally valid — an optimal schedule uses
//!   each job exactly once — and prunes the search);
//! * (3) per priority small pair: `sum_p y = count`, plus the aggregate
//!   `sum_p a_p = total non-priority small area`;
//! * (4) per pattern: `sum y * size + a_p <= x_p * (T - height(p))`;
//! * (5) per (pattern, priority bag): `sum_s y <= x_p` when the pattern
//!   holds no job of the bag, `y = 0` otherwise (encoded by simply not
//!   creating those variables).
//!
//! When the joint model exceeds the configured size budget, a *two-stage*
//! path solves the x-MILP with aggregate small-job cuts and then
//! constructs `y` greedily (documented deviation; the driver reports
//! which path ran).
//!
//! ## Pattern generation: pricing first, enumeration as oracle
//!
//! [`solve_patterns`] drives a generate→solve→price loop: the
//! [`crate::pricing`] subsystem grows a small pattern pool by column
//! generation against the master-LP duals, and the joint/two-stage MILP
//! then runs on that pool. Eager [`enumerate_patterns`] remains the
//! cross-validation oracle: it is consulted (with a reduced budget) when
//! the MILP over the priced pool fails inconclusively, and it is the
//! full fallback when pricing stalls or is disabled
//! ([`EptasConfig::column_generation`]).

use crate::classify::JobClass;
use crate::config::EptasConfig;
use crate::pattern::{enumerate_patterns, PatternSet};
use crate::pricing::{generate_columns, Pricing};
use crate::report::{GuessFailure, Stats};
use crate::rounding::SizeExp;
use crate::transform::Transformed;
use bagsched_milp::{solve_milp, MilpOptions, MilpStatus, Model, Relation, VarId};
use bagsched_types::{BagId, JobId};
use std::collections::HashMap;

/// A priority size-restricted bag of small jobs: `B_l^s` with `l` priority.
#[derive(Debug, Clone)]
pub struct SmallPair {
    /// The (transformed) priority bag.
    pub tbag: BagId,
    /// Size exponent.
    pub exp: SizeExp,
    /// Rounded size.
    pub size: f64,
    /// The jobs of this pair.
    pub jobs: Vec<JobId>,
}

/// Solution of the MILP phase.
#[derive(Debug, Clone)]
pub struct MilpOutcome {
    /// Machines per pattern (integral).
    pub x: Vec<u32>,
    /// Fractional job counts per `(pair index, pattern index)`.
    pub y: HashMap<(usize, usize), f64>,
    /// The priority small pairs (index space of `y`).
    pub pairs: Vec<SmallPair>,
    /// Whether the joint (paper-faithful) model was solved.
    pub joint: bool,
    /// Branch-and-bound nodes.
    pub nodes: usize,
    /// Simplex iterations.
    pub lp_iterations: usize,
}

/// Collect the priority small pairs of the transformed instance.
pub fn priority_small_pairs(trans: &Transformed) -> Vec<SmallPair> {
    let epsilon = trans.t.sqrt() - 1.0;
    let mut map: HashMap<(BagId, SizeExp), Vec<JobId>> = HashMap::new();
    for j in 0..trans.tinst.num_jobs() {
        if trans.tclass[j] != JobClass::Small {
            continue;
        }
        let tbag = trans.tinst.bag_of(JobId(j as u32));
        if trans.is_priority_tbag[tbag.idx()] {
            map.entry((tbag, trans.texp[j])).or_default().push(JobId(j as u32));
        }
    }
    let mut pairs: Vec<SmallPair> = map
        .into_iter()
        .map(|((tbag, exp), jobs)| SmallPair {
            tbag,
            exp,
            size: crate::rounding::exp_size(exp, epsilon),
            jobs,
        })
        .collect();
    // Deterministic order, large sizes first (the greedy path packs big
    // pieces while area is plentiful).
    pairs.sort_by(|a, b| b.size.total_cmp(&a.size).then(a.tbag.cmp(&b.tbag)));
    pairs
}

/// Total rounded area of non-priority small jobs (fillers included).
pub fn nonpriority_small_area(trans: &Transformed) -> f64 {
    (0..trans.tinst.num_jobs())
        .filter(|&j| {
            trans.tclass[j] == JobClass::Small
                && !trans.is_priority_tbag[trans.tinst.bag_of(JobId(j as u32)).idx()]
        })
        .map(|j| trans.tinst.size(JobId(j as u32)))
        .sum()
}

/// Generate patterns and solve the MILP for one guess: the top entry
/// point the driver uses.
///
/// With [`EptasConfig::column_generation`] on (the default) the pattern
/// pool comes from the pricing loop; the returned [`PatternSet`] is
/// whatever pool the successful solve ran on, so the downstream placement
/// phases see a consistent view. Verdict soundness:
///
/// * pricing-proven infeasibility ([`Pricing::Infeasible`]) refutes a
///   relaxation of the full MILP — `Err(MilpInfeasible)` is exact;
/// * a failure of the MILP *restricted to the priced pool* is
///   inconclusive, so the eager oracle is consulted with the (small)
///   [`EptasConfig::pricing_fallback_budget`]; if even that budget is
///   exceeded the restricted verdict stands as an inconclusive failure —
///   the driver raises the guess, exactly as it does for every other
///   budget-type failure;
/// * a pricing stall falls back to full eager enumeration, which may
///   fail with [`GuessFailure::PatternBudget`] as before.
pub fn solve_patterns(
    trans: &Transformed,
    cfg: &EptasConfig,
    stats: &mut Stats,
) -> Result<(PatternSet, MilpOutcome), GuessFailure> {
    if cfg.column_generation {
        let symbols = crate::pattern::collect_symbols(trans);
        match generate_columns(trans, &symbols, cfg, stats) {
            Pricing::Infeasible => return Err(GuessFailure::MilpInfeasible),
            Pricing::Converged(pool) => {
                let ps = PatternSet::from_parts(symbols, pool);
                match solve_with_patterns(trans, &ps, cfg, stats) {
                    Ok(out) => return Ok((ps, out)),
                    Err(restricted) => {
                        // Inconclusive on a restricted pool: consult the
                        // oracle if enumeration is cheap, otherwise let
                        // the restricted verdict stand (both variants are
                        // "raise the guess" to the driver).
                        let budget = cfg.max_patterns.min(cfg.pricing_fallback_budget);
                        match enumerate_patterns(trans, budget) {
                            Ok(full) => {
                                stats.patterns_enumerated += full.patterns.len() as u64;
                                let out = solve_with_patterns(trans, &full, cfg, stats)?;
                                return Ok((full, out));
                            }
                            Err(e) => {
                                stats.patterns_enumerated += e.budget as u64;
                                return Err(restricted);
                            }
                        }
                    }
                }
            }
            Pricing::Stalled => {} // fall through to the eager path
        }
    }
    let ps = enumerate_patterns(trans, cfg.max_patterns).map_err(|e| {
        // The DFS aborts after generating exactly `budget` patterns.
        stats.patterns_enumerated += e.budget as u64;
        GuessFailure::PatternBudget
    })?;
    stats.patterns_enumerated += ps.patterns.len() as u64;
    let out = solve_with_patterns(trans, &ps, cfg, stats)?;
    Ok((ps, out))
}

/// Build and solve the MILP for one guess over a *given* pattern set.
/// Simplex/branch-and-bound work counters are recorded into `stats`
/// whatever the outcome, so infeasible and budget-exhausted guesses still
/// account for their cost.
pub fn solve_with_patterns(
    trans: &Transformed,
    ps: &PatternSet,
    cfg: &EptasConfig,
    stats: &mut Stats,
) -> Result<MilpOutcome, GuessFailure> {
    let pairs = priority_small_pairs(trans);
    let w_nonprio = nonpriority_small_area(trans);

    // Estimate the joint model size.
    let np = ps.patterns.len();
    let y_cols: usize =
        pairs.iter().map(|pair| (0..np).filter(|&p| !ps.chi(p, pair.tbag)).count()).sum();
    let prio_bags_with_smalls: Vec<BagId> = {
        let mut seen = Vec::new();
        for pair in &pairs {
            if !seen.contains(&pair.tbag) {
                seen.push(pair.tbag);
            }
        }
        seen
    };
    let est_cols = np + y_cols + np; // x + y + a
    let est_rows = 1 + ps.symbols.len() + pairs.len() + 1 + np + np * prio_bags_with_smalls.len();

    let joint = est_cols <= cfg.joint_col_budget
        && est_rows <= cfg.joint_row_budget
        && est_cols.saturating_mul(est_rows) <= cfg.joint_cell_budget;
    if joint {
        solve_joint(trans, ps, cfg, pairs, w_nonprio, &prio_bags_with_smalls, stats)
    } else {
        solve_two_stage(trans, ps, cfg, pairs, w_nonprio, &prio_bags_with_smalls, stats)
    }
}

/// Fold one MILP solve's counters into the run-wide stats.
fn record_milp(stats: &mut Stats, res: &bagsched_milp::MilpResult) {
    stats.simplex_pivots += res.lp_iterations as u64;
    stats.lp_solves += res.lp_solves as u64;
    stats.milp_nodes += res.nodes as u64;
}

fn milp_options(cfg: &EptasConfig) -> MilpOptions {
    MilpOptions {
        max_nodes: cfg.milp_max_nodes,
        time_limit: cfg.milp_time_limit,
        int_tol: 1e-6,
        first_solution: true,
    }
}

/// The paper-faithful joint model.
fn solve_joint(
    trans: &Transformed,
    ps: &PatternSet,
    cfg: &EptasConfig,
    pairs: Vec<SmallPair>,
    w_nonprio: f64,
    prio_bags_with_smalls: &[BagId],
    stats: &mut Stats,
) -> Result<MilpOutcome, GuessFailure> {
    let m = trans.tinst.num_machines() as f64;
    let np = ps.patterns.len();
    let mut model = Model::new();

    // x_p: integer in [0, m]; empty pattern costs nothing. The tiny
    // index-dependent perturbation breaks the column symmetry of
    // bag-symmetric patterns — without it the simplex stalls in degenerate
    // pivots on the covering equalities and the B&B dive cannot reach an
    // incumbent within budget.
    let x: Vec<VarId> = (0..np)
        .map(|p| model.add_int_var(if p == 0 { 0.0 } else { 1.0 + p as f64 * 1e-9 }, 0.0, m))
        .collect();

    // Integral-y threshold of constraint (7): eps^{2k+11}.
    let eps = cfg.epsilon;
    let y_int_threshold = if cfg.paper_integral_y {
        // medium_threshold = eps^{k+1}  =>  eps^{2k+11} = mt^2 * eps^9.
        let mt = medium_threshold_of(trans);
        mt * mt * eps.powi(9)
    } else {
        f64::INFINITY
    };

    // y variables per (pair, pattern with chi = 0). The tiny perturbation
    // breaks ties among symmetric (pair, pattern) columns, like for `x`.
    let mut y: HashMap<(usize, usize), VarId> = HashMap::new();
    for (i, pair) in pairs.iter().enumerate() {
        for p in 0..np {
            if !ps.chi(p, pair.tbag) {
                let tiny = (i * np + p) as f64 * 1e-12;
                let v = if pair.size > y_int_threshold {
                    model.add_int_var(tiny, 0.0, pair.jobs.len() as f64)
                } else {
                    model.add_var(tiny, 0.0, pair.jobs.len() as f64)
                };
                y.insert((i, p), v);
            }
        }
    }

    // a_p variables.
    let a: Vec<VarId> = (0..np).map(|_| model.add_var(0.0, 0.0, f64::INFINITY)).collect();

    // (1)
    let ones: Vec<(VarId, f64)> = x.iter().map(|&v| (v, 1.0)).collect();
    model.add_con(&ones, Relation::Le, m);

    // (2) per symbol.
    for (si, sym) in ps.symbols.iter().enumerate() {
        let mut terms = Vec::new();
        for (p, pat) in ps.patterns.iter().enumerate() {
            if let Some(&(_, mult)) = pat.entries.iter().find(|&&(s, _)| s == si) {
                terms.push((x[p], mult as f64));
            }
        }
        model.add_con(&terms, Relation::Eq, sym.avail as f64);
    }

    // (3) per pair.
    for (i, pair) in pairs.iter().enumerate() {
        let terms: Vec<(VarId, f64)> =
            (0..np).filter_map(|p| y.get(&(i, p)).map(|&v| (v, 1.0))).collect();
        model.add_con(&terms, Relation::Eq, pair.jobs.len() as f64);
    }
    // (3') aggregate non-priority area.
    if w_nonprio > 0.0 {
        let terms: Vec<(VarId, f64)> = a.iter().map(|&v| (v, 1.0)).collect();
        model.add_con(&terms, Relation::Eq, w_nonprio);
    }

    // (4) per pattern.
    for (p, pat) in ps.patterns.iter().enumerate() {
        let budget = trans.t - pat.height;
        let mut terms: Vec<(VarId, f64)> = vec![(a[p], 1.0), (x[p], -budget)];
        for (i, pair) in pairs.iter().enumerate() {
            if let Some(&v) = y.get(&(i, p)) {
                terms.push((v, pair.size));
            }
        }
        model.add_con(&terms, Relation::Le, 0.0);
    }

    // (5) per (pattern, priority bag with smalls, chi = 0).
    for &l in prio_bags_with_smalls {
        for (p, &xp) in x.iter().enumerate() {
            if ps.chi(p, l) {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = vec![(xp, -1.0)];
            for (i, pair) in pairs.iter().enumerate() {
                if pair.tbag == l {
                    if let Some(&v) = y.get(&(i, p)) {
                        terms.push((v, 1.0));
                    }
                }
            }
            if terms.len() > 1 {
                model.add_con(&terms, Relation::Le, 0.0);
            }
        }
    }

    let res = solve_milp(&model, &milp_options(cfg));
    record_milp(stats, &res);
    match res.status {
        MilpStatus::Optimal | MilpStatus::Feasible => {
            let xs: Vec<u32> = x.iter().map(|&v| res.x[v.0].round() as u32).collect();
            let ys: HashMap<(usize, usize), f64> = y
                .into_iter()
                .filter_map(|(key, v)| {
                    let val = res.x[v.0];
                    (val > 1e-9).then_some((key, val))
                })
                .collect();
            Ok(MilpOutcome {
                x: xs,
                y: ys,
                pairs,
                joint: true,
                nodes: res.nodes,
                lp_iterations: res.lp_iterations,
            })
        }
        MilpStatus::Infeasible => Err(GuessFailure::MilpInfeasible),
        MilpStatus::Budget | MilpStatus::Unbounded => Err(GuessFailure::MilpBudget),
    }
}

/// Two-stage path: x-MILP with aggregate cuts, then greedy fractional y.
fn solve_two_stage(
    trans: &Transformed,
    ps: &PatternSet,
    cfg: &EptasConfig,
    pairs: Vec<SmallPair>,
    w_nonprio: f64,
    prio_bags_with_smalls: &[BagId],
    stats: &mut Stats,
) -> Result<MilpOutcome, GuessFailure> {
    let m = trans.tinst.num_machines() as f64;
    let np = ps.patterns.len();
    let mut model = Model::new();
    // Perturbed like the joint model: see the comment there.
    let x: Vec<VarId> = (0..np)
        .map(|p| model.add_int_var(if p == 0 { 0.0 } else { 1.0 + p as f64 * 1e-9 }, 0.0, m))
        .collect();

    let ones: Vec<(VarId, f64)> = x.iter().map(|&v| (v, 1.0)).collect();
    model.add_con(&ones, Relation::Le, m);
    for (si, sym) in ps.symbols.iter().enumerate() {
        let mut terms = Vec::new();
        for (p, pat) in ps.patterns.iter().enumerate() {
            if let Some(&(_, mult)) = pat.entries.iter().find(|&&(s, _)| s == si) {
                terms.push((x[p], mult as f64));
            }
        }
        model.add_con(&terms, Relation::Eq, sym.avail as f64);
    }

    // Aggregate area cut: all small jobs must fit above the patterns.
    let w_prio: f64 = pairs.iter().map(|p| p.size * p.jobs.len() as f64).sum();
    let area_terms: Vec<(VarId, f64)> =
        ps.patterns.iter().enumerate().map(|(p, pat)| (x[p], trans.t - pat.height)).collect();
    model.add_con(&area_terms, Relation::Ge, w_prio + w_nonprio);

    // Per priority bag: count and area cuts over chi = 0 patterns.
    for &l in prio_bags_with_smalls {
        let count: f64 =
            pairs.iter().filter(|pr| pr.tbag == l).map(|pr| pr.jobs.len() as f64).sum();
        let area: f64 =
            pairs.iter().filter(|pr| pr.tbag == l).map(|pr| pr.size * pr.jobs.len() as f64).sum();
        let count_terms: Vec<(VarId, f64)> =
            (0..np).filter(|&p| !ps.chi(p, l)).map(|p| (x[p], 1.0)).collect();
        model.add_con(&count_terms, Relation::Ge, count);
        let area_terms: Vec<(VarId, f64)> = (0..np)
            .filter(|&p| !ps.chi(p, l))
            .map(|p| (x[p], trans.t - ps.patterns[p].height))
            .collect();
        model.add_con(&area_terms, Relation::Ge, area);
    }

    let res = solve_milp(&model, &milp_options(cfg));
    record_milp(stats, &res);
    let xs: Vec<u32> = match res.status {
        MilpStatus::Optimal | MilpStatus::Feasible => {
            x.iter().map(|&v| res.x[v.0].round() as u32).collect()
        }
        MilpStatus::Infeasible => return Err(GuessFailure::MilpInfeasible),
        MilpStatus::Budget | MilpStatus::Unbounded => return Err(GuessFailure::MilpBudget),
    };

    // Greedy fractional y: big pieces first, onto the pattern with the
    // most free area per machine, respecting the per-(pattern, bag) count
    // cap x_p and the area budgets; non-priority area w_nonprio must
    // still fit afterwards.
    let mut area_left: Vec<f64> = ps
        .patterns
        .iter()
        .enumerate()
        .map(|(p, pat)| xs[p] as f64 * (trans.t - pat.height))
        .collect();
    let mut bag_cap: HashMap<(BagId, usize), f64> = HashMap::new();
    for &l in prio_bags_with_smalls {
        for (p, &xp) in xs.iter().enumerate() {
            if !ps.chi(p, l) {
                bag_cap.insert((l, p), xp as f64);
            }
        }
    }
    let mut y: HashMap<(usize, usize), f64> = HashMap::new();
    for (i, pair) in pairs.iter().enumerate() {
        let mut remaining = pair.jobs.len() as f64;
        while remaining > 1e-9 {
            // Pattern with maximal free area per machine among those with
            // cap and area left.
            let best = (0..np)
                .filter(|&p| xs[p] > 0 && !ps.chi(p, pair.tbag))
                .filter(|&p| bag_cap.get(&(pair.tbag, p)).copied().unwrap_or(0.0) > 1e-9)
                .filter(|&p| area_left[p] > 1e-9)
                .max_by(|&a, &b| {
                    (area_left[a] / xs[a] as f64).total_cmp(&(area_left[b] / xs[b] as f64))
                });
            let Some(p) = best else {
                return Err(GuessFailure::SmallPlacement);
            };
            let cap = bag_cap[&(pair.tbag, p)];
            let by_area = area_left[p] / pair.size;
            let take = remaining.min(cap).min(by_area);
            if take <= 1e-9 {
                return Err(GuessFailure::SmallPlacement);
            }
            *y.entry((i, p)).or_insert(0.0) += take;
            area_left[p] -= take * pair.size;
            *bag_cap.get_mut(&(pair.tbag, p)).unwrap() -= take;
            remaining -= take;
        }
    }
    let total_area_left: f64 = area_left.iter().sum();
    if total_area_left + 1e-6 < w_nonprio {
        return Err(GuessFailure::SmallPlacement);
    }

    Ok(MilpOutcome {
        x: xs,
        y,
        pairs,
        joint: false,
        nodes: res.nodes,
        lp_iterations: res.lp_iterations,
    })
}

/// Recover `eps^{k+1}` from the transformed instance's job classes.
fn medium_threshold_of(trans: &Transformed) -> f64 {
    // Smallest non-small rounded size is >= eps^{k+1}; in its absence use
    // T (the threshold is only used for the optional constraint (7)).
    (0..trans.tinst.num_jobs())
        .filter(|&j| trans.tclass[j] != JobClass::Small)
        .map(|j| trans.tinst.size(JobId(j as u32)))
        .fold(trans.t, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::pattern::enumerate_patterns;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn pipeline(
        jobs: &[(f64, u32)],
        m: usize,
        cfg: &EptasConfig,
    ) -> (Transformed, PatternSet, Result<MilpOutcome, GuessFailure>) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, cfg.epsilon).unwrap();
        let c = classify(&r, m);
        let p = select_priority(&inst, &r, &c, cfg);
        let t = transform(&inst, &r, &c, &p);
        let ps = enumerate_patterns(&t, cfg.max_patterns).unwrap();
        let out = solve_with_patterns(&t, &ps, cfg, &mut Stats::default());
        (t, ps, out)
    }

    #[test]
    fn feasible_guess_covers_all_slots() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1), (0.4, 2), (0.05, 0), (0.05, 3)];
        let (t, ps, out) = pipeline(&jobs, 3, &cfg);
        let out = out.expect("guess T covers this instance");
        assert!(out.joint, "small model must take the joint path");
        // (1): machines.
        let total: u32 = out.x.iter().sum();
        assert!(total as usize <= t.tinst.num_machines());
        // (2): every symbol exactly covered.
        for (si, sym) in ps.symbols.iter().enumerate() {
            let covered: u32 = ps
                .patterns
                .iter()
                .enumerate()
                .map(|(p, pat)| {
                    pat.entries
                        .iter()
                        .find(|&&(s, _)| s == si)
                        .map_or(0, |&(_, mult)| out.x[p] * mult as u32)
                })
                .sum();
            assert_eq!(covered, sym.avail, "symbol {si} mis-covered");
        }
        // (3): y sums to counts.
        for (i, pair) in out.pairs.iter().enumerate() {
            let sum: f64 = (0..ps.patterns.len()).filter_map(|p| out.y.get(&(i, p))).sum();
            assert!(
                (sum - pair.jobs.len() as f64).abs() < 1e-6,
                "pair {i}: y sums to {sum}, want {}",
                pair.jobs.len()
            );
        }
    }

    #[test]
    fn infeasible_guess_detected() {
        // Five unit jobs on two machines: each pattern holds at most two
        // slots of size ~1 (T = 2.25), so two machines cover at most four.
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3), (1.0, 4)];
        let (_, _, out) = pipeline(&jobs, 2, &cfg);
        assert_eq!(out.unwrap_err(), GuessFailure::MilpInfeasible);
    }

    #[test]
    fn two_stage_path_triggers_on_tiny_budget() {
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.joint_col_budget = 1; // force the two-stage path
        let jobs = [(0.9, 0), (0.9, 1), (0.05, 0), (0.05, 1)];
        let (_, _, out) = pipeline(&jobs, 2, &cfg);
        let out = out.expect("two-stage path should also succeed here");
        assert!(!out.joint);
        // y still covers all priority small jobs.
        for (i, pair) in out.pairs.iter().enumerate() {
            let sum: f64 = out.y.iter().filter(|((pi, _), _)| *pi == i).map(|(_, &v)| v).sum();
            assert!((sum - pair.jobs.len() as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn y_respects_chi_exclusion() {
        let cfg = EptasConfig::with_epsilon(0.5);
        // Priority bag 0 has a large job and small jobs: no y of bag 0 may
        // sit on a pattern containing bag 0's large slot.
        let jobs = [(0.9, 0), (0.05, 0), (0.05, 0), (0.9, 1)];
        let (_, ps, out) = pipeline(&jobs, 3, &cfg);
        let out = out.unwrap();
        for ((i, p), &v) in &out.y {
            if v > 1e-9 {
                assert!(
                    !ps.chi(*p, out.pairs[*i].tbag),
                    "y of bag {:?} placed on conflicting pattern {p}",
                    out.pairs[*i].tbag
                );
            }
        }
    }

    #[test]
    fn area_constraint_respected() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1), (0.05, 2), (0.05, 3), (0.05, 4)];
        let (t, ps, out) = pipeline(&jobs, 2, &cfg);
        let out = out.unwrap();
        // Reconstruct per-pattern small load and check (4) in aggregate:
        // priority y-load must fit in the x-weighted free area.
        for p in 0..ps.patterns.len() {
            let yload: f64 = out
                .y
                .iter()
                .filter(|((_, pp), _)| *pp == p)
                .map(|((i, _), &v)| v * out.pairs[*i].size)
                .sum();
            let budget = out.x[p] as f64 * (t.t - ps.patterns[p].height);
            assert!(yload <= budget + 1e-6, "pattern {p}: {yload} > {budget}");
        }
    }

    #[test]
    fn small_pairs_extraction() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let inst = Instance::new(&[(0.9, 0), (0.05, 0), (0.05, 0), (0.01, 0)], 2);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 2);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let pairs = priority_small_pairs(&t);
        // Bag 0 is priority (has the only large job); two small sizes.
        let total_jobs: usize = pairs.iter().map(|p| p.jobs.len()).sum();
        assert_eq!(total_jobs, 3);
        // Sorted by size descending.
        for w in pairs.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
    }
}
