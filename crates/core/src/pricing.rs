//! Column generation for the pattern LP: the pricing subsystem.
//!
//! The configuration MILP does not require materializing every machine
//! pattern (Definition 3) up front — which is exactly what blows the
//! enumeration budget on tight clustered instances. Instead, a *master
//! LP* over a small pool of patterns is solved and new columns are priced
//! in against its duals until no pattern has negative reduced cost:
//!
//! * **master rows:** the machine-count cap (constraint (1)), one
//!   covering equality per slot symbol (constraint (2)), and an aggregate
//!   small-area cut (the x-projection of constraint (4)), so guesses
//!   without room for the small jobs are refuted here instead of by an
//!   eager-enumeration fallback;
//! * **pricing oracle:** the max-reduced-cost pattern is a bounded
//!   knapsack over symbol multiplicities — DFS in density order with a
//!   fractional upper bound, the one-slot-per-priority-bag rule, and
//!   canonical-form dedup (symbols of symmetric priority bags may only be
//!   used as a prefix of their equivalence class, so bag-symmetric
//!   patterns are priced once);
//! * **two phases:** a feasibility phase minimizes two artificial
//!   overflow variables (machine overflow and area shortfall). Because
//!   the seed pool holds a singleton pattern per symbol, the feasibility
//!   master is structurally feasible, and converging with positive
//!   overflow *proves* that no pattern multiset — enumerated or not —
//!   satisfies rows (1), (2) and the area cut: the guess is infeasible.
//!   An optimality phase then minimizes the machine count to enrich the
//!   pool around the LP optimum before the integral MILP runs on it.
//!
//! The pool is seeded with the empty pattern, one singleton per symbol,
//! and LPT-packed patterns; it typically converges after a few dozen
//! pricing rounds with orders of magnitude fewer patterns than eager
//! enumeration. Every master solve is counted in [`Stats::lp_solves`]
//! (where it diverges from `milp_nodes`), every round in
//! [`Stats::pricing_rounds`], every DFS node in
//! [`Stats::pricing_dfs_nodes`], and every priced column in
//! [`Stats::columns_generated`].

use crate::classes::BagClasses;
use crate::classify::JobClass;
use crate::config::EptasConfig;
use crate::par::{run_indexed, CancelToken};
use crate::pattern::{Pattern, SlotBag, Symbol};
use crate::report::Stats;
use crate::transform::Transformed;
use bagsched_milp::{LpResult, LpStatus, Model, Relation, VarId, WarmState};
use bagsched_types::{obs, JobId};
use std::collections::{HashMap, HashSet};

/// Outcome of the column-generation loop.
#[derive(Debug)]
pub enum Pricing {
    /// A pool whose LP relaxation matches the full pattern LP (pricing
    /// converged with zero overflow). `patterns[0]` is the empty pattern.
    Converged(Vec<Pattern>),
    /// The master LP — a relaxation of the configuration MILP over *all*
    /// patterns — is infeasible: no schedule of height `T` exists.
    Infeasible,
    /// A round or DFS-node budget was exhausted before convergence; the
    /// caller falls back to eager enumeration.
    Stalled,
    /// The cancellation token tripped between rounds: the solve is being
    /// abandoned (speculation loser or deadline). Unlike [`Stalled`]
    /// this must *not* fall back to eager enumeration — the caller
    /// unwinds as [`GuessFailure::Cancelled`].
    ///
    /// [`Stalled`]: Pricing::Stalled
    /// [`GuessFailure::Cancelled`]: crate::report::GuessFailure::Cancelled
    Cancelled,
}

/// Columns added per pricing round: the DFS collects the top-K improving
/// leaves rather than only the single best, to cut master re-solves.
/// Warm starts make extra re-solves cheap while every admitted column
/// permanently widens the dense tableau, so a small K beats the old 16
/// (measured on n=400 tight clustered: ~20% fewer total pivots).
const COLS_PER_ROUND: usize = 4;

/// Warm-started master re-solves accumulate floating-point drift in the
/// reused basis; a periodic cold refresh bounds it (the revised engine
/// additionally refactorizes every [`EptasConfig::refactor_interval`]
/// pivots *within* a solve).
const WARM_REFRESH_EVERY: usize = 32;

/// Consecutive feasibility-master re-solves a nonbasic column must price
/// above [`EptasConfig::column_purge_threshold`] before it is purged.
const PURGE_PATIENCE: u32 = 3;

/// Canonical identity of a pattern: its sorted `(symbol, multiplicity)`
/// entries.
pub(crate) type PatternKey = Vec<(usize, u16)>;

/// The master-LP solver state threaded through the pricing rounds: the
/// warm-start basis plus the pivot count of the last cold solve (the
/// baseline that [`Stats::warm_start_pivots_saved`] is estimated
/// against).
struct Master {
    warm: Option<WarmState>,
    last_cold_pivots: u64,
    solves_since_refresh: usize,
}

impl Master {
    fn new() -> Self {
        Master { warm: None, last_cold_pivots: 0, solves_since_refresh: 0 }
    }

    /// Drop the warm basis (phase transitions change variable bounds,
    /// which the warm tableau cannot absorb).
    fn invalidate(&mut self) {
        self.warm = None;
        self.solves_since_refresh = 0;
    }

    /// One master solve: warm when enabled and a basis is available,
    /// cold otherwise, with a periodic cold refresh for numerical
    /// hygiene. Counts pivots/solves and the warm-start saving estimate.
    fn solve(&mut self, model: &Model, cfg: &EptasConfig, stats: &mut Stats) -> LpResult {
        let _span = obs::Span::enter("pricing.master_lp");
        stats.lp_solves += 1;
        if !cfg.warm_start {
            let lp = model.solve_lp();
            stats.simplex_pivots += lp.iterations as u64;
            stats.basis_refactorizations += lp.refactorizations as u64;
            stats.eta_updates += lp.eta_updates as u64;
            return lp;
        }
        self.solves_since_refresh += 1;
        if self.solves_since_refresh >= WARM_REFRESH_EVERY {
            self.invalidate();
            self.solves_since_refresh = 1;
        }
        let (lp, was_warm) = model.solve_lp_with(&mut self.warm);
        stats.simplex_pivots += lp.iterations as u64;
        stats.basis_refactorizations += lp.refactorizations as u64;
        stats.eta_updates += lp.eta_updates as u64;
        if was_warm {
            // A cold re-solve would have paid roughly what the last cold
            // solve of this master did; the warm basis skips most of it.
            stats.warm_start_pivots_saved +=
                self.last_cold_pivots.saturating_sub(lp.iterations as u64);
        } else {
            self.last_cold_pivots = lp.iterations as u64;
        }
        lp
    }
}

/// Run the generate→solve→price loop for one guess. `symbols` must be
/// keyed consistently with `classes` (see
/// [`crate::pattern::collect_symbols_classed`]); per-bag pricing is the
/// singleton-classes special case.
pub fn generate_columns(
    trans: &Transformed,
    symbols: &[Symbol],
    classes: &BagClasses,
    cfg: &EptasConfig,
    stats: &mut Stats,
    cancel: Option<&CancelToken>,
) -> Pricing {
    // Safety valve on the master size: on the per-bag path the row count
    // is the symbol count (the pre-aggregation gate, byte-for-byte);
    // classed symbols are already collapsed, so the aggregated path is
    // gated on its class count instead — the quantity that stays small
    // when thousands of per-bag symbols share a few profiles. Past the
    // budget the dense-tableau simplex dominates everything pricing
    // saves: declare a stall so the caller takes the eager path (which
    // degrades exactly like the pre-pricing pipeline on these extreme
    // instances).
    let master_size = if classes.all_singletons() { symbols.len() } else { classes.num_classes() };
    if master_size > cfg.pricing_symbol_budget {
        return Pricing::Stalled;
    }
    let m = trans.tinst.num_machines() as f64;
    let t = trans.t;
    let small_area: f64 = (0..trans.tinst.num_jobs())
        .filter(|&j| trans.tclass[j] == JobClass::Small)
        .map(|j| trans.tinst.size(JobId(j as u32)))
        .sum();

    let mut pool = seed_pool(trans, symbols, classes);
    stats.patterns_enumerated += pool.len() as u64;
    let mut keys: HashSet<PatternKey> = pool.iter().map(|p| p.entries.clone()).collect();

    // Master model. Rows: 0 = machines (1), 1..=S = symbol coverings (2),
    // S+1 = aggregate small area. The overflow variables make the
    // feasibility phase structurally feasible together with the singleton
    // seed columns. Priced columns are appended in place via
    // `Model::add_column`; the model is never rebuilt.
    let area_row = symbols.len() + 1;
    let mut model = Model::new();
    model.set_refactor_interval(cfg.refactor_interval);
    let z_machines = model.add_var(1.0, 0.0, f64::INFINITY);
    let z_area = model.add_var(1.0, 0.0, f64::INFINITY);
    model.add_con(&[(z_machines, -1.0)], Relation::Le, m);
    for sym in symbols {
        model.add_con(&[], Relation::Eq, sym.avail as f64);
    }
    model.add_con(&[(z_area, 1.0)], Relation::Ge, small_area);
    // Master column lifecycle: `cols[i]` is pattern `i`'s current model
    // variable, `None` while purged (the pattern itself never leaves the
    // pool or the dedup key set, so pricing cannot re-propose it and the
    // re-admission guard can bring it back). `streak[i]` counts the
    // consecutive re-solves it spent nonbasic above the purge threshold.
    let mut cols: Vec<Option<VarId>> = Vec::with_capacity(pool.len());
    for pat in &pool {
        cols.push(Some(add_pattern_column(&mut model, pat, area_row, t, 0.0)));
    }
    let mut streak: Vec<u32> = vec![0; pool.len()];

    let mut rounds = 0usize;
    let mut master = Master::new();
    let px = PriceCtx { symbols, classes, t };

    // ---- Phase A: feasibility (minimize the overflow). ----
    loop {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Pricing::Cancelled;
        }
        let mut lp = master.solve(&model, cfg, stats);
        // Re-admission guard: a purged column that prices negative under
        // the new duals would make this optimum under-informed (the purge
        // is a restriction, not a relaxation). Re-admit and re-solve to a
        // fixpoint, so every optimum acted on below — the overflow test,
        // the purge decision, the pricing round — is optimal over the
        // *full* pool, exactly as if no column had ever been purged.
        while lp.status == LpStatus::Optimal {
            let mut readmitted = false;
            for i in 0..pool.len() {
                if cols[i].is_some() {
                    continue;
                }
                if pattern_rc(&pool[i], &lp.duals, area_row, t, 0.0) < -1e-7 {
                    cols[i] = Some(add_pattern_column(&mut model, &pool[i], area_row, t, 0.0));
                    streak[i] = 0;
                    stats.columns_readmitted += 1;
                    readmitted = true;
                }
            }
            if !readmitted {
                break;
            }
            lp = master.solve(&model, cfg, stats);
        }
        if lp.status != LpStatus::Optimal {
            // The overflow variables make the master feasible and the
            // objective nonnegative; anything else is numerical distress.
            return Pricing::Stalled;
        }
        let overflow = lp.x[z_machines.0] + lp.x[z_area.0];
        if overflow <= 1e-7 {
            break;
        }
        if rounds >= cfg.pricing_max_rounds {
            return Pricing::Stalled;
        }
        // Purge decision: a nonbasic column priced above the threshold for
        // PURGE_PATIENCE consecutive re-solves is physically removed from
        // the master (pattern and key stay pooled; the guard above
        // re-admits it if it ever prices negative again). The empty
        // pattern and the singleton seeds are exempt — they are the
        // structural-feasibility floor the final pruning also preserves.
        if cfg.column_purge_threshold.is_finite() {
            let mut victims: Vec<VarId> = Vec::new();
            let mut victim_idx: Vec<usize> = Vec::new();
            for i in 0..pool.len() {
                let Some(v) = cols[i] else { continue };
                if pool[i].is_empty() || pool[i].num_slots() == 1 {
                    continue;
                }
                let rc = pattern_rc(&pool[i], &lp.duals, area_row, t, 0.0);
                if lp.x[v.0] <= 1e-9 && rc > cfg.column_purge_threshold {
                    streak[i] += 1;
                    if streak[i] >= PURGE_PATIENCE {
                        victims.push(v);
                        victim_idx.push(i);
                    }
                } else {
                    streak[i] = 0;
                }
            }
            if !victims.is_empty()
                && bagsched_milp::purge_columns(&mut model, master.warm.as_mut(), &victims)
            {
                stats.columns_purged += victims.len() as u64;
                for &i in &victim_idx {
                    cols[i] = None;
                }
                // Surviving variables shift down past the purged ones.
                for c in cols.iter_mut().flatten() {
                    c.0 -= victims.iter().filter(|w| w.0 < c.0).count();
                }
            }
            // Reset the victims' streaks either way: on a refused purge
            // (a degenerate basic victim) retrying next solve is fine,
            // but hot-looping on the same set every solve is not.
            for &i in &victim_idx {
                streak[i] = 0;
            }
        }
        rounds += 1;
        stats.pricing_rounds += 1;
        let (cands, complete) = price(&px, &lp.duals, 0.0, cfg, stats, &keys);
        if cands.is_empty() {
            // With an exhaustive pricing round, "no improving column"
            // certifies the master optimum equals the full-pattern
            // optimum *up to the pricing tolerance* (each skipped column
            // improves by at most 1e-7). Only an overflow clearly above
            // that slack is an infeasibility proof — real infeasibilities
            // are of integral size (a job or machine unit of the scaled
            // instance). A hair-above-zero overflow is numerical noise:
            // stall to the eager oracle instead of refuting the guess.
            return if complete && overflow > 1e-4 {
                Pricing::Infeasible
            } else {
                Pricing::Stalled
            };
        }
        for pat in cands {
            keys.insert(pat.entries.clone());
            cols.push(Some(add_pattern_column(&mut model, &pat, area_row, t, 0.0)));
            streak.push(0);
            pool.push(pat);
            stats.columns_generated += 1;
        }
    }

    // ---- Phase B: minimize machines used to enrich the pool. ----
    // The overflow variables pin to zero and the pattern columns take the
    // machine-count objective. The mutation is by `VarId`, so it applies
    // to the purge-compacted model exactly as to an untouched one, and
    // columns purged in phase A stay out — the phase-B re-admission
    // guard brings any of them back the moment it prices negative under
    // the new objective's duals. Streaks reset: a reduced cost under the
    // feasibility objective says nothing about the machine-count one.
    model.set_bounds(z_machines, 0.0, 0.0);
    model.set_bounds(z_area, 0.0, 0.0);
    model.set_obj(z_machines, 0.0);
    model.set_obj(z_area, 0.0);
    for (i, c) in cols.iter().enumerate() {
        if let Some(v) = c {
            model.set_obj(*v, if pool[i].is_empty() { 0.0 } else { 1.0 });
        }
    }
    streak.iter_mut().for_each(|s| *s = 0);
    // The bound flip on the overflow variables invalidates the warm
    // basis (their bound rows change shape); phase B cold-starts once and
    // then warm-starts its own re-solves.
    master.invalidate();
    // Every exit below happens right after a master solve of the final,
    // unmodified model, so the last LP doubles as the pruning input.
    let final_lp;
    // On *wide* masters enrichment is capped, not run to convergence:
    // late rounds trade dust-sized master improvements for ever-wider
    // dense tableaus (each admitted column raises the per-pivot cost of
    // every later re-solve — the classic column-generation tailing-off,
    // measured at >90% of the n=1600 tight cell when enrichment ran to
    // `pricing_max_rounds`). The pool is feasibility-complete either
    // way, and a column the integral search turns out to miss is priced
    // *in the tree* ([`TreePriceDriver`]) instead of speculatively at
    // the root. Narrow masters — where a round costs microseconds and a
    // leaner pool can push the downstream MILP onto a worse path (a
    // smaller pool flips the joint/two-stage size estimate) — enrich to
    // natural convergence exactly as before the cap existed.
    let enrich_capped = pool.len() > cfg.pricing_symbol_budget;
    let mut enrich_rounds = 0usize;
    loop {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Pricing::Cancelled;
        }
        let mut lp = master.solve(&model, cfg, stats);
        // Same re-admission guard as phase A, against the machine-count
        // objective (purged columns are never the empty seed, so their
        // coefficient is 1). Every exit from this loop — and hence the
        // pruning below — therefore sees a full-pool optimum.
        while lp.status == LpStatus::Optimal {
            let mut readmitted = false;
            for i in 0..pool.len() {
                if cols[i].is_some() {
                    continue;
                }
                if pattern_rc(&pool[i], &lp.duals, area_row, t, 1.0) < -1e-7 {
                    cols[i] = Some(add_pattern_column(&mut model, &pool[i], area_row, t, 1.0));
                    streak[i] = 0;
                    stats.columns_readmitted += 1;
                    readmitted = true;
                }
            }
            if !readmitted {
                break;
            }
            lp = master.solve(&model, cfg, stats);
        }
        if lp.status != LpStatus::Optimal
            || rounds >= cfg.pricing_max_rounds
            || (enrich_capped && enrich_rounds >= cfg.pricing_enrich_rounds)
        {
            // Stopping the optimality phase early is always safe; it
            // only bounds the enrichment.
            final_lp = lp;
            break;
        }
        enrich_rounds += 1;
        rounds += 1;
        stats.pricing_rounds += 1;
        let (cands, _) = price(&px, &lp.duals, 1.0, cfg, stats, &keys);
        if cands.is_empty() {
            final_lp = lp;
            break;
        }
        // Purge decision, mirroring phase A against the machine-count
        // objective. Deliberately *after* the exits above: purging remaps
        // surviving `VarId`s, so it must never sit between computing an
        // optimum and exiting with it (`final_lp.x` is indexed by the
        // live column ids).
        if cfg.column_purge_threshold.is_finite() {
            let mut victims: Vec<VarId> = Vec::new();
            let mut victim_idx: Vec<usize> = Vec::new();
            for i in 0..pool.len() {
                let Some(v) = cols[i] else { continue };
                if pool[i].is_empty() || pool[i].num_slots() == 1 {
                    continue;
                }
                let rc = pattern_rc(&pool[i], &lp.duals, area_row, t, 1.0);
                if lp.x[v.0] <= 1e-9 && rc > cfg.column_purge_threshold {
                    streak[i] += 1;
                    if streak[i] >= PURGE_PATIENCE {
                        victims.push(v);
                        victim_idx.push(i);
                    }
                } else {
                    streak[i] = 0;
                }
            }
            if !victims.is_empty()
                && bagsched_milp::purge_columns(&mut model, master.warm.as_mut(), &victims)
            {
                stats.columns_purged += victims.len() as u64;
                for &i in &victim_idx {
                    cols[i] = None;
                }
                for c in cols.iter_mut().flatten() {
                    c.0 -= victims.iter().filter(|w| w.0 < c.0).count();
                }
            }
            for &i in &victim_idx {
                streak[i] = 0;
            }
        }
        for pat in cands {
            keys.insert(pat.entries.clone());
            cols.push(Some(add_pattern_column(&mut model, &pat, area_row, t, 1.0)));
            streak.push(0);
            pool.push(pat);
            stats.columns_generated += 1;
        }
    }

    // ---- Final pruning: the restricted MILP pays per column. ----
    // On large instances the converged pool carries hundreds of columns
    // that the master's optimum never uses; every one of them widens the
    // dense tableau of *each* branch-and-bound node LP downstream. Keep
    // the LP support (the columns that matter), the empty pattern and
    // the singleton seeds (structural feasibility); drop the rest. Small
    // pools are passed through untouched — pre-aggregation behaviour.
    if pool.len() > cfg.pricing_pool_cap && final_lp.status == LpStatus::Optimal {
        // A column still purged at exit is nonbasic by construction (the
        // guard would have re-admitted a useful one), so it falls to the
        // same support filter as an in-model column at zero.
        let pruned: Vec<Pattern> = pool
            .iter()
            .zip(&cols)
            .filter(|&(pat, c)| {
                pat.is_empty() || pat.num_slots() == 1 || c.is_some_and(|v| final_lp.x[v.0] > 1e-9)
            })
            .map(|(pat, _)| pat.clone())
            .collect();
        return Pricing::Converged(pruned);
    }
    Pricing::Converged(pool)
}

/// Reduced cost of `pat`'s master column (objective coefficient `obj`)
/// under row duals laid out `[machine, symbols..., area]` — the mirror of
/// [`add_pattern_column`], used by the column lifecycle.
fn pattern_rc(pat: &Pattern, duals: &[f64], area_row: usize, t: f64, obj: f64) -> f64 {
    let mut rc = obj - duals[0] - duals[area_row] * (t - pat.height);
    for &(s, mult) in &pat.entries {
        rc -= duals[1 + s] * mult as f64;
    }
    rc
}

/// Append one pattern column to the master: coefficient 1 in the machine
/// row, its multiplicities in the symbol rows, and its free area
/// `T - height` in the area row.
fn add_pattern_column(
    model: &mut Model,
    pat: &Pattern,
    area_row: usize,
    t: f64,
    obj: f64,
) -> VarId {
    let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(pat.entries.len() + 2);
    coeffs.push((0, 1.0));
    for &(s, mult) in &pat.entries {
        coeffs.push((1 + s, mult as f64));
    }
    coeffs.push((area_row, t - pat.height));
    model.add_column(obj, 0.0, f64::INFINITY, &coeffs)
}

/// The heuristic seed pool: the empty pattern (index 0, as the MILP layer
/// expects), one singleton per symbol (these make the feasibility master
/// structurally feasible), and the patterns of an LPT packing of the
/// non-small transformed jobs. The packing places concrete jobs, so the
/// one-job-per-bag rule per machine automatically respects the class
/// multiplicity caps of aggregated symbols.
fn seed_pool(trans: &Transformed, symbols: &[Symbol], classes: &BagClasses) -> Vec<Pattern> {
    let t = trans.t;
    let mut pool = vec![Pattern { entries: Vec::new(), height: 0.0 }];
    for (s, sym) in symbols.iter().enumerate() {
        if sym.size <= t + 1e-9 {
            pool.push(Pattern { entries: vec![(s, 1)], height: sym.size });
        }
    }

    // Symbol lookup for the LPT packing (priority bags key by class rep).
    let mut sym_index: HashMap<(crate::rounding::SizeExp, SlotBag), usize> = HashMap::new();
    for (s, sym) in symbols.iter().enumerate() {
        sym_index.insert((sym.exp, sym.bag), s);
    }
    let mut jobs: Vec<usize> =
        (0..trans.tinst.num_jobs()).filter(|&j| trans.tclass[j] != JobClass::Small).collect();
    jobs.sort_by(|&a, &b| {
        trans
            .tinst
            .size(JobId(b as u32))
            .total_cmp(&trans.tinst.size(JobId(a as u32)))
            .then(a.cmp(&b))
    });
    let m = trans.tinst.num_machines();
    let mut height = vec![0.0f64; m];
    let mut counts: Vec<HashMap<usize, u16>> = vec![HashMap::new(); m];
    let mut bag_used: Vec<Vec<bool>> = vec![vec![false; trans.tinst.num_bags()]; m];
    for j in jobs {
        let tbag = trans.tinst.bag_of(JobId(j as u32));
        let bag = if trans.is_priority_tbag[tbag.idx()] {
            SlotBag::Priority(classes.rep(classes.of(tbag).expect("priority bags are classed")))
        } else {
            SlotBag::X
        };
        let Some(&s) = sym_index.get(&(trans.texp[j], bag)) else { continue };
        let size = symbols[s].size;
        // The conflict check runs on the *concrete* bag: a machine may
        // hold several slots of one class (distinct member bags) but
        // never two jobs of one bag.
        let is_prio = matches!(bag, SlotBag::Priority(_));
        let target = (0..m)
            .filter(|&i| height[i] + size <= t + 1e-9)
            .filter(|&i| !(is_prio && bag_used[i][tbag.idx()]))
            .min_by(|&a, &b| height[a].total_cmp(&height[b]).then(a.cmp(&b)));
        let Some(i) = target else { continue }; // heuristic: skipping is fine
        height[i] += size;
        *counts[i].entry(s).or_insert(0) += 1;
        if is_prio {
            bag_used[i][tbag.idx()] = true;
        }
    }
    let mut seen: HashSet<PatternKey> = pool.iter().map(|p| p.entries.clone()).collect();
    for (i, c) in counts.iter().enumerate() {
        if c.is_empty() {
            continue;
        }
        let mut entries: Vec<(usize, u16)> = c.iter().map(|(&s, &n)| (s, n)).collect();
        entries.sort_unstable();
        if seen.insert(entries.clone()) {
            pool.push(Pattern { entries, height: height[i] });
        }
    }
    pool
}

/// What a row of the restricted configuration MILP means to a *new*
/// pattern column — the layout map the in-tree pricer uses to build
/// column coefficients and to read the master-row duals off a node LP.
/// Rows a new pure-`x` column does not touch (the joint model's per-pair,
/// per-pattern and `chi` rows) are [`MilpRow::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MilpRow {
    /// Constraint (1): the machine-count cap; coefficient 1.
    Machine,
    /// Covering row of symbol `s`; coefficient = the pattern's
    /// multiplicity of `s`.
    Symbol(usize),
    /// An aggregate small-area cut; coefficient `T - height`.
    AreaCut,
    /// Two-stage per-class small-count cut; coefficient = the pattern's
    /// free capacity for the class (member bags without a large slot).
    ClassCount(usize),
    /// Two-stage per-class small-area cut; coefficient `T - height` when
    /// the pattern has free capacity for the class, else absent.
    ClassArea(usize),
    /// A row new pattern columns never touch.
    Other,
}

/// The branch-and-price driver: prices pattern columns *inside* the
/// branch-and-bound tree of the restricted MILP.
///
/// The root pool converges against the master LP's duals, but the
/// integral search explores bound combinations under which different
/// columns matter; a dive can fail only because the pool is missing a
/// pattern the node LP would price in immediately. This driver implements
/// [`bagsched_milp::TreePricer`]: at fractional optimal nodes it re-runs
/// the bounded-knapsack pricing DFS against the *node* duals (machine
/// row, covering rows, area cut — the two-stage class cuts are not
/// modelled in the knapsack profit and make priced columns conservative
/// estimates, which is sound: a non-improving column is dead weight, not
/// an error) and appends improving patterns as integer columns, which the
/// B&B grafts onto the warm node basis. The round cap
/// ([`EptasConfig::tree_pricing_round_cap`]) bounds the total extra work
/// per MILP solve.
pub(crate) struct TreePriceDriver<'a> {
    symbols: &'a [Symbol],
    classes: &'a BagClasses,
    /// Height bound `T`.
    t: f64,
    cfg: &'a EptasConfig,
    /// Per model row: what a new pattern column contributes there.
    rows: Vec<MilpRow>,
    /// Pool + already-priced pattern keys (dedup).
    keys: HashSet<PatternKey>,
    /// Patterns appended to the model, in column order.
    pub new_patterns: Vec<Pattern>,
    /// The model variables of `new_patterns`, in the same order.
    pub new_vars: Vec<VarId>,
    rounds_left: usize,
    /// Local counter accumulation (pricing DFS nodes), merged into the
    /// run stats by the caller after the MILP solve.
    pub stats: Stats,
    /// Continues the x-column objective perturbation (`1 + i * 1e-9`)
    /// past the root pool so priced columns stay symmetry-broken.
    next_obj_index: usize,
}

impl<'a> TreePriceDriver<'a> {
    pub(crate) fn new(
        symbols: &'a [Symbol],
        classes: &'a BagClasses,
        t: f64,
        cfg: &'a EptasConfig,
        rows: Vec<MilpRow>,
        pool: &[Pattern],
    ) -> Self {
        TreePriceDriver {
            symbols,
            classes,
            t,
            cfg,
            rows,
            keys: pool.iter().map(|p| p.entries.clone()).collect(),
            new_patterns: Vec::new(),
            new_vars: Vec::new(),
            rounds_left: cfg.tree_pricing_round_cap,
            stats: Stats::default(),
            next_obj_index: pool.len(),
        }
    }
}

impl bagsched_milp::TreePricer for TreePriceDriver<'_> {
    fn price(&mut self, model: &mut Model, lp: &LpResult) -> Vec<VarId> {
        if self.rounds_left == 0 || lp.duals.len() < self.rows.len() {
            return vec![];
        }
        let _span = obs::Span::enter("pricing.tree");
        self.rounds_left -= 1;
        // Master-row duals in the layout the knapsack DFS expects:
        // `[machine, symbols..., area]`.
        let mut duals = vec![0.0; self.symbols.len() + 2];
        for (r, kind) in self.rows.iter().enumerate() {
            match *kind {
                MilpRow::Machine => duals[0] = lp.duals[r],
                MilpRow::Symbol(s) => duals[1 + s] = lp.duals[r],
                MilpRow::AreaCut => duals[self.symbols.len() + 1] = lp.duals[r],
                _ => {}
            }
        }
        let px = PriceCtx { symbols: self.symbols, classes: self.classes, t: self.t };
        // New x-columns cost ~1 in the restricted MILP.
        let (cands, _) = price(&px, &duals, 1.0, self.cfg, &mut self.stats, &self.keys);
        let mut added = Vec::with_capacity(cands.len());
        for pat in cands {
            // Free member-bag capacity per class (`|C| - mult_C(p)`),
            // from the same rule the MILP builders use.
            let class_mult = pat.class_multiplicities(self.symbols, self.classes);
            let free_cap = |c: usize| (self.classes.size(c) as u32).saturating_sub(class_mult[c]);
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for (r, kind) in self.rows.iter().enumerate() {
                let coef = match *kind {
                    MilpRow::Machine => 1.0,
                    MilpRow::Symbol(s) => pat
                        .entries
                        .iter()
                        .find(|&&(si, _)| si == s)
                        .map_or(0.0, |&(_, mult)| mult as f64),
                    MilpRow::AreaCut => self.t - pat.height,
                    MilpRow::ClassCount(c) => free_cap(c) as f64,
                    MilpRow::ClassArea(c) => {
                        if free_cap(c) > 0 {
                            self.t - pat.height
                        } else {
                            0.0
                        }
                    }
                    MilpRow::Other => 0.0,
                };
                if coef != 0.0 {
                    coeffs.push((r, coef));
                }
            }
            let obj = 1.0 + self.next_obj_index as f64 * 1e-9;
            self.next_obj_index += 1;
            let v = model.add_column(obj, 0.0, f64::INFINITY, &coeffs);
            model.set_integer(v, true);
            self.keys.insert(pat.entries.clone());
            self.new_patterns.push(pat);
            self.new_vars.push(v);
            added.push(v);
        }
        added
    }
}

/// One pricing-DFS item: a symbol with positive effective value under the
/// current duals.
struct PriceItem {
    sym: usize,
    size: f64,
    /// Effective value `y_s - y_area * size_s`.
    value: f64,
    /// `value / size` — the fractional-knapsack bound density.
    density: f64,
    max_mult: u32,
    /// Bag-class index, if priority: the per-pattern slot count of a
    /// class is capped jointly across sizes by the class cardinality
    /// (one slot per member bag — the one-slot-per-bag rule, lifted).
    class: Option<usize>,
    /// Position of the previous item of the same symmetry class; this
    /// item may only be used when that one is (canonical-form dedup).
    twin_prev: Option<usize>,
}

/// The fixed inputs of a pricing round.
struct PriceCtx<'a> {
    symbols: &'a [Symbol],
    classes: &'a BagClasses,
    /// Height bound `T`.
    t: f64,
}

/// Find up to [`COLS_PER_ROUND`] patterns with reduced cost below
/// `-tol` under `duals`, for a column cost of `col_cost` per nonempty
/// pattern. Returns the patterns and whether the search was exhaustive
/// (false once the node budget is hit).
fn price(
    px: &PriceCtx<'_>,
    duals: &[f64],
    col_cost: f64,
    cfg: &EptasConfig,
    stats: &mut Stats,
    pool_keys: &HashSet<PatternKey>,
) -> (Vec<Pattern>, bool) {
    let PriceCtx { symbols, classes, t } = *px;
    let y_machines = duals[0];
    let y_area = duals[duals.len() - 1];
    // rc(p) = col_cost - y_machines - y_area*(T - h(p)) - sum_s y_s*mult_s
    //       = (col_cost - y_machines - y_area*T)
    //         + sum_s (y_area*size_s - y_s) * mult_s,
    // so a pattern improves iff its knapsack profit under the effective
    // values v_s = y_s - y_area*size_s exceeds `needed`.
    let needed = col_cost - y_machines - y_area * t + 1e-7;

    let mut items: Vec<PriceItem> = symbols
        .iter()
        .enumerate()
        .filter_map(|(s, sym)| {
            let value = duals[1 + s] - y_area * sym.size;
            if value <= 1e-12 || sym.size > t + 1e-9 || sym.size <= 1e-12 {
                return None;
            }
            let by_height = (t / sym.size + 1e-9).floor() as u32;
            let class = match sym.bag {
                SlotBag::Priority(rep) => Some(classes.of(rep).expect("symbol reps are classed")),
                SlotBag::X => None,
            };
            let max_mult = match class {
                Some(c) => (classes.size(c) as u32).min(sym.avail).min(by_height),
                None => sym.avail.min(by_height).min(u16::MAX as u32),
            };
            (max_mult > 0).then(|| PriceItem {
                sym: s,
                size: sym.size,
                value,
                density: value / sym.size,
                max_mult,
                class,
                twin_prev: None,
            })
        })
        .collect();
    items.sort_by(|a, b| b.density.total_cmp(&a.density).then(a.sym.cmp(&b.sym)));
    // Symmetry classes: priority symbols of the same size class whose
    // duals agree up to LP tolerance belong to interchangeable
    // (bag-symmetric) bags — swapping one for another changes a pattern's
    // profit by at most the tolerance. Chain each to the previous member
    // of its class so the DFS only explores class *prefixes*: symmetric
    // patterns are priced once instead of C(bags, k) times.
    let mut last_of_exp: HashMap<crate::rounding::SizeExp, usize> = HashMap::new();
    for i in 0..items.len() {
        if items[i].class.is_none() {
            continue;
        }
        let exp = symbols[items[i].sym].exp;
        if let Some(&prev) = last_of_exp.get(&exp) {
            // Equal per-pattern capacity is required on top of equal
            // value: swapping usage between the chained items must always
            // be possible, or the prefix rule would prune patterns with
            // no explored counterpart.
            if (items[prev].value - items[i].value).abs() <= 1e-9
                && items[prev].max_mult == items[i].max_mult
            {
                items[i].twin_prev = Some(prev);
            }
        }
        last_of_exp.insert(exp, i);
    }

    let num_classes = classes.num_classes();
    let class_cap: Vec<u16> = (0..num_classes).map(|c| classes.size(c) as u16).collect();

    // Sharded DFS: shard `s` of `S` explores exactly the patterns whose
    // first used item index is `≡ s (mod S)` (the empty pattern belongs
    // to shard 0), so the shards partition the pattern space and their
    // candidate sets are disjoint by construction. Each shard carries
    // the *full* node budget — sharding never explores less than the
    // single DFS would — and a private top-K threshold, which is exact
    // per shard (a weaker threshold only prunes less). `S = 1` is the
    // classic single DFS, decision for decision.
    let shards = cfg.pricing_shards.max(1);
    let run_shard = |s: usize| {
        // Timed inside the closure so each shard's DFS is attributed to
        // the worker thread that actually ran it.
        let _span = obs::Span::enter("pricing.dfs");
        let mut dfs = PriceDfs {
            items: &items,
            needed,
            budget: cfg.pricing_dfs_node_budget,
            nodes: 0,
            complete: true,
            used: vec![0u16; items.len()],
            class_used: vec![0u16; num_classes],
            class_cap: class_cap.clone(),
            cands: Vec::new(),
            threshold: needed,
            pool_keys,
            shard: s,
            shard_count: shards,
            used_any: false,
        };
        dfs.run(0, t, 0.0);
        (dfs.cands, dfs.complete, dfs.nodes)
    };
    // The thread count only places the shards; the merge below is a
    // deterministic function of the shard results, so output is
    // byte-identical at any `solver_threads`.
    let threads = if shards > 1 { cfg.solver_threads } else { 1 };
    let results = run_indexed(shards, threads, run_shard);
    if shards > 1 {
        stats.pricing_shards_run += shards as u64;
    }
    let total_nodes: usize = results.iter().map(|r| r.2).sum();
    stats.pricing_dfs_nodes += total_nodes.max(1) as u64;
    let complete = results.iter().all(|r| r.1);
    let mut cands: Vec<(f64, PatternKey)> = results.into_iter().flat_map(|r| r.0).collect();

    // Best columns first; key order as a deterministic tiebreak. The
    // shards together may hold up to `S * COLS_PER_ROUND` candidates;
    // the master admits the same per-round column count as the single
    // DFS.
    cands.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    cands.truncate(COLS_PER_ROUND);
    let patterns = cands
        .into_iter()
        .map(|(_, entries)| {
            let height = entries.iter().map(|&(s, c)| symbols[s].size * c as f64).sum();
            Pattern { entries, height }
        })
        .collect();
    (patterns, complete)
}

/// The bounded-knapsack pricing DFS.
struct PriceDfs<'a> {
    items: &'a [PriceItem],
    /// Minimum profit for an improving column.
    needed: f64,
    budget: usize,
    nodes: usize,
    complete: bool,
    /// Multiplicity chosen per item along the current path.
    used: Vec<u16>,
    /// Class slots used along the current path, capped by `class_cap`
    /// (one slot per member bag).
    class_used: Vec<u16>,
    class_cap: Vec<u16>,
    /// Improving leaves found so far: `(profit, canonical entries)`.
    cands: Vec<(f64, PatternKey)>,
    /// Cached pruning threshold: `needed` until the candidate list is
    /// full, then the worst kept profit (see [`PriceDfs::reprice`]).
    threshold: f64,
    pool_keys: &'a HashSet<PatternKey>,
    /// This DFS explores only patterns whose first used item index is
    /// `≡ shard (mod shard_count)`; the empty pattern counts as shard 0.
    /// `(0, 1)` is the unsharded classic DFS.
    shard: usize,
    shard_count: usize,
    /// Whether any item has nonzero multiplicity along the current path
    /// (the shard constraint binds only the *first* used item).
    used_any: bool,
}

impl PriceDfs<'_> {
    /// Recompute the cached threshold after the candidate list changed.
    fn reprice(&mut self) {
        self.threshold = if self.cands.len() < COLS_PER_ROUND {
            self.needed
        } else {
            self.cands.iter().map(|c| c.0).fold(f64::INFINITY, f64::min).max(self.needed)
        };
    }

    /// Fractional-knapsack completion bound (Martello–Toth): the best
    /// profit reachable from item `i` with `cap` height left, ignoring
    /// the bag and symmetry constraints. Items are in density order, so
    /// greedily filling by density is the exact LP bound.
    fn bound(&self, i: usize, mut cap: f64) -> f64 {
        let mut b = 0.0;
        for item in &self.items[i..] {
            if cap <= 1e-12 {
                break;
            }
            let take = (item.max_mult as f64 * item.size).min(cap);
            b += take * item.density;
            cap -= take;
        }
        b
    }

    fn run(&mut self, i: usize, cap: f64, profit: f64) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.complete = false;
            return;
        }
        if i == self.items.len() {
            self.leaf(profit);
            return;
        }
        // No completion from here (including stopping early) can beat the
        // threshold once the fractional bound fails.
        if profit + self.bound(i, cap) <= self.threshold {
            return;
        }
        let item = &self.items[i];
        let by_cap = ((cap + 1e-9) / item.size).floor().max(0.0) as u32;
        let mut max_mult = item.max_mult.min(by_cap);
        if let Some(c) = item.class {
            max_mult = max_mult.min((self.class_cap[c] - self.class_used[c]) as u32);
        }
        if let Some(tp) = item.twin_prev {
            if self.used[tp] == 0 {
                max_mult = 0;
            }
        }
        // Shard constraint: until some item is used, only items of this
        // DFS's residue class may open a pattern (multiplicity 0 always
        // stays allowed — later items of the right residue may still
        // open it).
        if !self.used_any && i % self.shard_count != self.shard {
            max_mult = 0;
        }
        // Dense multiplicities first: good leaves early tighten pruning.
        for mult in (0..=max_mult).rev() {
            self.used[i] = mult as u16;
            if let Some(c) = item.class {
                self.class_used[c] += mult as u16;
            }
            let was_used_any = self.used_any;
            self.used_any = was_used_any || mult > 0;
            self.run(i + 1, cap - mult as f64 * item.size, profit + mult as f64 * item.value);
            self.used_any = was_used_any;
            if let Some(c) = item.class {
                self.class_used[c] -= mult as u16;
            }
            if !self.complete {
                break;
            }
        }
        self.used[i] = 0;
    }

    fn leaf(&mut self, profit: f64) {
        // The all-zero leaf (the empty pattern) belongs to shard 0; it
        // is in every pool anyway, so this only keeps the partition
        // clean.
        if !self.used_any && self.shard != 0 {
            return;
        }
        if profit <= self.threshold {
            return;
        }
        let mut entries: PatternKey = self
            .items
            .iter()
            .zip(&self.used)
            .filter(|(_, &u)| u > 0)
            .map(|(item, &u)| (item.sym, u))
            .collect();
        entries.sort_unstable();
        if self.pool_keys.contains(&entries) || self.cands.iter().any(|c| c.1 == entries) {
            return;
        }
        if self.cands.len() == COLS_PER_ROUND {
            let worst = self
                .cands
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .map(|(i, _)| i)
                .expect("candidate list is full, hence nonempty");
            self.cands[worst] = (profit, entries);
        } else {
            self.cands.push((profit, entries));
        }
        self.reprice();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::pattern::{collect_symbols, enumerate_patterns};
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn transformed(jobs: &[(f64, u32)], m: usize, eps: f64) -> Transformed {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, eps).unwrap();
        let c = classify(&r, m);
        let cfg = EptasConfig::with_epsilon(eps);
        let p = select_priority(&inst, &r, &c, &cfg);
        transform(&inst, &r, &c, &p)
    }

    #[test]
    fn seed_pool_has_empty_and_singletons() {
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.4, 2)], 3, 0.5);
        let symbols = collect_symbols(&t);
        let pool = seed_pool(&t, &symbols, &crate::classes::BagClasses::singletons(&t));
        assert!(pool[0].is_empty());
        for s in 0..symbols.len() {
            assert!(
                pool.iter().any(|p| p.entries == vec![(s, 1)]),
                "missing singleton for symbol {s}"
            );
        }
        // Every seed pattern is valid: height bound and one slot per
        // priority bag.
        for p in &pool {
            assert!(p.height <= t.t + 1e-9);
        }
    }

    #[test]
    fn converges_to_feasible_pool_on_feasible_guess() {
        let t = transformed(&[(0.9, 0), (0.9, 1), (0.4, 2), (0.05, 0), (0.05, 3)], 3, 0.5);
        let symbols = collect_symbols(&t);
        let cfg = EptasConfig::with_epsilon(0.5);
        let mut stats = Stats::default();
        match generate_columns(
            &t,
            &symbols,
            &crate::classes::BagClasses::singletons(&t),
            &cfg,
            &mut stats,
            None,
        ) {
            Pricing::Converged(pool) => {
                assert!(pool[0].is_empty());
                // The pool stays far below eager enumeration on any
                // nontrivial instance and every pattern is valid.
                let full = enumerate_patterns(&t, 100_000).unwrap();
                assert!(pool.len() <= full.patterns.len());
                for p in &pool {
                    assert!(p.height <= t.t + 1e-9, "pattern higher than T");
                }
            }
            other => panic!("expected convergence, got {other:?}"),
        }
        assert!(stats.lp_solves > 0, "master LP solves must be counted");
        assert!(stats.pricing_rounds > 0, "terminal pricing round must be counted");
        assert!(stats.pricing_dfs_nodes > 0);
    }

    #[test]
    fn proves_infeasibility_when_jobs_cannot_fit() {
        // Five unit jobs on two machines at guess 1: every pattern holds
        // at most two unit slots (T = 2.25), so the covering rows need
        // more than two machines — pricing must refute the guess.
        let t = transformed(&[(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3), (1.0, 4)], 2, 0.5);
        let symbols = collect_symbols(&t);
        let cfg = EptasConfig::with_epsilon(0.5);
        let mut stats = Stats::default();
        assert!(matches!(
            generate_columns(
                &t,
                &symbols,
                &crate::classes::BagClasses::singletons(&t),
                &cfg,
                &mut stats,
                None
            ),
            Pricing::Infeasible
        ));
    }

    #[test]
    fn priced_patterns_respect_priority_bag_rule() {
        // Two large jobs of one priority bag: no pattern may hold both.
        let t = transformed(&[(0.9, 0), (0.9, 0), (0.05, 0), (0.9, 1)], 3, 0.5);
        let symbols = collect_symbols(&t);
        let cfg = EptasConfig::with_epsilon(0.5);
        let mut stats = Stats::default();
        let Pricing::Converged(pool) = generate_columns(
            &t,
            &symbols,
            &crate::classes::BagClasses::singletons(&t),
            &cfg,
            &mut stats,
            None,
        ) else {
            panic!("expected convergence");
        };
        for p in &pool {
            let mut bags = Vec::new();
            for &(s, mult) in &p.entries {
                if let SlotBag::Priority(b) = symbols[s].bag {
                    assert_eq!(mult, 1, "priority slot multiplicity must be 1");
                    assert!(!bags.contains(&b), "two slots of one priority bag");
                    bags.push(b);
                }
            }
        }
    }

    #[test]
    fn pool_is_deterministic() {
        let jobs: Vec<(f64, u32)> = (0..14).map(|i| (0.3 + 0.05 * (i % 7) as f64, i)).collect();
        let t = transformed(&jobs, 5, 0.5);
        let symbols = collect_symbols(&t);
        let cfg = EptasConfig::with_epsilon(0.5);
        let run = || {
            let mut stats = Stats::default();
            match generate_columns(
                &t,
                &symbols,
                &crate::classes::BagClasses::singletons(&t),
                &cfg,
                &mut stats,
                None,
            ) {
                Pricing::Converged(pool) => (pool, stats),
                other => panic!("expected convergence, got {other:?}"),
            }
        };
        let (pool_a, stats_a) = run();
        let (pool_b, stats_b) = run();
        assert_eq!(pool_a.len(), pool_b.len());
        for (a, b) in pool_a.iter().zip(&pool_b) {
            assert_eq!(a.entries, b.entries);
        }
        assert_eq!(stats_a, stats_b);
    }
}
