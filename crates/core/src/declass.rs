//! De-classing: mapping class-level pattern solutions back to concrete
//! bags (the inverse of [`crate::classes`] aggregation).
//!
//! The aggregated MILP decides how many machines run each class-keyed
//! pattern; what it deliberately forgets is *which* member bag backs each
//! class slot. De-classing reconstructs that assignment so the placement
//! phases ([`crate::assign_large`], [`crate::small`]) and the validator
//! run on ordinary per-bag patterns and never see aggregation at all.
//!
//! The slot→bag assignment must satisfy two exact constraints:
//!
//! * **one slot per bag per machine** — a machine may hold several slots
//!   of one class, but each needs a *distinct* member bag;
//! * **exact consumption** — across all machines, member bag `b` must
//!   receive exactly `count_b(size)` slots of each size (constraint (2)
//!   holds with equality, and `assign_large` pops job pools dry).
//!
//! Both are delivered by a proper `K`-edge-coloring (`K` = class size) of
//! a bipartite multigraph: machines on the left; on the right each size
//! is split into *subnodes* of exactly `K` slot instances. Machine
//! degrees are at most `K` (the per-pattern class cap), subnode degrees
//! exactly `K`, so König's theorem gives a proper `K`-coloring —
//! colors = member bags. Properness at machine nodes is the
//! one-slot-per-bag rule; every subnode seeing all `K` colors exactly
//! once makes the per-bag size totals come out exact. The coloring is
//! built constructively with Kempe-chain (alternating-path) repairs, in
//! deterministic edge order.
//!
//! Small jobs are then re-realized on the concrete patterns by the same
//! greedy the two-stage path uses; if that fails the guess is reported
//! as inconclusive ([`GuessFailure::SmallPlacement`]) and the driver
//! raises it — exactly like every other budget-type failure.

use crate::classes::BagClasses;
use crate::classify::JobClass;
use crate::milp_model::{
    class_mult_table, greedy_small_y, nonpriority_small_area, priority_small_pairs, ClassCtx,
    MilpOutcome,
};
use crate::pattern::{collect_symbols, Pattern, PatternSet, SlotBag};
use crate::report::{GuessFailure, Stats};
use crate::rounding::SizeExp;
use crate::transform::Transformed;
use std::collections::HashMap;

/// Expand a class-keyed solution into a concrete per-bag `(PatternSet,
/// MilpOutcome)` that the downstream placement phases consume unchanged.
///
/// With *coarse* classes ([`BagClasses::compute_coarse`]) the coloring
/// only realizes each member's per-size class **minimum**; the repair
/// pass (step 3b) re-places the surplus jobs, recording
/// [`Stats::repair_jobs_moved`] / [`Stats::repair_failures`]. Exact
/// classes have zero surplus, so the pass is a no-op there.
pub fn declass(
    trans: &Transformed,
    classes: &BagClasses,
    ps: &PatternSet,
    out: &MilpOutcome,
    stats: &mut Stats,
) -> Result<(PatternSet, MilpOutcome), GuessFailure> {
    let _span = bagsched_types::obs::Span::enter("declass");
    // ---- 1. Expand x into machines (assign_large's expansion order). ----
    let mut machine_agg: Vec<usize> = Vec::new();
    for (p, &count) in out.x.iter().enumerate() {
        if p == 0 {
            continue;
        }
        for _ in 0..count {
            machine_agg.push(p);
        }
    }

    // ---- 2. Per-machine symbol multisets, with surplus trimmed. ----
    // The aggregated MILP covers with `>=` (see `solve_with_patterns_classed`),
    // so machines may carry more slots of a symbol than jobs exist.
    // Dropping a slot from a machine yields a sub-multiset of its
    // pattern — still a valid pattern (height only shrinks, the class
    // cap only loosens) — so trim the surplus here, walking machines in
    // reverse expansion order, until every symbol is covered exactly.
    let mut machine_syms: Vec<Vec<(usize, u16)>> =
        machine_agg.iter().map(|&p| ps.patterns[p].entries.clone()).collect();
    let mut covered = vec![0u64; ps.symbols.len()];
    for entries in &machine_syms {
        for &(s, mult) in entries {
            covered[s] += mult as u64;
        }
    }
    for (s, sym) in ps.symbols.iter().enumerate() {
        // An under-covering `x` (a tolerance artifact of the aggregated
        // MILP) is a per-guess failure, not a panic: the caller retries
        // the guess on the per-bag path.
        if covered[s] < sym.avail as u64 {
            return Err(GuessFailure::LargePlacement);
        }
        let mut surplus = covered[s] - sym.avail as u64;
        for entries in machine_syms.iter_mut().rev() {
            if surplus == 0 {
                break;
            }
            if let Some(pos) = entries.iter().position(|&(si, _)| si == s) {
                let take = surplus.min(entries[pos].1 as u64) as u16;
                entries[pos].1 -= take;
                surplus -= take as u64;
                if entries[pos].1 == 0 {
                    entries.remove(pos);
                }
            }
        }
        if surplus != 0 {
            return Err(GuessFailure::LargePlacement);
        }
    }

    // ---- 2b. Per class: collect slot instances per machine. ----
    let nclasses = classes.num_classes();
    // Per class, per machine index: the slot sizes, in symbol order.
    let mut slots: Vec<Vec<(usize, Vec<SizeExp>)>> = vec![Vec::new(); nclasses];
    for (mi, entries) in machine_syms.iter().enumerate() {
        for &(si, mult) in entries {
            if let SlotBag::Priority(rep) = ps.symbols[si].bag {
                let Some(c) = classes.of(rep) else {
                    return Err(GuessFailure::LargePlacement);
                };
                if slots[c].last().map(|&(m, _)| m) != Some(mi) {
                    slots[c].push((mi, Vec::new()));
                }
                if let Some((_, exps)) = slots[c].last_mut() {
                    for _ in 0..mult {
                        exps.push(ps.symbols[si].exp);
                    }
                }
            }
        }
    }

    // ---- 3. Color each class: slot -> member bag. ----
    // assigned[machine] collects (exp, concrete bag) pairs.
    let mut assigned: Vec<Vec<(SizeExp, bagsched_types::BagId)>> =
        vec![Vec::new(); machine_agg.len()];
    for (c, class_slots) in slots.iter().enumerate() {
        if class_slots.is_empty() {
            continue;
        }
        let k = classes.size(c);
        let Some(colors) = color_class(class_slots, k) else {
            // A machine carrying more slots of one class than the class
            // has members: the coloring premise is violated, the guess is
            // unplaceable as de-classed.
            return Err(GuessFailure::LargePlacement);
        };
        for ((mi, exps), cols) in class_slots.iter().zip(&colors) {
            for (&exp, &col) in exps.iter().zip(cols) {
                assigned[*mi].push((exp, classes.members[c][col]));
            }
        }
    }

    // ---- 3b. Repair: re-place each member bag's surplus jobs. ----
    // Coarse classes price against `K * min` slots per size
    // ([`crate::pattern::collect_symbols_coarse`]), so after trimming the
    // coloring hands every member exactly the class minimum — a member's
    // jobs above the minimum hold no slot yet. A pattern extended by a
    // slot is still a pattern while the height bound and the
    // one-slot-per-bag rule hold (the mirror image of the surplus
    // trimming above), so place each surplus job greedily on the lowest
    // machine whose pattern does not touch its bag, opening idle
    // machines up to `m` when every busy one is full. Exact classes have
    // zero surplus and skip the pass; any unplaceable job fails the
    // guess (`LargePlacement`), never mis-schedules.
    let epsilon = trans.t.sqrt() - 1.0;
    let mut actual: HashMap<(bagsched_types::BagId, SizeExp), u32> = HashMap::new();
    for j in 0..trans.tinst.num_jobs() {
        if trans.tclass[j] == JobClass::Small {
            continue;
        }
        let b = trans.tinst.bag_of(bagsched_types::JobId(j as u32));
        if trans.is_priority_tbag[b.idx()] {
            *actual.entry((b, trans.texp[j])).or_insert(0) += 1;
        }
    }
    let mut placed: HashMap<(bagsched_types::BagId, SizeExp), u32> = HashMap::new();
    for slots in &assigned {
        for &(exp, b) in slots {
            *placed.entry((b, exp)).or_insert(0) += 1;
        }
    }
    let mut surplus: Vec<(f64, bagsched_types::BagId, SizeExp, u32)> = Vec::new();
    for (&(b, exp), &need) in &actual {
        let have = placed.get(&(b, exp)).copied().unwrap_or(0);
        if have > need {
            // More slots than the bag has jobs: the class-level
            // availability disagreed with the instance.
            stats.repair_failures += 1;
            return Err(GuessFailure::LargePlacement);
        }
        if have < need {
            surplus.push((crate::rounding::exp_size(exp, epsilon), b, exp, need - have));
        }
    }
    if !surplus.is_empty() {
        let _span = bagsched_types::obs::Span::enter("declass.repair");
        // Deterministic greedy: big jobs first, then bag id, then size
        // exponent, each onto the lowest (then lowest-indexed) machine.
        surplus.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut heights: Vec<f64> = machine_syms
            .iter()
            .map(|entries| entries.iter().map(|&(s, mult)| ps.symbols[s].size * mult as f64).sum())
            .collect();
        let mut bags_on: Vec<Vec<bagsched_types::BagId>> =
            assigned.iter().map(|slots| slots.iter().map(|&(_, b)| b).collect()).collect();
        let m = trans.tinst.num_machines();
        for (size, b, exp, count) in surplus {
            for _ in 0..count {
                let target = (0..machine_syms.len())
                    .filter(|&mi| !bags_on[mi].contains(&b))
                    .filter(|&mi| heights[mi] + size <= trans.t + 1e-9)
                    .min_by(|&x, &y| heights[x].total_cmp(&heights[y]).then(x.cmp(&y)));
                let mi = match target {
                    Some(mi) => mi,
                    // Constraint (1) is `<= m`: idle machines are free.
                    None if machine_syms.len() < m => {
                        machine_syms.push(Vec::new());
                        assigned.push(Vec::new());
                        bags_on.push(Vec::new());
                        heights.push(0.0);
                        machine_syms.len() - 1
                    }
                    None => {
                        stats.repair_failures += 1;
                        return Err(GuessFailure::LargePlacement);
                    }
                };
                if heights[mi] + size > trans.t + 1e-9 {
                    stats.repair_failures += 1;
                    return Err(GuessFailure::LargePlacement);
                }
                assigned[mi].push((exp, b));
                bags_on[mi].push(b);
                heights[mi] += size;
                stats.repair_jobs_moved += 1;
            }
        }
    }

    // ---- 4. Rebuild concrete per-bag patterns and multiplicities. ----
    let symbols = collect_symbols(trans);
    let mut sym_index: HashMap<(SizeExp, SlotBag), usize> = HashMap::new();
    for (s, sym) in symbols.iter().enumerate() {
        sym_index.insert((sym.exp, sym.bag), s);
    }
    let mut patterns: Vec<Pattern> = vec![Pattern { entries: Vec::new(), height: 0.0 }];
    let mut xs: Vec<u32> = vec![0];
    let mut index_of: HashMap<Vec<(usize, u16)>, usize> = HashMap::new();
    index_of.insert(Vec::new(), 0);
    for (mi, agg_entries) in machine_syms.iter().enumerate() {
        let mut entries: Vec<(usize, u16)> = Vec::new();
        for &(si, mult) in agg_entries {
            if ps.symbols[si].bag == SlotBag::X {
                let Some(&cs) = sym_index.get(&(ps.symbols[si].exp, SlotBag::X)) else {
                    return Err(GuessFailure::LargePlacement);
                };
                entries.push((cs, mult));
            }
        }
        for &(exp, bag) in &assigned[mi] {
            let Some(&cs) = sym_index.get(&(exp, SlotBag::Priority(bag))) else {
                return Err(GuessFailure::LargePlacement);
            };
            entries.push((cs, 1));
        }
        entries.sort_unstable();
        // A bag appearing twice on one machine would be a coloring bug —
        // the very property the Kempe construction guarantees.
        debug_assert!(
            entries
                .windows(2)
                .all(|w| w[0].0 != w[1].0 || !matches!(symbols[w[0].0].bag, SlotBag::Priority(_))),
            "de-classing duplicated a priority symbol on one machine"
        );
        let idx = if let Some(&i) = index_of.get(&entries) {
            i
        } else {
            let height = entries.iter().map(|&(s, c)| symbols[s].size * c as f64).sum();
            patterns.push(Pattern { entries: entries.clone(), height });
            xs.push(0);
            index_of.insert(entries, patterns.len() - 1);
            patterns.len() - 1
        };
        xs[idx] += 1;
    }

    // Exact-consumption check: the concrete covering must match every
    // per-bag availability (the coloring theorem guarantees it; a
    // violation here would crash `assign_large` much less legibly).
    debug_assert!(
        {
            let mut covered = vec![0u32; symbols.len()];
            for (p, pat) in patterns.iter().enumerate() {
                for &(s, mult) in &pat.entries {
                    covered[s] += xs[p] * mult as u32;
                }
            }
            covered.iter().zip(&symbols).all(|(&got, sym)| got == sym.avail)
        },
        "de-classed covering disagrees with symbol availability"
    );

    let psc = PatternSet::from_parts(symbols, patterns);

    // ---- 5. Re-realize the small jobs on the concrete patterns. ----
    let singles = BagClasses::singletons(trans);
    let pairs = priority_small_pairs(trans);
    let class_mult = class_mult_table(&psc, &singles);
    let with_smalls: Vec<usize> = {
        let mut seen = Vec::new();
        for pair in &pairs {
            let c = singles.of(pair.tbag).expect("pair reps are classed");
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    };
    let ctx = ClassCtx {
        classes: &singles,
        class_mult: &class_mult,
        with_smalls: &with_smalls,
        covering: bagsched_milp::Relation::Eq,
    };
    let w_nonprio = nonpriority_small_area(trans);
    let y = greedy_small_y(trans, &psc, &xs, &pairs, w_nonprio, &ctx)?;

    let outc = MilpOutcome {
        x: xs,
        y,
        pairs,
        joint: out.joint,
        nodes: out.nodes,
        lp_iterations: out.lp_iterations,
    };
    Ok((psc, outc))
}

/// Proper `k`-edge-coloring of the machine × size-subnode multigraph of
/// one class (see the module docs): returns, parallel to the input, the
/// member-bag index per slot — `None` when a machine's class degree
/// exceeds `k` (the coloring premise; callers treat it as a per-guess
/// failure).
fn color_class(machine_slots: &[(usize, Vec<SizeExp>)], k: usize) -> Option<Vec<Vec<usize>>> {
    // Build edges: subnodes chunk each size's slot instances (in machine
    // order) into groups of exactly k.
    struct Edge {
        machine: usize, // local index into machine_slots
        subnode: usize,
        color: usize,
    }
    const NONE: usize = usize::MAX;
    let mut sub_of: HashMap<SizeExp, (usize, usize)> = HashMap::new(); // exp -> (open subnode, fill)
    let mut num_subnodes = 0usize;
    let mut edges: Vec<Edge> = Vec::new();
    let mut edge_slots: Vec<Vec<usize>> = Vec::with_capacity(machine_slots.len());
    for (local, (_, exps)) in machine_slots.iter().enumerate() {
        let mut ids = Vec::with_capacity(exps.len());
        for &exp in exps {
            let entry = sub_of.entry(exp).or_insert_with(|| {
                num_subnodes += 1;
                (num_subnodes - 1, 0)
            });
            if entry.1 == k {
                num_subnodes += 1;
                *entry = (num_subnodes - 1, 0);
            }
            entry.1 += 1;
            ids.push(edges.len());
            edges.push(Edge { machine: local, subnode: entry.0, color: NONE });
        }
        edge_slots.push(ids);
    }

    // uc[machine][color] / vc[subnode][color]: the edge holding the color.
    let mut uc = vec![vec![NONE; k]; machine_slots.len()];
    let mut vc = vec![vec![NONE; k]; num_subnodes];
    for e in 0..edges.len() {
        let (u, v) = (edges[e].machine, edges[e].subnode);
        let fu = (0..k).find(|&c| uc[u][c] == NONE)?;
        let fv = (0..k).find(|&c| vc[v][c] == NONE)?;
        if let Some(c) = (0..k).find(|&c| uc[u][c] == NONE && vc[v][c] == NONE) {
            edges[e].color = c;
            uc[u][c] = e;
            vc[v][c] = e;
            continue;
        }
        // Kempe chain: alpha free at u, beta free at v. The maximal
        // alpha/beta alternating path from v cannot reach u (bipartite
        // parity), so flipping it frees alpha at v.
        let (alpha, beta) = (fu, fv);
        let mut path: Vec<usize> = Vec::new();
        let mut cur_right = v;
        loop {
            let e1 = vc[cur_right][alpha];
            if e1 == NONE {
                break;
            }
            path.push(e1);
            let u1 = edges[e1].machine;
            let e2 = uc[u1][beta];
            if e2 == NONE {
                break;
            }
            path.push(e2);
            cur_right = edges[e2].subnode;
        }
        for &pe in &path {
            let (pu, pv, pc) = (edges[pe].machine, edges[pe].subnode, edges[pe].color);
            uc[pu][pc] = NONE;
            vc[pv][pc] = NONE;
        }
        for &pe in &path {
            let nc = if edges[pe].color == alpha { beta } else { alpha };
            edges[pe].color = nc;
            let (pu, pv) = (edges[pe].machine, edges[pe].subnode);
            uc[pu][nc] = pe;
            vc[pv][nc] = pe;
        }
        debug_assert_eq!(vc[v][alpha], NONE, "Kempe flip failed to free alpha at v");
        edges[e].color = alpha;
        uc[u][alpha] = e;
        vc[v][alpha] = e;
    }

    Some(
        edge_slots
            .into_iter()
            .map(|ids| ids.into_iter().map(|e| edges[e].color).collect())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::milp_model::solve_patterns;
    use crate::priority::select_priority;
    use crate::report::Stats;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn transformed(inst: &Instance, eps: f64) -> Transformed {
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, eps).unwrap();
        let c = classify(&r, inst.num_machines());
        let cfg = EptasConfig::with_epsilon(eps);
        let p = select_priority(inst, &r, &c, &cfg);
        transform(inst, &r, &c, &p)
    }

    /// The coloring invariants, checked directly on synthetic slot lists:
    /// per machine all bags distinct; per (size, bag) totals exactly the
    /// slot count divided by k.
    fn check_coloring(machine_slots: &[(usize, Vec<SizeExp>)], k: usize) {
        let colors = color_class(machine_slots, k).expect("premises hold: colorable");
        let mut per_bag_exp: HashMap<(usize, SizeExp), usize> = HashMap::new();
        let mut total_per_exp: HashMap<SizeExp, usize> = HashMap::new();
        for ((_, exps), cols) in machine_slots.iter().zip(&colors) {
            let mut seen = vec![false; k];
            for (&exp, &c) in exps.iter().zip(cols) {
                assert!(c < k, "color out of range");
                assert!(!seen[c], "bag used twice on one machine");
                seen[c] = true;
                *per_bag_exp.entry((c, exp)).or_insert(0) += 1;
                *total_per_exp.entry(exp).or_insert(0) += 1;
            }
        }
        for (&exp, &total) in &total_per_exp {
            assert_eq!(total % k, 0, "test data: size totals must be multiples of k");
            for bag in 0..k {
                assert_eq!(
                    per_bag_exp.get(&(bag, exp)).copied().unwrap_or(0),
                    total / k,
                    "per-bag totals must be exactly balanced at every size"
                );
            }
        }
    }

    #[test]
    fn coloring_balances_the_adversarial_interleaving() {
        // The case that breaks naive round-robin: two bags, two sizes,
        // every machine holding one slot of each size. A correct coloring
        // must alternate the (size, bag) pairing across machines.
        let a = SizeExp(0);
        let b = SizeExp(-1);
        let machines: Vec<(usize, Vec<SizeExp>)> = (0..4).map(|m| (m, vec![a, b])).collect();
        check_coloring(&machines, 2);
    }

    #[test]
    fn coloring_handles_ragged_degrees_and_multiplicity() {
        let a = SizeExp(0);
        let b = SizeExp(-1);
        let c = SizeExp(-2);
        // k = 3; machines with 1..3 slots, repeated sizes on one machine.
        // Size totals (a: 9, b: 6, c: 6) are multiples of k, as the
        // covering equality guarantees in production.
        let machines: Vec<(usize, Vec<SizeExp>)> = vec![
            (0, vec![a, a, b]),
            (1, vec![a, b, c]),
            (2, vec![a, b, c]),
            (3, vec![a, b, c]),
            (4, vec![a]),
            (5, vec![b]),
            (6, vec![b]),
        ];
        check_coloring(&machines, 3);
    }

    #[test]
    fn declass_produces_concrete_conflict_free_patterns() {
        // Six interchangeable single-job bags over three sizes… use one
        // size so they all land in one class of size 6.
        let jobs: Vec<(f64, u32)> = (0..6).map(|i| (0.9, i)).collect();
        let inst = Instance::new(&jobs, 3);
        let trans = transformed(&inst, 0.5);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.class_aggregation = true;
        // Aggregation engages above the per-bag budget; lower it so this
        // 6-bag instance takes the aggregated path (1 class <= budget).
        cfg.pricing_symbol_budget = 3;
        let mut stats = Stats::default();
        let (psc, outc) = solve_patterns(&trans, &cfg, &mut stats).expect("feasible guess");
        // The returned set is concrete: every priority symbol names a
        // real bag with per-bag availability, fully covered by x.
        let mut covered = vec![0u32; psc.symbols.len()];
        for (p, pat) in psc.patterns.iter().enumerate() {
            let mut bags_on_pattern = Vec::new();
            for &(s, mult) in &pat.entries {
                covered[s] += outc.x[p] * mult as u32;
                if let SlotBag::Priority(bag) = psc.symbols[s].bag {
                    assert_eq!(mult, 1, "concrete priority slots have multiplicity 1");
                    assert!(!bags_on_pattern.contains(&bag), "bag doubled on a machine");
                    bags_on_pattern.push(bag);
                }
            }
        }
        for (s, sym) in psc.symbols.iter().enumerate() {
            assert_eq!(covered[s], sym.avail, "symbol {s} mis-covered after de-classing");
        }
        assert!(stats.bag_classes > 0);
        assert!(stats.symbols_after_aggregation > 0);
    }

    #[test]
    fn declass_is_identity_work_when_classes_are_singletons() {
        // Distinct profiles: aggregation on, but no class has two members
        // — solve_patterns must return the aggregated (= per-bag) set
        // unchanged (no de-class pass, y straight from the MILP).
        let inst = Instance::new(&[(0.9, 0), (0.5, 1), (0.3, 2)], 3);
        let trans = transformed(&inst, 0.5);
        let mut on = EptasConfig::with_epsilon(0.5);
        on.class_aggregation = true;
        let mut off = EptasConfig::with_epsilon(0.5);
        off.class_aggregation = false;
        let (ps_on, out_on) = solve_patterns(&trans, &on, &mut Stats::default()).unwrap();
        let (ps_off, out_off) = solve_patterns(&trans, &off, &mut Stats::default()).unwrap();
        assert_eq!(ps_on.patterns.len(), ps_off.patterns.len());
        assert_eq!(out_on.x, out_off.x);
    }
}
