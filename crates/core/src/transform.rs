//! The instance transformation (paper §2.2, Figure 2, Lemma 2).
//!
//! Every *non-priority* bag `B_l` that contains small jobs is split:
//!
//! * its **large** jobs move to a fresh bag `B'_l` (the "large side"),
//! * its **medium** jobs are removed entirely (re-inserted at the end via
//!   the Lemma-3 flow),
//! * for every removed large/medium job a **filler job** of size `pmax`
//!   (the largest small size in `B_l`) joins the small side.
//!
//! Lemma 2: any schedule of makespan `C` for the original instance yields
//! one of makespan `(1+eps) * C` for the transformed instance, because a
//! machine holds at most `C / eps^k` large jobs and each filler adds at
//! most `eps^{k+1}`. The pay-off is that non-priority small and large
//! jobs can be scheduled *independently* — they no longer share a bag.
//! Lemma 4 (implemented in [`crate::undo`]) converts a solution back,
//! swapping conflicting real small jobs with fillers.

use crate::classify::{Classification, JobClass};
use crate::priority::Priority;
use crate::rounding::{Rounded, SizeExp};
use bagsched_types::{BagId, Instance, InstanceBuilder, JobId};

/// The transformed instance `I'` plus every mapping needed to translate a
/// solution back to the original instance.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The transformed instance (sizes are the *rounded, scaled* ones).
    pub tinst: Instance,
    /// Rounded-size exponent per transformed job.
    pub texp: Vec<SizeExp>,
    /// Job class per transformed job.
    pub tclass: Vec<JobClass>,
    /// Transformed job -> original job (`None` for fillers).
    pub to_orig: Vec<Option<JobId>>,
    /// Transformed job -> the original large/medium job it is the filler
    /// for (`None` for real jobs).
    pub filler_for: Vec<Option<JobId>>,
    /// Original job -> transformed job (`None` for set-aside medium jobs).
    pub from_orig: Vec<Option<JobId>>,
    /// Original medium jobs of modified bags, to be re-inserted (Lemma 3).
    pub removed_medium: Vec<JobId>,
    /// Transformed bag -> the original bag it stems from.
    pub t_bag_orig: Vec<BagId>,
    /// Original bag -> transformed "large side" bag `B'_l`, if split.
    pub large_side_of: Vec<Option<BagId>>,
    /// Original bag -> transformed small-side bag, if split.
    pub small_side_of: Vec<Option<BagId>>,
    /// Whether each transformed bag is priority (inherited; both sides of
    /// a split bag are non-priority by construction).
    pub is_priority_tbag: Vec<bool>,
    /// Whether each original bag was split.
    pub was_modified: Vec<bool>,
    /// The post-transformation optimum bound `T = 1 + 2eps + eps^2`.
    pub t: f64,
}

/// Apply the transformation.
pub fn transform(
    inst: &Instance,
    rounded: &Rounded,
    class: &Classification,
    priority: &Priority,
) -> Transformed {
    let eps = rounded.epsilon;
    let b = inst.num_bags();
    let mut builder = InstanceBuilder::new(inst.num_machines());
    let mut to_orig: Vec<Option<JobId>> = Vec::new();
    let mut filler_for: Vec<Option<JobId>> = Vec::new();
    let mut texp: Vec<SizeExp> = Vec::new();
    let mut tclass: Vec<JobClass> = Vec::new();
    let mut from_orig: Vec<Option<JobId>> = vec![None; inst.num_jobs()];
    let mut removed_medium: Vec<JobId> = Vec::new();
    let mut was_modified = vec![false; b];

    // External bag ids for the builder: 2l = the bag itself (or its small
    // side), 2l + 1 = the large side of a split bag.
    let push = |builder: &mut InstanceBuilder,
                size: f64,
                ext: u32,
                orig: Option<JobId>,
                filler: Option<JobId>,
                exp: SizeExp,
                cls: JobClass,
                to_orig: &mut Vec<Option<JobId>>,
                filler_for: &mut Vec<Option<JobId>>,
                texp: &mut Vec<SizeExp>,
                tclass: &mut Vec<JobClass>| {
        let tid = builder.push(size, ext);
        to_orig.push(orig);
        filler_for.push(filler);
        texp.push(exp);
        tclass.push(cls);
        tid
    };

    for (bag, members) in inst.bags() {
        let l = bag.idx();
        if priority.is_priority[l] {
            for &j in members {
                let tid = push(
                    &mut builder,
                    rounded.size[j.idx()],
                    2 * l as u32,
                    Some(j),
                    None,
                    rounded.exp[j.idx()],
                    class.of(j.idx()),
                    &mut to_orig,
                    &mut filler_for,
                    &mut texp,
                    &mut tclass,
                );
                from_orig[j.idx()] = Some(tid);
            }
            continue;
        }
        // Non-priority bag: find its largest small job.
        let pmax = members
            .iter()
            .filter(|&&j| class.of(j.idx()) == JobClass::Small)
            .max_by(|&&a, &&b| rounded.size[a.idx()].total_cmp(&rounded.size[b.idx()]));
        let Some(&pmax_job) = pmax else {
            // No small jobs: the bag is left unmodified (paper §2.2).
            for &j in members {
                let tid = push(
                    &mut builder,
                    rounded.size[j.idx()],
                    2 * l as u32,
                    Some(j),
                    None,
                    rounded.exp[j.idx()],
                    class.of(j.idx()),
                    &mut to_orig,
                    &mut filler_for,
                    &mut texp,
                    &mut tclass,
                );
                from_orig[j.idx()] = Some(tid);
            }
            continue;
        };
        was_modified[l] = true;
        let pmax_size = rounded.size[pmax_job.idx()];
        let pmax_exp = rounded.exp[pmax_job.idx()];
        for &j in members {
            match class.of(j.idx()) {
                JobClass::Small => {
                    let tid = push(
                        &mut builder,
                        rounded.size[j.idx()],
                        2 * l as u32,
                        Some(j),
                        None,
                        rounded.exp[j.idx()],
                        JobClass::Small,
                        &mut to_orig,
                        &mut filler_for,
                        &mut texp,
                        &mut tclass,
                    );
                    from_orig[j.idx()] = Some(tid);
                }
                JobClass::Large => {
                    // Real job moves to the large side...
                    let tid = push(
                        &mut builder,
                        rounded.size[j.idx()],
                        2 * l as u32 + 1,
                        Some(j),
                        None,
                        rounded.exp[j.idx()],
                        JobClass::Large,
                        &mut to_orig,
                        &mut filler_for,
                        &mut texp,
                        &mut tclass,
                    );
                    from_orig[j.idx()] = Some(tid);
                    // ...and a filler of size pmax joins the small side.
                    push(
                        &mut builder,
                        pmax_size,
                        2 * l as u32,
                        None,
                        Some(j),
                        pmax_exp,
                        JobClass::Small,
                        &mut to_orig,
                        &mut filler_for,
                        &mut texp,
                        &mut tclass,
                    );
                }
                JobClass::Medium => {
                    // The medium job is set aside; only its filler remains.
                    removed_medium.push(j);
                    push(
                        &mut builder,
                        pmax_size,
                        2 * l as u32,
                        None,
                        Some(j),
                        pmax_exp,
                        JobClass::Small,
                        &mut to_orig,
                        &mut filler_for,
                        &mut texp,
                        &mut tclass,
                    );
                }
            }
        }
    }

    let tinst = builder.build();

    // Reconstruct bag-level maps from the members.
    let tb = tinst.num_bags();
    let mut t_bag_orig = vec![BagId(0); tb];
    let mut is_priority_tbag = vec![false; tb];
    let mut large_side_of: Vec<Option<BagId>> = vec![None; b];
    let mut small_side_of: Vec<Option<BagId>> = vec![None; b];
    for (tbag, members) in tinst.bags() {
        let first = members[0];
        let orig_bag = match to_orig[first.idx()] {
            Some(oj) => inst.bag_of(oj),
            None => inst.bag_of(filler_for[first.idx()].expect("filler has a source")),
        };
        t_bag_orig[tbag.idx()] = orig_bag;
        let l = orig_bag.idx();
        if priority.is_priority[l] {
            is_priority_tbag[tbag.idx()] = true;
        } else if was_modified[l] {
            // Large side iff its first member is a large real job.
            let is_large_side = to_orig[first.idx()]
                .map(|oj| class.of(oj.idx()) == JobClass::Large)
                .unwrap_or(false)
                && tclass[first.idx()] == JobClass::Large;
            if is_large_side {
                large_side_of[l] = Some(tbag);
            } else {
                small_side_of[l] = Some(tbag);
            }
        }
    }

    Transformed {
        tinst,
        texp,
        tclass,
        to_orig,
        filler_for,
        from_orig,
        removed_medium,
        t_bag_orig,
        large_side_of,
        small_side_of,
        is_priority_tbag,
        was_modified,
        t: 1.0 + 2.0 * eps + eps * eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;

    fn build(
        jobs: &[(f64, u32)],
        m: usize,
        eps: f64,
        cap: Option<usize>,
    ) -> (Instance, Transformed) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, eps).unwrap();
        let c = classify(&r, m);
        let mut cfg = EptasConfig::with_epsilon(eps);
        cfg.priority_cap = cap;
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        (inst, t)
    }

    /// A non-priority bag with large, medium and small jobs.
    /// eps = 0.5; with priority_cap 0-ish the bag stays non-priority.
    /// Sizes: 0.9 (large), 0.1 (likely medium/small depending on k), 0.01.
    #[test]
    fn split_bag_bookkeeping() {
        // Force non-priority by making another bag dominate the size class.
        let jobs = [
            (0.9, 0),
            (0.9, 0), // bag 0: two large of the class -> priority
            (0.9, 1),
            (0.05, 1),
            (0.01, 1), // bag 1: one large + smalls
        ];
        let (inst, t) = build(&jobs, 4, 0.5, Some(1));
        // Bag 0 wins the single priority slot.
        assert!(t.was_modified[1], "bag 1 must be split");
        assert!(!t.was_modified[0]);
        let ls = t.large_side_of[1].expect("large side exists");
        let ss = t.small_side_of[1].expect("small side exists");
        assert_ne!(ls, ss);
        // Large side holds exactly the large job of bag 1.
        let ls_members = t.tinst.bag(ls);
        assert_eq!(ls_members.len(), 1);
        assert_eq!(t.to_orig[ls_members[0].idx()], Some(JobId(2)));
        // Small side: 2 real smalls + 1 filler for the large job.
        let ss_members = t.tinst.bag(ss);
        assert_eq!(ss_members.len(), 3);
        let fillers: Vec<_> =
            ss_members.iter().filter(|&&j| t.filler_for[j.idx()].is_some()).collect();
        assert_eq!(fillers.len(), 1);
        assert_eq!(t.filler_for[fillers[0].idx()], Some(JobId(2)));
        // Total job conservation: |I'| = |I| + #ml-jobs-of-modified-bags
        //                                 - #removed-medium.
        assert_eq!(t.tinst.num_jobs(), inst.num_jobs() + 1 - t.removed_medium.len());
    }

    #[test]
    fn filler_size_is_pmax_small() {
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.05, 1), (0.01, 1)];
        let (_, t) = build(&jobs, 4, 0.5, Some(1));
        let ss = t.small_side_of[1].unwrap();
        let pmax = t
            .tinst
            .bag(ss)
            .iter()
            .filter(|&&j| t.filler_for[j.idx()].is_none())
            .map(|&j| t.tinst.size(j))
            .fold(0.0f64, f64::max);
        for &j in t.tinst.bag(ss) {
            if t.filler_for[j.idx()].is_some() {
                assert_eq!(t.tinst.size(j), pmax);
                assert_eq!(t.tclass[j.idx()], JobClass::Small);
            }
        }
    }

    #[test]
    fn priority_bags_pass_through() {
        let jobs = [(0.9, 0), (0.2, 0), (0.01, 0)];
        let (inst, t) = build(&jobs, 2, 0.5, None);
        // Single bag with large jobs: priority; untouched.
        assert_eq!(t.tinst.num_jobs(), inst.num_jobs());
        assert!(t.removed_medium.is_empty());
        assert!(t.to_orig.iter().all(Option::is_some));
        assert_eq!(t.tinst.num_bags(), 1);
        assert!(t.is_priority_tbag[0]);
    }

    #[test]
    fn bag_without_smalls_unmodified() {
        // Bag 1 is non-priority (cap 1) but has no small jobs.
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1)];
        let (inst, t) = build(&jobs, 3, 0.5, Some(1));
        assert!(!t.was_modified[1]);
        assert_eq!(t.tinst.num_jobs(), inst.num_jobs());
        assert!(t.large_side_of[1].is_none());
    }

    #[test]
    fn medium_jobs_removed_and_tracked() {
        // Construct a bag whose medium job must be set aside. eps = 0.5;
        // make band 1 heavy so k = 2 and medium = [0.125, 0.25).
        // Bag 0 hogs priority; bag 1: large 0.9, medium 0.15, small 0.01.
        let mut jobs = vec![(0.3, 0); 10]; // heavy band 1 mass on bag 0 (m=2 -> bound 0.75)
        jobs.extend([(0.9, 1), (0.15, 1), (0.01, 1)]);
        let (inst, t) = build(&jobs, 2, 0.5, Some(1));
        // Bag 1's 0.15 job: check it was classified medium and removed
        // (only if bag 1 is non-priority; bag 0 should dominate).
        if t.was_modified[1] {
            let medium_ids: Vec<u32> = t.removed_medium.iter().map(|j| j.0).collect();
            if !medium_ids.is_empty() {
                assert_eq!(medium_ids, vec![11]);
                assert!(t.from_orig[11].is_none());
            }
        }
        // Every non-removed original job is mapped.
        for j in 0..inst.num_jobs() {
            let removed = t.removed_medium.contains(&JobId(j as u32));
            assert_eq!(t.from_orig[j].is_some(), !removed);
        }
    }

    #[test]
    fn small_side_size_bounded_by_original_bag() {
        // |small side| = |B_l| - #medium <= m always (feasible instances).
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.6, 1), (0.05, 1), (0.01, 1)];
        let (inst, t) = build(&jobs, 4, 0.5, Some(1));
        if let Some(ss) = t.small_side_of[1] {
            assert!(t.tinst.bag(ss).len() <= inst.num_machines());
        }
    }

    #[test]
    fn t_value_matches_formula() {
        let (_, t) = build(&[(0.5, 0)], 2, 0.5, None);
        assert!((t.t - 2.25).abs() < 1e-12);
    }
}
