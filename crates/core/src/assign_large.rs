//! Placing large and medium jobs into the MILP's pattern slots (paper
//! §3.1).
//!
//! Priority-bag slots name their bag, so they are filled exactly as the
//! MILP dictates (jobs of one size-restricted bag are interchangeable —
//! they have identical rounded size). Wildcard `B_x` slots only name a
//! size; they are filled greedily from the non-priority bag with the most
//! remaining jobs of that size that causes no conflict on the machine.
//! When every candidate bag conflicts, the job is placed anyway and the
//! conflict handed to [`crate::swap_repair`] (Lemma 7).

use crate::classify::JobClass;
use crate::pattern::{PatternSet, SlotBag};
use crate::report::GuessFailure;
use crate::rounding::SizeExp;
use crate::transform::Transformed;
use bagsched_types::{BagId, JobId, MachineId};
use std::collections::HashMap;

/// Mutable scheduling state over the transformed instance, shared by the
/// placement phases.
#[derive(Debug, Clone)]
pub struct WorkState {
    /// Machine per transformed job (None = not yet placed).
    pub machine_of: Vec<Option<MachineId>>,
    /// Jobs per machine.
    pub machine_jobs: Vec<Vec<JobId>>,
    /// Per machine: how many jobs of each transformed bag it holds.
    pub bag_count: Vec<HashMap<u32, u32>>,
    /// Per machine: total (rounded) load.
    pub loads: Vec<f64>,
}

impl WorkState {
    /// Empty state for `m` machines and `n` transformed jobs.
    pub fn new(n: usize, m: usize) -> Self {
        WorkState {
            machine_of: vec![None; n],
            machine_jobs: vec![Vec::new(); m],
            bag_count: vec![HashMap::new(); m],
            loads: vec![0.0; m],
        }
    }

    /// Place a job on a machine.
    pub fn place(&mut self, trans: &Transformed, j: JobId, mid: MachineId) {
        debug_assert!(self.machine_of[j.idx()].is_none(), "job {j:?} placed twice");
        self.machine_of[j.idx()] = Some(mid);
        self.machine_jobs[mid.idx()].push(j);
        let bag = trans.tinst.bag_of(j).0;
        *self.bag_count[mid.idx()].entry(bag).or_insert(0) += 1;
        self.loads[mid.idx()] += trans.tinst.size(j);
    }

    /// Remove a job from its machine.
    pub fn remove(&mut self, trans: &Transformed, j: JobId) -> MachineId {
        let mid = self.machine_of[j.idx()].take().expect("job not placed");
        let jobs = &mut self.machine_jobs[mid.idx()];
        let pos = jobs.iter().position(|&x| x == j).expect("inconsistent state");
        jobs.swap_remove(pos);
        let bag = trans.tinst.bag_of(j).0;
        let cnt = self.bag_count[mid.idx()].get_mut(&bag).expect("inconsistent bag count");
        *cnt -= 1;
        if *cnt == 0 {
            self.bag_count[mid.idx()].remove(&bag);
        }
        self.loads[mid.idx()] -= trans.tinst.size(j);
        mid
    }

    /// How many jobs of `bag` machine `mid` holds.
    pub fn bag_on(&self, mid: MachineId, bag: BagId) -> u32 {
        self.bag_count[mid.idx()].get(&bag.0).copied().unwrap_or(0)
    }

    /// Whether placing a job of `bag` on `mid` would violate the
    /// bag-constraint.
    pub fn conflicts(&self, mid: MachineId, bag: BagId) -> bool {
        self.bag_on(mid, bag) > 0
    }

    /// Number of bag-constraint violations across all machines.
    pub fn conflict_count(&self) -> usize {
        self.bag_count
            .iter()
            .flat_map(|m| m.values())
            .filter(|&&c| c > 1)
            .map(|&c| (c - 1) as usize)
            .sum()
    }
}

/// Result of the large/medium placement.
#[derive(Debug)]
pub struct LargeAssignment {
    /// Pattern index per machine (empty-pattern machines included).
    pub machine_pattern: Vec<usize>,
    /// `origin_l(j)`: the machine each priority large/medium job was
    /// assigned by the MILP *before* any swap (Lemma 11 needs this).
    pub origin: HashMap<JobId, MachineId>,
    /// Wildcard placements that ended in conflict (input to Lemma 7).
    pub conflicts: Vec<JobId>,
}

/// Expand the pattern multiplicities into per-machine patterns and place
/// all large/medium jobs into their slots. Returns the updated state and
/// the conflicts wildcard placement could not avoid.
///
/// Constraint (2) of a *correct* MILP solution guarantees the slot
/// demands match the job pools exactly; a solution that drifted (a
/// tolerance artifact, a declassing miss) surfaces here as a mismatch.
/// That is a per-guess failure — [`GuessFailure::LargePlacement`] sends
/// the driver to its next guess — never a panic.
pub fn assign_large(
    trans: &Transformed,
    ps: &PatternSet,
    x: &[u32],
    state: &mut WorkState,
) -> Result<LargeAssignment, GuessFailure> {
    let m = trans.tinst.num_machines();

    // Per-machine pattern list: non-empty patterns first, padded with the
    // empty pattern (index 0).
    let mut machine_pattern = Vec::with_capacity(m);
    for (p, &count) in x.iter().enumerate() {
        if p == 0 {
            continue;
        }
        for _ in 0..count {
            machine_pattern.push(p);
        }
    }
    if machine_pattern.len() > m || x.len() > ps.patterns.len() {
        return Err(GuessFailure::LargePlacement);
    }
    machine_pattern.resize(m, 0);

    // Job pools.
    let mut prio_pool: HashMap<(BagId, SizeExp), Vec<JobId>> = HashMap::new();
    let mut wild_pool: HashMap<SizeExp, HashMap<BagId, Vec<JobId>>> = HashMap::new();
    for j in 0..trans.tinst.num_jobs() {
        if trans.tclass[j] == JobClass::Small {
            continue;
        }
        let job = JobId(j as u32);
        let tbag = trans.tinst.bag_of(job);
        if trans.is_priority_tbag[tbag.idx()] {
            prio_pool.entry((tbag, trans.texp[j])).or_default().push(job);
        } else {
            wild_pool.entry(trans.texp[j]).or_default().entry(tbag).or_default().push(job);
        }
    }

    let mut origin = HashMap::new();
    let mut conflicts = Vec::new();

    // Pass 1: priority slots (exact).
    for (machine, &p) in machine_pattern.iter().enumerate() {
        let mid = MachineId(machine as u32);
        for &(si, mult) in &ps.patterns[p].entries {
            let sym = &ps.symbols[si];
            if let SlotBag::Priority(bag) = sym.bag {
                for _ in 0..mult {
                    let Some(job) = prio_pool.get_mut(&(bag, sym.exp)).and_then(Vec::pop) else {
                        return Err(GuessFailure::LargePlacement);
                    };
                    state.place(trans, job, mid);
                    origin.insert(job, mid);
                }
            }
        }
    }

    // Pass 2: wildcard slots (greedy, conflicts recorded).
    for (machine, &p) in machine_pattern.iter().enumerate() {
        let mid = MachineId(machine as u32);
        for &(si, mult) in &ps.patterns[p].entries {
            let sym = &ps.symbols[si];
            if sym.bag != SlotBag::X {
                continue;
            }
            for _ in 0..mult {
                let Some(pools) = wild_pool.get_mut(&sym.exp) else {
                    return Err(GuessFailure::LargePlacement);
                };
                // Non-conflicting bag with the most remaining jobs; if all
                // conflict, the fullest bag overall (conflict recorded).
                let pick_free = pools
                    .iter()
                    .filter(|(bag, jobs)| !jobs.is_empty() && !state.conflicts(mid, **bag))
                    .max_by_key(|(bag, jobs)| (jobs.len(), std::cmp::Reverse(bag.0)))
                    .map(|(bag, _)| *bag);
                let (bag, conflicted) = match pick_free {
                    Some(bag) => (bag, false),
                    None => {
                        let fullest = pools
                            .iter()
                            .filter(|(_, jobs)| !jobs.is_empty())
                            .max_by_key(|(bag, jobs)| (jobs.len(), std::cmp::Reverse(bag.0)))
                            .map(|(bag, _)| *bag);
                        let Some(bag) = fullest else {
                            return Err(GuessFailure::LargePlacement);
                        };
                        (bag, true)
                    }
                };
                let Some(job) = pools.get_mut(&bag).and_then(Vec::pop) else {
                    return Err(GuessFailure::LargePlacement);
                };
                state.place(trans, job, mid);
                if conflicted {
                    conflicts.push(job);
                }
            }
        }
    }

    // Leftover jobs mean the slots under-covered the pools: the later
    // phases would ship a schedule with unplaced large jobs. Same
    // per-guess failure as a pool running dry above.
    if prio_pool.values().any(|p| !p.is_empty())
        || wild_pool.values().any(|m| m.values().any(|p| !p.is_empty()))
    {
        return Err(GuessFailure::LargePlacement);
    }

    Ok(LargeAssignment { machine_pattern, origin, conflicts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::milp_model::solve_with_patterns;
    use crate::pattern::enumerate_patterns;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    pub(crate) fn run_pipeline(
        jobs: &[(f64, u32)],
        m: usize,
        cfg: &EptasConfig,
    ) -> (Transformed, PatternSet, crate::milp_model::MilpOutcome, WorkState, LargeAssignment) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, cfg.epsilon).unwrap();
        let c = classify(&r, m);
        let p = select_priority(&inst, &r, &c, cfg);
        let t = transform(&inst, &r, &c, &p);
        let ps = enumerate_patterns(&t, cfg.max_patterns).unwrap();
        let out = solve_with_patterns(&t, &ps, cfg, &mut crate::report::Stats::default())
            .expect("guess feasible");
        let mut state = WorkState::new(t.tinst.num_jobs(), m);
        let la = assign_large(&t, &ps, &out.x, &mut state).expect("placement feasible");
        (t, ps, out, state, la)
    }

    #[test]
    fn all_ml_jobs_placed_respecting_loads() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1), (0.4, 2), (0.05, 0)];
        let (t, _, _, state, la) = run_pipeline(&jobs, 3, &cfg);
        for j in 0..t.tinst.num_jobs() {
            let placed = state.machine_of[j].is_some();
            let is_ml = t.tclass[j] != JobClass::Small;
            assert_eq!(placed, is_ml, "job {j} placement mismatch");
        }
        let _ = la;
        assert_eq!(state.conflict_count(), 0, "priority placement cannot conflict");
    }

    #[test]
    fn machine_loads_equal_pattern_heights() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1), (0.4, 2), (0.9, 3), (0.4, 4)];
        let (_, ps, _, state, la) = run_pipeline(&jobs, 3, &cfg);
        for (machine, &p) in la.machine_pattern.iter().enumerate() {
            assert!(
                (state.loads[machine] - ps.patterns[p].height).abs() < 1e-9,
                "machine {machine} load {} != pattern height {}",
                state.loads[machine],
                ps.patterns[p].height
            );
        }
    }

    #[test]
    fn priority_origin_recorded() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.9, 1)];
        let (t, _, _, state, la) = run_pipeline(&jobs, 2, &cfg);
        // Both bags are priority; every ml job has an origin equal to its
        // current machine (no swaps happened).
        for j in 0..t.tinst.num_jobs() {
            let job = JobId(j as u32);
            let mid = state.machine_of[j].unwrap();
            assert_eq!(la.origin[&job], mid);
        }
    }

    #[test]
    fn wildcard_greedy_avoids_conflicts_when_possible() {
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        // Bag 0 hogs priority; bags 1 and 2 are non-priority with one
        // large job each (plus smalls to force the split). Two wildcard
        // jobs of the same size can share a machine (T = 2.25), and the
        // greedy must not pair two jobs of the same bag... they are from
        // different bags here, so zero conflicts must remain.
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 0), (0.9, 1), (0.01, 1), (0.9, 2), (0.01, 2)];
        let (_, _, _, state, la) = run_pipeline(&jobs, 6, &cfg);
        assert_eq!(la.conflicts.len(), 0);
        assert_eq!(state.conflict_count(), 0);
    }

    #[test]
    fn workstate_place_remove_roundtrip() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let inst = Instance::new(&[(0.9, 0), (0.5, 1)], 2);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 2);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let mut s = WorkState::new(t.tinst.num_jobs(), 2);
        let j = JobId(0);
        s.place(&t, j, MachineId(1));
        assert!(s.conflicts(MachineId(1), t.tinst.bag_of(j)));
        assert_eq!(s.machine_jobs[1], vec![j]);
        let from = s.remove(&t, j);
        assert_eq!(from, MachineId(1));
        assert!(!s.conflicts(MachineId(1), t.tinst.bag_of(j)));
        assert!((s.loads[1]).abs() < 1e-12);
    }
}
