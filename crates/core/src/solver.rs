//! Session-oriented solver facade with cross-request state caching.
//!
//! [`Solver`] replaces the one-shot `Eptas` facade. It owns an
//! [`EptasConfig`] and, optionally, a bounded LRU cache of
//! [`SolverState`] handles keyed by the rounded-instance
//! [`fingerprint`]: the winning makespan guess plus the pattern pool,
//! symbol table and root basis that produced it. A later request whose
//! instance rounds to the same shape *replays* that state — guess
//! search, pattern enumeration and column-generation pricing are all
//! skipped, and the MILP re-solves from the cached warm basis in a
//! handful of pivots. Replay is validated structurally (bit-exact guess,
//! symbol-table equality), so a fingerprint collision degrades to a cold
//! solve instead of a wrong schedule.
//!
//! Three entry points, least to most explicit:
//!
//! * [`Solver::solve`] — wire-level: takes a [`SolveRequest`] (its own
//!   epsilon per request), never panics, answers with a
//!   [`SolveResponse`].
//! * [`Solver::solve_instance`] — one-shot [`Instance`] solve through
//!   the cache (the `Eptas::solve` replacement).
//! * [`Solver::solve_session`] — caller-held state: pass the
//!   [`SolverState`] from the previous solve, get the refreshed one
//!   back. Bypasses the shared cache entirely.

use crate::config::EptasConfig;
use crate::driver::{solve_session_inner, EptasError, EptasResult};
use crate::milp_model::ReplaySeed;
use bagsched_types::{
    coarse_fingerprint, fingerprint, CacheTag, Instance, SolveRequest, SolveResponse,
};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Opaque per-shape solver state: everything needed to replay a solve of
/// a structurally identical instance without re-searching.
#[derive(Debug, Clone)]
pub struct SolverState {
    /// The winning makespan guess of the captured solve.
    pub(crate) chosen_guess: f64,
    /// The pattern-phase replay seed (strategy, pool, warm basis).
    pub(crate) seed: ReplaySeed,
}

impl SolverState {
    /// The makespan guess the replay retries first.
    pub fn chosen_guess(&self) -> f64 {
        self.chosen_guess
    }

    /// Number of patterns in the cached pool.
    pub fn pool_size(&self) -> usize {
        self.seed.pool_size()
    }
}

/// Snapshot of the solver-state cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests answered by replaying cached state.
    pub hits: u64,
    /// Requests that solved cold (no usable cached state).
    pub misses: u64,
    /// States evicted to respect the capacity bound.
    pub evictions: u64,
    /// Requests that found the same shape already solving cold and
    /// waited for that leader instead of duplicating the solve.
    pub coalesced_waits: u64,
    /// Exact misses rescued by the similarity tier: a
    /// [`coarse_fingerprint`] neighbour's chosen guess seeded the cold
    /// search's first probe. These solves still count as misses — the
    /// tier saves search steps, not the solve.
    pub near_hits: u64,
}

/// Tick-stamped LRU map. Capacities are small (a server keeps at most a
/// few hundred states), so min-scan eviction beats a linked structure.
struct Lru {
    cap: usize,
    tick: u64,
    map: HashMap<u64, (SolverState, u64)>,
    /// Similarity tier: coarse fingerprint → (chosen guess, tick). A
    /// full state would replay wrongly against a merely *similar*
    /// instance, so only the winning guess is kept — enough to seed the
    /// binary search's first probe. Same capacity bound, refreshed on
    /// every publish.
    near: HashMap<u64, (f64, u64)>,
}

impl Lru {
    fn new(cap: usize) -> Self {
        Lru { cap: cap.max(1), tick: 0, map: HashMap::new(), near: HashMap::new() }
    }

    fn get(&mut self, key: u64) -> Option<SolverState> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|entry| {
            entry.1 = tick;
            entry.0.clone()
        })
    }

    /// Insert (or refresh) `key`; returns `true` if another entry was
    /// evicted to make room.
    fn put(&mut self, key: u64, state: SolverState) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, (_, t))| *t).map(|(&k, _)| k) {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, (state, self.tick));
        evicted
    }

    /// The similarity tier's guess for a coarse key, if any.
    fn get_near(&mut self, key: u64) -> Option<f64> {
        self.tick += 1;
        let tick = self.tick;
        self.near.get_mut(&key).map(|entry| {
            entry.1 = tick;
            entry.0
        })
    }

    /// Record (or refresh) the winning guess under a coarse key. Shares
    /// the exact map's capacity bound but evicts silently — near
    /// entries are hints, not state, so their churn is not surfaced in
    /// the eviction counter.
    fn put_near(&mut self, key: u64, guess: f64) {
        self.tick += 1;
        if !self.near.contains_key(&key) && self.near.len() >= self.cap {
            if let Some(oldest) = self.near.iter().min_by_key(|(_, (_, t))| *t).map(|(&k, _)| k) {
                self.near.remove(&oldest);
            }
        }
        self.near.insert(key, (guess, self.tick));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The session-oriented EPTAS solver. Cheap to share behind an `Arc`:
/// all methods take `&self`, the cache is internally synchronized, and
/// counters are atomics.
pub struct Solver {
    cfg: EptasConfig,
    cache: Option<Mutex<Lru>>,
    /// Shapes currently solving cold, for request coalescing: followers
    /// of an in-flight leader wait on the gate instead of duplicating
    /// the solve, then replay the state the leader published.
    inflight: Mutex<HashMap<u64, Gate>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced_waits: AtomicU64,
    near_hits: AtomicU64,
}

/// A leader-completion gate: `true` once the leading solve finished
/// (successfully or not) and removed itself from the in-flight map.
type Gate = Arc<(Mutex<bool>, Condvar)>;

impl Solver {
    /// A solver without a state cache: every solve is cold.
    pub fn new(cfg: EptasConfig) -> Self {
        Solver {
            cfg,
            cache: None,
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            near_hits: AtomicU64::new(0),
        }
    }

    /// Shorthand: default configuration at `eps`, no cache.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Solver::new(EptasConfig::with_epsilon(epsilon))
    }

    /// A solver with a solver-state cache holding up to `capacity`
    /// states (at least one).
    pub fn with_cache(cfg: EptasConfig, capacity: usize) -> Self {
        Solver { cache: Some(Mutex::new(Lru::new(capacity))), ..Solver::new(cfg) }
    }

    /// The configuration in use (per-request epsilon overrides it on the
    /// wire path).
    pub fn config(&self) -> &EptasConfig {
        &self.cfg
    }

    /// Lifetime totals of the state cache. All zero when the solver was
    /// built without a cache.
    pub fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
            near_hits: self.near_hits.load(Ordering::Relaxed),
        }
    }

    /// Number of states currently cached.
    pub fn cached_states(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.lock().unwrap().len())
    }

    /// One-shot solve through the shared cache (the `Eptas::solve`
    /// replacement). With a cache attached, the report's
    /// `cache_hits`/`cache_misses`/`cache_evictions` counters and the
    /// `replayed` flag record what the cache did for this request.
    pub fn solve_instance(&self, inst: &Instance) -> Result<EptasResult, EptasError> {
        self.solve_cached(&self.cfg, inst)
    }

    /// Explicit session solve: replays `state` when given, returns the
    /// refreshed state for the caller to hold. Does not touch the shared
    /// cache or its counters.
    pub fn solve_session(
        &self,
        inst: &Instance,
        state: Option<&SolverState>,
    ) -> Result<(EptasResult, Option<SolverState>), EptasError> {
        solve_session_inner(&self.cfg, inst, state, None)
    }

    /// Wire-level entry point: solve a [`SolveRequest`] (with its own
    /// epsilon) and answer with a [`SolveResponse`]. Never panics on
    /// hostile input — an out-of-range epsilon or infeasible instance
    /// comes back as an error response.
    pub fn solve(&self, req: &SolveRequest) -> SolveResponse {
        let start = Instant::now();
        let error = |msg: String| SolveResponse {
            id: req.id,
            ok: false,
            error: Some(msg),
            makespan: 0.0,
            assignment: Vec::new(),
            cache_hit: false,
            micros: start.elapsed().as_micros() as u64,
            cache: CacheTag::Miss,
            elapsed_us: start.elapsed().as_micros() as u64,
        };
        // The wire deserializer already rejects non-finite / non-positive
        // epsilon; the config layer additionally caps it.
        if !(req.epsilon > 0.0 && req.epsilon <= 0.95) {
            return error(format!("epsilon must be in (0, 0.95], got {}", req.epsilon));
        }
        let mut cfg = if req.epsilon == self.cfg.epsilon {
            self.cfg.clone()
        } else {
            EptasConfig { epsilon: req.epsilon, ..self.cfg.clone() }
        };
        // A per-request deadline turns on the portfolio for this solve
        // only; absent, the server-wide configuration stands.
        if req.deadline_ms.is_some() {
            cfg.portfolio_deadline_ms = req.deadline_ms;
        }
        match self.solve_cached(&cfg, &req.instance) {
            Ok(res) => {
                let cache = if res.report.replayed {
                    CacheTag::Hit
                } else if res.report.stats.cache_near_hits > 0 {
                    CacheTag::Near
                } else {
                    CacheTag::Miss
                };
                let micros = start.elapsed().as_micros() as u64;
                SolveResponse {
                    id: req.id,
                    ok: true,
                    error: None,
                    makespan: res.makespan,
                    assignment: res.schedule.assignment().iter().map(|m| m.0).collect(),
                    cache_hit: res.report.replayed,
                    micros,
                    cache,
                    elapsed_us: micros,
                }
            }
            Err(e) => error(e.to_string()),
        }
    }

    fn solve_cached(&self, cfg: &EptasConfig, inst: &Instance) -> Result<EptasResult, EptasError> {
        let Some(cache) = &self.cache else {
            return solve_session_inner(cfg, inst, None, None).map(|(result, _)| result);
        };
        let key = fingerprint(inst, cfg.epsilon);
        let near_key = coarse_fingerprint(inst, cfg.epsilon);

        // Coalescing: a cache miss either elects this thread the cold
        // leader for the shape, or finds a leader already in flight and
        // waits on its gate, replaying the published state afterwards.
        // A leader that publishes nothing (LPT shortcut, error) simply
        // leaves the next waiter to elect itself — progress, never a
        // livelock.
        let mut leader = false;
        let cached = loop {
            if let Some(state) = cache.lock().unwrap().get(key) {
                break Some(state);
            }
            let gate = match self.inflight.lock().unwrap().entry(key) {
                Entry::Occupied(e) => Some(e.get().clone()),
                Entry::Vacant(v) => {
                    v.insert(Arc::new((Mutex::new(false), Condvar::new())));
                    None
                }
            };
            match gate {
                Some(gate) => {
                    self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
                    let (lock, cv) = &*gate;
                    let mut done = lock.lock().unwrap();
                    while !*done {
                        done = cv.wait(done).unwrap();
                    }
                }
                None => {
                    leader = true;
                    // Double-check: a leader may have published between
                    // our cache miss and taking leadership.
                    break cache.lock().unwrap().get(key);
                }
            }
        };

        // Similarity tier: on an exact miss, a coarse-fingerprint
        // neighbour's winning guess seeds the cold search's first probe.
        // A hint is advisory — bisection stays correct from any starting
        // midpoint — so a stale neighbour costs probes, never
        // correctness.
        let hint = if cached.is_none() { cache.lock().unwrap().get_near(near_key) } else { None };
        let solved = solve_session_inner(cfg, inst, cached.as_ref(), hint);
        let outcome = solved.map(|(mut res, state)| {
            if res.report.replayed {
                self.hits.fetch_add(1, Ordering::Relaxed);
                res.report.stats.cache_hits += 1;
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                res.report.stats.cache_misses += 1;
                if hint.is_some() {
                    self.near_hits.fetch_add(1, Ordering::Relaxed);
                    res.report.stats.cache_near_hits += 1;
                }
            }
            if let Some(state) = state {
                let mut lru = cache.lock().unwrap();
                lru.put_near(near_key, state.chosen_guess);
                if lru.put(key, state) {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    res.report.stats.cache_evictions += 1;
                }
            }
            res
        });
        if leader {
            // Publish-then-release order matters: the state is in the
            // cache (above) before any waiter wakes, so followers hit.
            // Open the gate on the error path too — waiters must never
            // hang on a failed leader.
            if let Some(gate) = self.inflight.lock().unwrap().remove(&key) {
                *gate.0.lock().unwrap() = true;
                gate.1.notify_all();
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::gen;
    use bagsched_types::validate_schedule;

    /// Distinct uniform instances; `salt` shifts the generator seed so
    /// tests control how many unique fingerprints they create.
    fn inst(salt: u64) -> Instance {
        gen::uniform(40, 4, 12, 7 + salt)
    }

    #[test]
    fn cache_hit_replays_identical_schedule() {
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 4);
        let cold = solver.solve_instance(&inst(0)).unwrap();
        assert!(!cold.report.replayed);
        assert_eq!(cold.report.stats.cache_misses, 1);
        let warm = solver.solve_instance(&inst(0)).unwrap();
        assert!(warm.report.replayed, "second solve of the same shape must hit");
        assert_eq!(warm.report.stats.cache_hits, 1);
        assert_eq!(warm.schedule.assignment(), cold.schedule.assignment());
        assert_eq!(warm.makespan.to_bits(), cold.makespan.to_bits());
        assert_eq!(
            solver.cache_counters(),
            CacheCounters { hits: 1, misses: 1, evictions: 0, coalesced_waits: 0, near_hits: 0 }
        );
        validate_schedule(&inst(0), &warm.schedule).unwrap();
    }

    #[test]
    fn uncached_solver_records_nothing() {
        let solver = Solver::with_epsilon(0.5);
        let r = solver.solve_instance(&inst(0)).unwrap();
        assert_eq!(r.report.stats.cache_hits, 0);
        assert_eq!(r.report.stats.cache_misses, 0);
        assert_eq!(solver.cache_counters(), CacheCounters::default());
        assert_eq!(solver.cached_states(), 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 2);
        solver.solve_instance(&inst(0)).unwrap();
        solver.solve_instance(&inst(1)).unwrap();
        assert_eq!(solver.cached_states(), 2);
        // Third distinct shape evicts the least recently used (salt 0).
        let r = solver.solve_instance(&inst(2)).unwrap();
        assert_eq!(r.report.stats.cache_evictions, 1);
        assert_eq!(solver.cached_states(), 2);
        // Salt 1 and 2 still hit; salt 0 is gone and misses again.
        assert!(solver.solve_instance(&inst(1)).unwrap().report.replayed);
        assert!(solver.solve_instance(&inst(2)).unwrap().report.replayed);
        assert!(!solver.solve_instance(&inst(0)).unwrap().report.replayed);
        let c = solver.cache_counters();
        assert_eq!((c.hits, c.misses), (2, 4));
        assert_eq!(c.evictions, 2, "re-solving salt 0 evicts again at capacity");
    }

    #[test]
    fn lru_touch_on_hit_protects_entry() {
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 2);
        solver.solve_instance(&inst(0)).unwrap();
        solver.solve_instance(&inst(1)).unwrap();
        // Touch salt 0 so salt 1 becomes the eviction victim.
        assert!(solver.solve_instance(&inst(0)).unwrap().report.replayed);
        solver.solve_instance(&inst(2)).unwrap();
        assert!(solver.solve_instance(&inst(0)).unwrap().report.replayed, "touched entry survives");
    }

    #[test]
    fn wire_solve_answers_and_hits() {
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 4);
        let req = SolveRequest { id: 7, epsilon: 0.5, deadline_ms: None, instance: inst(0) };
        let cold = solver.solve(&req);
        assert!(cold.ok, "{:?}", cold.error);
        assert_eq!(cold.id, 7);
        assert!(!cold.cache_hit);
        assert_eq!(cold.assignment.len(), inst(0).num_jobs());
        let warm = solver.solve(&SolveRequest { id: 8, ..req });
        assert!(warm.ok);
        assert!(warm.cache_hit);
        assert_eq!(warm.assignment, cold.assignment);
        assert_eq!(warm.makespan.to_bits(), cold.makespan.to_bits());
    }

    #[test]
    fn wire_solve_rejects_bad_epsilon_and_infeasible() {
        let solver = Solver::with_epsilon(0.5);
        let bad_eps = solver.solve(&SolveRequest {
            id: 1,
            epsilon: 1.5,
            deadline_ms: None,
            instance: inst(0),
        });
        assert!(!bad_eps.ok);
        assert!(bad_eps.error.as_deref().unwrap().contains("epsilon"));
        let infeasible = Instance::new(&[(1.0, 0), (1.0, 0)], 1);
        let r = solver.solve(&SolveRequest {
            id: 2,
            epsilon: 0.5,
            deadline_ms: None,
            instance: infeasible,
        });
        assert!(!r.ok);
        assert!(r.error.is_some());
        assert!(r.assignment.is_empty());
    }

    #[test]
    fn concurrent_same_shape_requests_coalesce() {
        // Four threads race the same shape: exactly one solves cold, the
        // rest replay the leader's published state (whether they waited
        // on the gate or arrived after it closed).
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 4);
        let shape = inst(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let r = solver.solve_instance(&shape).unwrap();
                    validate_schedule(&shape, &r.schedule).unwrap();
                });
            }
        });
        let c = solver.cache_counters();
        assert_eq!(c.misses, 1, "one leader solves cold");
        assert_eq!(c.hits, 3, "followers replay the leader's state");
        assert!(c.coalesced_waits <= 3, "at most the three followers wait");
    }

    #[test]
    fn near_tier_seeds_similar_shape_and_stays_correct() {
        // Shape B is shape A with one job size jittered by a part in a
        // million: the exact fingerprint separates them (cold solve
        // required), the coarse one does not, so B's binary search
        // starts from A's cached winning guess.
        use bagsched_types::{coarse_fingerprint, fingerprint, JobId};
        let shape_a = inst(0);
        let jobs: Vec<(f64, u32)> = (0..shape_a.num_jobs())
            .map(|j| {
                let id = JobId(j as u32);
                let jitter = if j == 0 { 1.0 + 1e-6 } else { 1.0 };
                (shape_a.size(id) * jitter, shape_a.bag_of(id).0)
            })
            .collect();
        let shape_b = Instance::new(&jobs, shape_a.num_machines());
        assert_ne!(fingerprint(&shape_a, 0.5), fingerprint(&shape_b, 0.5));
        assert_eq!(
            coarse_fingerprint(&shape_a, 0.5),
            coarse_fingerprint(&shape_b, 0.5),
            "test premise: the shapes must share a coarse fingerprint"
        );
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 4);
        let a = solver.solve_instance(&shape_a).unwrap();
        assert_eq!(a.report.stats.cache_near_hits, 0, "nothing cached yet");
        let b = solver.solve_instance(&shape_b).unwrap();
        assert!(!b.report.replayed, "a near hit is still an exact miss");
        assert_eq!(b.report.stats.cache_misses, 1);
        assert_eq!(b.report.stats.cache_near_hits, 1, "A's guess must seed B's search");
        assert_eq!(solver.cache_counters().near_hits, 1);
        validate_schedule(&shape_b, &b.schedule).unwrap();
        // The hint only moves the search's first probe; the answer must
        // stay inside the same approximation envelope a cold solve of B
        // delivers.
        let cold = Solver::with_epsilon(0.5).solve_instance(&shape_b).unwrap();
        assert!(b.makespan <= cold.makespan * (1.0 + 0.5) + 1e-9);
    }

    #[test]
    fn per_request_epsilon_keys_the_cache() {
        // Same instance at a different epsilon must not replay the other
        // epsilon's state: the fingerprint folds epsilon in.
        let solver = Solver::with_cache(EptasConfig::with_epsilon(0.5), 4);
        let a = solver.solve(&SolveRequest {
            id: 1,
            epsilon: 0.5,
            deadline_ms: None,
            instance: inst(0),
        });
        let b = solver.solve(&SolveRequest {
            id: 2,
            epsilon: 0.4,
            deadline_ms: None,
            instance: inst(0),
        });
        assert!(a.ok && b.ok);
        assert!(!b.cache_hit, "different epsilon is a different cache key");
        let again = solver.solve(&SolveRequest {
            id: 3,
            epsilon: 0.4,
            deadline_ms: None,
            instance: inst(0),
        });
        assert!(again.cache_hit);
    }
}
