//! Job classification (paper §2.1, Lemma 1).
//!
//! Lemma 1: there is a `k <= 1/eps^2` such that the jobs with rounded
//! size in the band `[eps^{k+1}, eps^k)` have total size at most
//! `eps^2 * m` (pigeonhole over the disjoint bands, total load `<= m`
//! when the guess is achievable). Jobs in that band are *medium*, larger
//! jobs *large*, smaller jobs *small*; the medium band is thin enough to
//! be re-inserted later at `O(eps)` cost (Lemma 3).

use crate::rounding::Rounded;
use bagsched_types::EPS;

/// Class of a job at the chosen band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// `size >= eps^k`
    Large,
    /// `eps^{k+1} <= size < eps^k`
    Medium,
    /// `size < eps^{k+1}`
    Small,
}

/// The Lemma-1 band choice and per-job classes.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The chosen band index `k >= 1`.
    pub k: u32,
    /// `eps^k` — large jobs are at least this big.
    pub large_threshold: f64,
    /// `eps^{k+1}` — small jobs are strictly below this.
    pub medium_threshold: f64,
    /// Total rounded size of medium jobs (the band mass).
    pub medium_mass: f64,
    /// Whether the mass respects the Lemma-1 bound `eps^2 * m * (1+eps)`
    /// (it always does when the guess is achievable; recorded for the
    /// harness, not branched on).
    pub mass_within_bound: bool,
    /// Class per job.
    pub class: Vec<JobClass>,
}

impl Classification {
    /// Class of job index `j`.
    #[inline]
    pub fn of(&self, j: usize) -> JobClass {
        self.class[j]
    }

    /// Classify a single rounded size against the chosen thresholds.
    pub fn classify_size(&self, size: f64) -> JobClass {
        if size >= self.large_threshold - EPS {
            JobClass::Large
        } else if size >= self.medium_threshold - EPS {
            JobClass::Medium
        } else {
            JobClass::Small
        }
    }
}

/// Choose `k` per Lemma 1 and classify all jobs.
///
/// Prefers the *smallest* `k` whose band mass meets the bound: a small
/// `k` keeps `eps^{k+1}` large, which keeps the number of slots per
/// machine pattern — and with it the pattern space — small. If no band
/// meets the bound (possible only when the guess `T0` is below the true
/// optimum, or for `eps` close to 1 where the paper's premise `1/eps
/// integral` is stretched), the minimum-mass band is used and
/// `mass_within_bound` is set to `false`.
pub fn classify(rounded: &Rounded, m: usize) -> Classification {
    let eps = rounded.epsilon;
    let bands = ((1.0 / (eps * eps)).floor() as u32).max(1);
    let bound = eps * eps * m as f64 * (1.0 + eps) + EPS;

    // Mass per band k = 1..=bands.
    let mut mass = vec![0.0f64; bands as usize + 2];
    for &s in &rounded.size {
        // Find k with eps^{k+1} <= s < eps^k, i.e. k = floor(ln s / ln eps)
        // when s < 1; sizes >= eps^1 boundary handling via direct compare.
        if s >= eps.powi(1) - EPS {
            continue; // larger than every band: always large
        }
        let mut k = (s.ln() / eps.ln()).floor() as i64;
        // Guard float error at band edges; verify s in [eps^{k+1}, eps^k).
        while k > 0 && s < eps.powi(k as i32 + 1) - EPS {
            k += 1;
        }
        while k > 1 && s >= eps.powi(k as i32) - EPS {
            k -= 1;
        }
        if (1..=bands as i64).contains(&k) {
            mass[k as usize] += s;
        }
    }

    let mut chosen = None;
    for k in 1..=bands {
        if mass[k as usize] <= bound {
            chosen = Some(k);
            break;
        }
    }
    let (k, within) = match chosen {
        Some(k) => (k, true),
        None => {
            let k = (1..=bands)
                .min_by(|&a, &b| mass[a as usize].total_cmp(&mass[b as usize]))
                .expect("at least one band");
            (k, false)
        }
    };

    let large_threshold = eps.powi(k as i32);
    let medium_threshold = eps.powi(k as i32 + 1);
    let class = rounded
        .size
        .iter()
        .map(|&s| {
            if s >= large_threshold - EPS {
                JobClass::Large
            } else if s >= medium_threshold - EPS {
                JobClass::Medium
            } else {
                JobClass::Small
            }
        })
        .collect();

    Classification {
        k,
        large_threshold,
        medium_threshold,
        medium_mass: mass[k as usize],
        mass_within_bound: within,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounding::scale_and_round;

    fn classify_sizes(sizes: &[f64], m: usize, eps: f64) -> Classification {
        let r = scale_and_round(sizes, 1.0, eps).unwrap();
        classify(&r, m)
    }

    #[test]
    fn thresholds_partition_sizes() {
        let c = classify_sizes(&[0.9, 0.5, 0.3, 0.1, 0.01], 4, 0.5);
        // Whatever k was chosen, classes must be consistent with thresholds.
        assert!(c.large_threshold > c.medium_threshold);
        for (j, &s) in [0.9, 0.5, 0.3, 0.1, 0.01].iter().enumerate() {
            // Rounded size is >= original, so check with the rounded value.
            let class = c.of(j);
            match class {
                JobClass::Large => assert!(s * 1.5 >= c.large_threshold - 1e-9),
                JobClass::Medium => assert!(s * 1.5 >= c.medium_threshold - 1e-9),
                JobClass::Small => assert!(s < c.medium_threshold + 1e-9),
            }
        }
    }

    #[test]
    fn prefers_small_k_with_empty_band() {
        // All jobs large (0.9): band 1 (= [eps^2, eps) = [0.25, 0.5)) is
        // empty, so k = 1 is chosen.
        let c = classify_sizes(&[0.9, 0.9, 0.9], 4, 0.5);
        assert_eq!(c.k, 1);
        assert!(c.mass_within_bound);
        assert!(c.class.iter().all(|&cl| cl == JobClass::Large));
    }

    #[test]
    fn medium_band_mass_is_accounted() {
        // Pack the first band with lots of mass so k moves past it.
        // eps = 0.5, m = 2: bound = 0.25 * 2 * 1.5 = 0.75.
        // Sizes 0.3 (rounds to 0.444) in band 1 [0.25, 0.5); five of them
        // give mass 2.2 > 0.75, so k must skip to 2 if band 2 is light.
        let sizes = vec![0.3; 5];
        let c = classify_sizes(&sizes, 2, 0.5);
        assert!(c.k >= 2, "k = {} should skip the heavy band", c.k);
        assert!(c.mass_within_bound);
        // Those jobs are now large (size >= eps^2 = 0.25).
        assert!(c.class.iter().all(|&cl| cl == JobClass::Large));
    }

    #[test]
    fn classify_size_matches_per_job_classes() {
        let sizes = [0.8, 0.2, 0.04, 0.008];
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 3);
        for (j, &rs) in r.size.iter().enumerate() {
            assert_eq!(c.classify_size(rs), c.of(j));
        }
    }

    #[test]
    fn tiny_jobs_are_small() {
        let c = classify_sizes(&[1e-5, 1e-6], 2, 0.5);
        assert!(c.class.iter().all(|&cl| cl == JobClass::Small));
    }

    #[test]
    fn k_bounded_by_eps_squared() {
        for eps in [0.2, 0.4, 0.5, 0.8] {
            let sizes: Vec<f64> = (1..40).map(|i| i as f64 / 40.0).collect();
            let c = classify_sizes(&sizes, 8, eps);
            assert!(c.k as f64 <= (1.0 / (eps * eps)).floor().max(1.0));
        }
    }
}
