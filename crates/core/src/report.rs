//! Diagnostics and failure types shared by the pipeline phases.

use std::time::Duration;

/// Why a single makespan guess could not be turned into a schedule.
///
/// `Infeasible` proves the guess is below the achievable makespan (up to
/// the relaxations of the pipeline); the budget/heuristic variants are
/// inconclusive — the driver treats both as "raise the guess" and falls
/// back to the LPT schedule if even the largest guess fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuessFailure {
    /// A single job exceeds the guess: certainly infeasible.
    JobTooLarge,
    /// The pattern MILP is infeasible: no schedule of height `T` exists.
    MilpInfeasible,
    /// Pattern enumeration exceeded its budget (inconclusive).
    PatternBudget,
    /// The MILP solver exhausted its node/time budget (inconclusive).
    MilpBudget,
    /// The two-stage small-job placement could not realize the `y`
    /// assignment (inconclusive; the joint path would have been exact).
    SmallPlacement,
    /// The Lemma-7 swap repair found no partner (cannot happen at paper
    /// constants; possible under a forced small `priority_cap`).
    SwapRepair,
    /// The Lemma-3 flow could not place all medium jobs (inconclusive
    /// outside the paper's parameter regime).
    MediumFlow,
    /// The large-slot placement found a bag/supply mismatch between the
    /// de-classed MILP solution and the transformed instance
    /// (inconclusive; formerly a process-aborting panic).
    LargePlacement,
    /// The column-generation pricing loop stalled before converging and
    /// no fallback was requested (inconclusive; only the explicit
    /// pricing strategies report this — the auto path falls back to
    /// eager enumeration instead).
    PricingStalled,
    /// A cached replay seed did not match the instance it was replayed
    /// against — the fingerprint collided or the cached symbol space
    /// drifted. Inconclusive by construction: the caller falls back to
    /// the cold search, so a collision costs time, never correctness.
    SeedMismatch,
    /// The guess was cancelled cooperatively before reaching a verdict —
    /// by the portfolio deadline ([`portfolio_deadline_ms`]) or by the
    /// speculation controller abandoning an off-path probe. Inconclusive
    /// in a special way: unlike the budget variants the driver must
    /// *not* raise the search on it (the guess was never refuted, only
    /// interrupted), so a deadline cancellation stops the search and a
    /// speculative one is simply discarded.
    ///
    /// [`portfolio_deadline_ms`]: crate::EptasConfig::portfolio_deadline_ms
    Cancelled,
}

impl std::fmt::Display for GuessFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GuessFailure::JobTooLarge => "a job exceeds the makespan guess",
            GuessFailure::MilpInfeasible => "pattern MILP infeasible at this guess",
            GuessFailure::PatternBudget => "pattern enumeration budget exhausted",
            GuessFailure::MilpBudget => "MILP solver budget exhausted",
            GuessFailure::SmallPlacement => "two-stage small-job placement failed",
            GuessFailure::SwapRepair => "large-job swap repair found no partner",
            GuessFailure::MediumFlow => "medium-job reinsertion flow incomplete",
            GuessFailure::LargePlacement => "large-slot placement hit a bag/supply mismatch",
            GuessFailure::PricingStalled => "column-generation pricing stalled",
            GuessFailure::SeedMismatch => "cached replay seed does not match the instance",
            GuessFailure::Cancelled => "guess cancelled by the deadline or speculation controller",
        };
        f.write_str(s)
    }
}

/// Monotone work counters accumulated over an entire [`Eptas::solve`]
/// call — every guess of the binary search, *including failed ones* — so
/// that wall-clock deltas measured by the bench harness are attributable
/// to algorithmic work rather than noise. All counters only ever grow;
/// [`Stats::add`] merges the counters of several solves (the experiment
/// harness sums them per table).
///
/// [`Eptas::solve`]: crate::Eptas::solve
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Machine patterns enumerated by the Definition-3 DFS.
    pub patterns_enumerated: u64,
    /// Simplex pivots across every LP relaxation solved.
    pub simplex_pivots: u64,
    /// LP solves: one per branch-and-bound node *plus* one per master-LP
    /// re-solve inside the column-generation pricing loop — which is why
    /// this counter exceeds `milp_nodes` on priced instances.
    pub lp_solves: u64,
    /// Branch-and-bound nodes explored by the pattern MILP.
    pub milp_nodes: u64,
    /// Augmenting paths pushed by the Lemma-3 medium reinsertion flow.
    pub flow_augmentations: u64,
    /// Repair operations: Lemma-7 swaps + Lemma-11 origin-chain moves +
    /// Lemma-4 filler swaps.
    pub swap_repair_rounds: u64,
    /// Medium jobs re-inserted by the Lemma-3 flow.
    pub mediums_reinserted: u64,
    /// Pricing rounds (master-LP solve + pricing DFS) of the
    /// column-generation loop, terminal convergence checks included.
    pub pricing_rounds: u64,
    /// Pattern columns priced into the master by the pricing DFS (seed
    /// patterns count as `patterns_enumerated`).
    pub columns_generated: u64,
    /// Nodes explored by the bounded-knapsack pricing DFS.
    pub pricing_dfs_nodes: u64,
    /// Bag classes (identical-profile groups of priority bags) the
    /// pricing stack was keyed on, summed over guesses. Equals the
    /// priority-bag count when class aggregation is off.
    pub bag_classes: u64,
    /// Slot symbols after class aggregation — the master-LP covering
    /// rows actually carried — summed over guesses. The per-bag symbol
    /// count of the same instance is what the pre-aggregation master
    /// would have carried.
    pub symbols_after_aggregation: u64,
    /// Estimated pivots the warm-started master re-solves skipped: per
    /// warm re-solve, the last cold solve's pivot count minus the warm
    /// pivot count (floored at zero).
    pub warm_start_pivots_saved: u64,
    /// Dual-simplex pivots spent re-optimizing warm branch-and-bound
    /// node LPs (a subset of `simplex_pivots`): the actual cost of the
    /// branching bound changes, paid instead of cold node solves.
    pub dual_pivots: u64,
    /// Branch-and-bound node LPs that started from the parent basis via
    /// the dual engine instead of a cold phase-1/phase-2 solve. A
    /// savings-style counter: growth means warm starts engage more, and
    /// the bench growth gate exempts it.
    pub node_warm_starts: u64,
    /// Pattern columns priced *inside* the branch-and-bound tree against
    /// node duals and grafted into the restricted MILP (distinct from
    /// `columns_generated`, which counts root master-LP pricing).
    pub tree_columns_generated: u64,
    /// Basis refactorizations of the revised simplex: eta-file rebuilds
    /// from the sparse basis columns (every `refactor_interval` pivots).
    pub basis_refactorizations: u64,
    /// Eta updates of the revised simplex: factorized basis changes, one
    /// per pivot between refactorizations.
    pub eta_updates: u64,
    /// Master columns physically purged from the model (nonbasic with
    /// reduced cost above the purge threshold for `PURGE_PATIENCE`
    /// consecutive re-solves).
    pub columns_purged: u64,
    /// Purged columns re-admitted because they priced negative under
    /// later master duals. A savings-style counter like
    /// `node_warm_starts`: growth means the lifecycle guard engages.
    pub columns_readmitted: u64,
    /// Solves that returned the LPT fallback schedule because every
    /// makespan guess failed. An *assertion* counter: the gate tolerates
    /// zero growth — any regression to the fallback on a previously
    /// solved cell is a failure, not noise.
    pub lpt_fallbacks: u64,
    /// Solves answered by replaying cached solver state (chosen guess +
    /// pattern pool + root basis) instead of the cold guess search. A
    /// savings-style counter like `node_warm_starts`: growth means the
    /// cross-request cache engages.
    pub cache_hits: u64,
    /// Solves that ran the cold guess search: no cached state for the
    /// instance fingerprint, or the replay attempt failed validation.
    pub cache_misses: u64,
    /// Cached solver states evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Pricing DFS shards run by sharded pricing rounds: each round with
    /// [`pricing_shards`] `> 1` adds the shard count. Zero on the
    /// classic single-DFS path. Deterministic for fixed knobs — the
    /// thread count executing the shards never changes it.
    ///
    /// [`pricing_shards`]: crate::EptasConfig::pricing_shards
    pub pricing_shards_run: u64,
    /// Guesses entered into a speculative binary-search window (the
    /// probed midpoint plus its predicted successors). Structural: the
    /// count depends only on the prediction-tree shape, never on which
    /// speculative probes actually got to run, so it is thread-count
    /// invariant. A savings-style counter — growth means speculation
    /// engaged.
    pub speculative_guesses_launched: u64,
    /// Speculative probes whose verdict was committed *beyond* the one
    /// the sequential search would have probed next — search steps the
    /// window resolved for free. Savings-style.
    pub speculative_wins: u64,
    /// Speculative probes abandoned because the committed verdict path
    /// turned away from them (launched − committed, per window).
    /// Structural and thread-count invariant, like
    /// [`speculative_guesses_launched`](Stats::speculative_guesses_launched).
    pub guesses_cancelled: u64,
    /// Solves where the portfolio deadline fired and the bag-aware-LPT
    /// arm beat every committed guess — the race was won by the
    /// fallback, not the EPTAS pipeline. Zero unless
    /// [`portfolio_deadline_ms`] is set.
    ///
    /// [`portfolio_deadline_ms`]: crate::EptasConfig::portfolio_deadline_ms
    pub portfolio_winner: u64,
    /// Coarse bag classes formed when the template-quantized attempt
    /// engaged ([`class_coarsening`]), summed over guesses. Zero when
    /// every guess was settled by the exact-class (or per-bag) path.
    ///
    /// [`class_coarsening`]: crate::EptasConfig::class_coarsening
    pub coarse_classes_formed: u64,
    /// Surplus jobs re-placed by the declass repair pass: member-bag
    /// jobs beyond the coarse representative's minimum that the
    /// class-level solution did not carry slots for.
    pub repair_jobs_moved: u64,
    /// Declass repair passes that could not place every surplus job and
    /// failed the guess loudly (the driver falls back per-guess; never
    /// a wrong schedule).
    pub repair_failures: u64,
    /// Cache misses answered by the similarity tier: the exact
    /// fingerprint missed but a coarse-fingerprint neighbour seeded the
    /// binary search's first probe with its chosen guess. A
    /// savings-style counter like `node_warm_starts`: growth means the
    /// near tier engages.
    pub cache_near_hits: u64,
}

impl Stats {
    /// Accumulate another solve's counters into this one.
    pub fn add(&mut self, other: &Stats) {
        self.patterns_enumerated += other.patterns_enumerated;
        self.simplex_pivots += other.simplex_pivots;
        self.lp_solves += other.lp_solves;
        self.milp_nodes += other.milp_nodes;
        self.flow_augmentations += other.flow_augmentations;
        self.swap_repair_rounds += other.swap_repair_rounds;
        self.mediums_reinserted += other.mediums_reinserted;
        self.pricing_rounds += other.pricing_rounds;
        self.columns_generated += other.columns_generated;
        self.pricing_dfs_nodes += other.pricing_dfs_nodes;
        self.bag_classes += other.bag_classes;
        self.symbols_after_aggregation += other.symbols_after_aggregation;
        self.warm_start_pivots_saved += other.warm_start_pivots_saved;
        self.dual_pivots += other.dual_pivots;
        self.node_warm_starts += other.node_warm_starts;
        self.tree_columns_generated += other.tree_columns_generated;
        self.basis_refactorizations += other.basis_refactorizations;
        self.eta_updates += other.eta_updates;
        self.columns_purged += other.columns_purged;
        self.columns_readmitted += other.columns_readmitted;
        self.lpt_fallbacks += other.lpt_fallbacks;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.pricing_shards_run += other.pricing_shards_run;
        self.speculative_guesses_launched += other.speculative_guesses_launched;
        self.speculative_wins += other.speculative_wins;
        self.guesses_cancelled += other.guesses_cancelled;
        self.portfolio_winner += other.portfolio_winner;
        self.coarse_classes_formed += other.coarse_classes_formed;
        self.repair_jobs_moved += other.repair_jobs_moved;
        self.repair_failures += other.repair_failures;
        self.cache_near_hits += other.cache_near_hits;
    }

    /// The counters as `(name, value)` pairs, in schema order. The bench
    /// JSON emitter and the CLI both render from this single source so the
    /// on-disk schema cannot drift from the struct.
    pub fn named(&self) -> [(&'static str, u64); 33] {
        [
            ("patterns_enumerated", self.patterns_enumerated),
            ("simplex_pivots", self.simplex_pivots),
            ("lp_solves", self.lp_solves),
            ("milp_nodes", self.milp_nodes),
            ("flow_augmentations", self.flow_augmentations),
            ("swap_repair_rounds", self.swap_repair_rounds),
            ("mediums_reinserted", self.mediums_reinserted),
            ("pricing_rounds", self.pricing_rounds),
            ("columns_generated", self.columns_generated),
            ("pricing_dfs_nodes", self.pricing_dfs_nodes),
            ("bag_classes", self.bag_classes),
            ("symbols_after_aggregation", self.symbols_after_aggregation),
            ("warm_start_pivots_saved", self.warm_start_pivots_saved),
            ("dual_pivots", self.dual_pivots),
            ("node_warm_starts", self.node_warm_starts),
            ("tree_columns_generated", self.tree_columns_generated),
            ("basis_refactorizations", self.basis_refactorizations),
            ("eta_updates", self.eta_updates),
            ("columns_purged", self.columns_purged),
            ("columns_readmitted", self.columns_readmitted),
            ("lpt_fallbacks", self.lpt_fallbacks),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("pricing_shards_run", self.pricing_shards_run),
            ("speculative_guesses_launched", self.speculative_guesses_launched),
            ("speculative_wins", self.speculative_wins),
            ("guesses_cancelled", self.guesses_cancelled),
            ("portfolio_winner", self.portfolio_winner),
            ("coarse_classes_formed", self.coarse_classes_formed),
            ("repair_jobs_moved", self.repair_jobs_moved),
            ("repair_failures", self.repair_failures),
            ("cache_near_hits", self.cache_near_hits),
        ]
    }
}

/// Per-run diagnostics of the EPTAS, consumed by the experiment harness
/// and the ablation benches.
#[derive(Debug, Clone, Default)]
pub struct EptasReport {
    /// Makespan guesses attempted by the binary search.
    pub guesses_tried: usize,
    /// The accepted guess `T0` (unscaled), if any guess succeeded.
    pub chosen_guess: Option<f64>,
    /// Certified lower bound used to seed the search.
    pub lower_bound: f64,
    /// Makespan of the LPT schedule that seeds the upper bound.
    pub lpt_upper_bound: f64,
    /// Statistics of the successful guess (if any).
    pub last_success: Option<GuessStats>,
    /// Failures per guess, in trial order.
    pub failures: Vec<(f64, GuessFailure)>,
    /// `true` when no guess succeeded and the LPT schedule was returned.
    pub fell_back_to_lpt: bool,
    /// Conflicts resolved by the *final safety net* (moving a job to the
    /// least-loaded conflict-free machine). Zero on the paper path; any
    /// positive value means a phase left a conflict behind.
    pub safety_net_moves: usize,
    /// Aggregate work counters across every guess (failed ones included).
    pub stats: Stats,
    /// `true` when the schedule came from replaying cached solver state
    /// (see [`Solver::solve_session`](crate::Solver::solve_session))
    /// instead of the cold binary search.
    pub replayed: bool,
    /// Total wall-clock of the solve.
    pub elapsed: Duration,
    /// Aggregated phase timings for this solve, present only when the
    /// caller installed an [`obs::Recorder`](bagsched_types::obs::Recorder)
    /// around it. Wall times in here are nondeterministic (they are
    /// redacted wherever reports are byte-compared, like
    /// [`elapsed`](EptasReport::elapsed)); the per-phase *counts* are
    /// structural and thread-count invariant.
    pub profile: Option<bagsched_types::obs::PhaseProfile>,
}

/// Statistics of one successful guess.
#[derive(Debug, Clone, Default)]
pub struct GuessStats {
    /// Number of enumerated patterns.
    pub patterns: usize,
    /// Number of slot symbols.
    pub symbols: usize,
    /// Number of priority bags (transformed instance).
    pub priority_bags: usize,
    /// Whether the joint (paper-faithful) MILP was used, as opposed to
    /// the two-stage x-MILP + greedy-y path.
    pub joint_milp: bool,
    /// Branch-and-bound nodes of the MILP solve.
    pub milp_nodes: usize,
    /// Simplex iterations of the MILP solve.
    pub lp_iterations: usize,
    /// Lemma-7 swaps performed while placing wildcard large jobs.
    pub lemma7_swaps: usize,
    /// Lemma-11 origin-chain moves while repairing small-job conflicts.
    pub lemma11_moves: usize,
    /// Lemma-4 filler swaps while undoing the transformation.
    pub lemma4_swaps: usize,
    /// Medium jobs re-inserted by the Lemma-3 flow.
    pub medium_reinserted: usize,
    /// Filler jobs that existed in the transformed instance.
    pub filler_jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_display() {
        assert!(GuessFailure::MilpInfeasible.to_string().contains("MILP"));
        assert!(GuessFailure::JobTooLarge.to_string().contains("guess"));
    }

    #[test]
    fn default_report_is_clean() {
        let r = EptasReport::default();
        assert_eq!(r.safety_net_moves, 0);
        assert!(!r.fell_back_to_lpt);
        assert!(r.last_success.is_none());
        assert_eq!(r.stats, Stats::default());
    }

    #[test]
    fn stats_add_is_fieldwise() {
        let mut a = Stats {
            patterns_enumerated: 1,
            simplex_pivots: 2,
            lp_solves: 3,
            milp_nodes: 4,
            flow_augmentations: 5,
            swap_repair_rounds: 6,
            mediums_reinserted: 7,
            pricing_rounds: 8,
            columns_generated: 9,
            pricing_dfs_nodes: 10,
            bag_classes: 11,
            symbols_after_aggregation: 12,
            warm_start_pivots_saved: 13,
            dual_pivots: 14,
            node_warm_starts: 15,
            tree_columns_generated: 16,
            basis_refactorizations: 17,
            eta_updates: 18,
            columns_purged: 19,
            columns_readmitted: 20,
            lpt_fallbacks: 21,
            cache_hits: 22,
            cache_misses: 23,
            cache_evictions: 24,
            pricing_shards_run: 25,
            speculative_guesses_launched: 26,
            speculative_wins: 27,
            guesses_cancelled: 28,
            portfolio_winner: 29,
            coarse_classes_formed: 30,
            repair_jobs_moved: 31,
            repair_failures: 32,
            cache_near_hits: 33,
        };
        let b = a;
        a.add(&b);
        for ((_, doubled), (_, orig)) in a.named().iter().zip(b.named().iter()) {
            assert_eq!(*doubled, 2 * orig);
        }
    }

    #[test]
    fn named_covers_every_field() {
        // `named()` drives the bench JSON schema; a field added to Stats
        // without a `named()` entry would silently vanish from reports.
        // Debug-print the struct and check each field name appears.
        let dbg = format!("{:?}", Stats::default());
        for (name, _) in Stats::default().named() {
            assert!(dbg.contains(name), "named() and Stats disagree on {name}");
        }
        let field_count = dbg.matches(':').count();
        assert_eq!(field_count, Stats::default().named().len());
    }
}
