//! Diagnostics and failure types shared by the pipeline phases.

use std::time::Duration;

/// Why a single makespan guess could not be turned into a schedule.
///
/// `Infeasible` proves the guess is below the achievable makespan (up to
/// the relaxations of the pipeline); the budget/heuristic variants are
/// inconclusive — the driver treats both as "raise the guess" and falls
/// back to the LPT schedule if even the largest guess fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuessFailure {
    /// A single job exceeds the guess: certainly infeasible.
    JobTooLarge,
    /// The pattern MILP is infeasible: no schedule of height `T` exists.
    MilpInfeasible,
    /// Pattern enumeration exceeded its budget (inconclusive).
    PatternBudget,
    /// The MILP solver exhausted its node/time budget (inconclusive).
    MilpBudget,
    /// The two-stage small-job placement could not realize the `y`
    /// assignment (inconclusive; the joint path would have been exact).
    SmallPlacement,
    /// The Lemma-7 swap repair found no partner (cannot happen at paper
    /// constants; possible under a forced small `priority_cap`).
    SwapRepair,
    /// The Lemma-3 flow could not place all medium jobs (inconclusive
    /// outside the paper's parameter regime).
    MediumFlow,
}

impl std::fmt::Display for GuessFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GuessFailure::JobTooLarge => "a job exceeds the makespan guess",
            GuessFailure::MilpInfeasible => "pattern MILP infeasible at this guess",
            GuessFailure::PatternBudget => "pattern enumeration budget exhausted",
            GuessFailure::MilpBudget => "MILP solver budget exhausted",
            GuessFailure::SmallPlacement => "two-stage small-job placement failed",
            GuessFailure::SwapRepair => "large-job swap repair found no partner",
            GuessFailure::MediumFlow => "medium-job reinsertion flow incomplete",
        };
        f.write_str(s)
    }
}

/// Per-run diagnostics of the EPTAS, consumed by the experiment harness
/// and the ablation benches.
#[derive(Debug, Clone, Default)]
pub struct EptasReport {
    /// Makespan guesses attempted by the binary search.
    pub guesses_tried: usize,
    /// The accepted guess `T0` (unscaled), if any guess succeeded.
    pub chosen_guess: Option<f64>,
    /// Certified lower bound used to seed the search.
    pub lower_bound: f64,
    /// Makespan of the LPT schedule that seeds the upper bound.
    pub lpt_upper_bound: f64,
    /// Statistics of the successful guess (if any).
    pub last_success: Option<GuessStats>,
    /// Failures per guess, in trial order.
    pub failures: Vec<(f64, GuessFailure)>,
    /// `true` when no guess succeeded and the LPT schedule was returned.
    pub fell_back_to_lpt: bool,
    /// Conflicts resolved by the *final safety net* (moving a job to the
    /// least-loaded conflict-free machine). Zero on the paper path; any
    /// positive value means a phase left a conflict behind.
    pub safety_net_moves: usize,
    /// Total wall-clock of the solve.
    pub elapsed: Duration,
}

/// Statistics of one successful guess.
#[derive(Debug, Clone, Default)]
pub struct GuessStats {
    /// Number of enumerated patterns.
    pub patterns: usize,
    /// Number of slot symbols.
    pub symbols: usize,
    /// Number of priority bags (transformed instance).
    pub priority_bags: usize,
    /// Whether the joint (paper-faithful) MILP was used, as opposed to
    /// the two-stage x-MILP + greedy-y path.
    pub joint_milp: bool,
    /// Branch-and-bound nodes of the MILP solve.
    pub milp_nodes: usize,
    /// Simplex iterations of the MILP solve.
    pub lp_iterations: usize,
    /// Lemma-7 swaps performed while placing wildcard large jobs.
    pub lemma7_swaps: usize,
    /// Lemma-11 origin-chain moves while repairing small-job conflicts.
    pub lemma11_moves: usize,
    /// Lemma-4 filler swaps while undoing the transformation.
    pub lemma4_swaps: usize,
    /// Medium jobs re-inserted by the Lemma-3 flow.
    pub medium_reinserted: usize,
    /// Filler jobs that existed in the transformed instance.
    pub filler_jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_display() {
        assert!(GuessFailure::MilpInfeasible.to_string().contains("MILP"));
        assert!(GuessFailure::JobTooLarge.to_string().contains("guess"));
    }

    #[test]
    fn default_report_is_clean() {
        let r = EptasReport::default();
        assert_eq!(r.safety_net_moves, 0);
        assert!(!r.fell_back_to_lpt);
        assert!(r.last_success.is_none());
    }
}
