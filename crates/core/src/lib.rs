//! # The EPTAS for machine scheduling with bag-constraints
//!
//! A faithful implementation of Grage, Jansen & Klein (SPAA 2019,
//! arXiv:1810.07510): a `(1 + eps)`-approximation for makespan
//! minimization on identical machines where the jobs are partitioned into
//! *bags* and no machine may run two jobs of the same bag — in time
//! `f(1/eps) * poly(n)`.
//!
//! ## Pipeline (one makespan guess `T0`, driven by binary search)
//!
//! 1. [`rounding`] — scale so `T0 = 1`, round processing times up to
//!    powers of `(1 + eps)` (optimum becomes `<= 1 + eps`).
//! 2. [`classify`] — Lemma 1: choose the size band `[eps^{k+1}, eps^k)`
//!    with negligible mass; jobs split into large / medium / small.
//! 3. [`priority`] — Definitions 1–2: the constant-many *priority bags*
//!    whose bag-constraints the MILP honours exactly.
//! 4. [`transform`] — §2.2: split every non-priority bag into a small-job
//!    side (padded with *filler jobs*) and a large-job side; set aside its
//!    medium jobs (optimum grows to `T = 1 + 2eps + eps^2`, Lemma 2).
//! 5. [`pattern`] + [`pricing`] — Definition 3: machine patterns of
//!    large/medium slots, generated lazily by column-generation pricing
//!    against the master-LP duals; eager enumeration remains the
//!    cross-validation oracle and stall fallback.
//! 6. [`milp_model`] — the configuration MILP (constraints (1)–(5)) with
//!    integral pattern counts over the generated pool, solved by
//!    `bagsched-milp`.
//! 7. [`assign_large`] + [`swap_repair`] — Lemma 7: place large/medium
//!    jobs into slots; repair non-priority conflicts by size-preserving
//!    swaps.
//! 8. [`small`] — §4: priority-bag small jobs per pattern group
//!    (fractional merge of Corollary 1, bag-LPT, slot rounding of
//!    Lemma 10, origin-chain conflict repair of Lemma 11); non-priority
//!    small jobs by group-bag-LPT (Lemma 9).
//! 9. [`medium_flow`] — Lemma 3: reinsert the set-aside medium jobs via
//!    an integral max-flow.
//! 10. [`undo`] — Lemma 4: merge bag pairs back, swap conflicting real
//!     small jobs with filler jobs, drop fillers.
//!
//! The top-level driver wraps the pipeline in the dual-approximation
//! binary search and guarantees the returned schedule is feasible (a
//! final safety net repairs anything the paper path left behind —
//! [`report::EptasReport::safety_net_moves`] counts how often that was
//! needed; tests pin it to zero on the paper path).
//!
//! The public entry point is the session-oriented [`Solver`]: it owns
//! the configuration, optionally a bounded cache of per-shape
//! [`SolverState`] handles, and replays cached state (winning guess,
//! pattern pool, warm basis) on structurally identical requests. The
//! one-shot [`Eptas`] facade remains as a deprecated shim.

pub mod assign_large;
pub mod classes;
pub mod classify;
pub mod config;
pub mod declass;
pub mod driver;
pub mod medium_flow;
pub mod milp_model;
pub mod par;
pub mod pattern;
pub mod pricing;
pub mod priority;
pub mod report;
pub mod rounding;
pub mod small;
pub mod solver;
pub mod swap_repair;
pub mod transform;
pub mod undo;

/// Observability primitives (re-exported from `bagsched_types::obs` so
/// the substrate crates can share them): install a
/// [`Recorder`](obs::Recorder) around a solve to collect phase spans,
/// an aggregated [`PhaseProfile`](obs::PhaseProfile) and a Chrome
/// trace. With no recorder installed the instrumentation is inert.
pub use bagsched_types::obs;

pub use config::EptasConfig;
#[allow(deprecated)]
pub use driver::Eptas;
pub use driver::{EptasError, EptasResult};
pub use milp_model::{PatternSolution, PatternSolve, PatternStrategy, ReplaySeed};
pub use report::{EptasReport, Stats};
pub use solver::{CacheCounters, Solver, SolverState};
