//! Undoing the instance transformation (paper Lemma 4, Figure 3).
//!
//! The transformed solution separates each modified bag into a small side
//! and a large side, so merging them back can put a real small job next
//! to a large/medium job of the same original bag. For every such
//! conflict a *filler job* of the bag sits on some machine free of the
//! bag's large/medium jobs (the counting argument of Lemma 4: there are
//! as many fillers as large/medium jobs, and at most that many
//! conflicts); swapping the real small job with that filler resolves the
//! conflict without raising the makespan, because the filler is at least
//! as tall as any real small job of the bag. Dropping all fillers then
//! yields a feasible schedule for the original instance.

use crate::assign_large::WorkState;
use crate::report::GuessFailure;
use crate::transform::Transformed;
use bagsched_types::{Instance, JobId, MachineId, Schedule};
use std::collections::HashMap;

/// Convert the transformed-solution state into a schedule for the
/// original instance. Returns the schedule and the number of Lemma-4
/// filler swaps performed.
///
/// `medium_assign` carries the Lemma-3 placements of the set-aside
/// medium jobs. The Lemma-4 counting argument guarantees a free filler
/// for every conflict at paper constants; a state that violates it
/// (possible under forced non-paper configurations) fails the guess
/// instead of panicking.
pub fn undo_transform(
    inst: &Instance,
    trans: &Transformed,
    state: &WorkState,
    medium_assign: &[(JobId, MachineId)],
) -> Result<(Schedule, usize), GuessFailure> {
    let m = inst.num_machines();

    // Working machine per original job.
    let mut machine: Vec<Option<MachineId>> = vec![None; inst.num_jobs()];
    for (oj, tj) in trans.from_orig.iter().enumerate() {
        if let Some(tj) = tj {
            machine[oj] = state.machine_of[tj.idx()];
        }
    }
    for &(oj, mid) in medium_assign {
        machine[oj.idx()] = Some(mid);
    }

    // Fillers by original bag: (filler tinst job, its machine).
    let mut fillers: HashMap<usize, Vec<MachineId>> = HashMap::new();
    for (tj, ff) in trans.filler_for.iter().enumerate() {
        if let Some(orig) = ff {
            if let Some(mid) = state.machine_of[tj] {
                fillers.entry(inst.bag_of(*orig).idx()).or_default().push(mid);
            }
        }
    }

    // Per (machine, modified bag): does it hold a large/medium job?
    let mut ml_here: HashMap<(u32, usize), bool> = HashMap::new();
    for job in inst.jobs() {
        let l = job.bag.idx();
        if !trans.was_modified[l] {
            continue;
        }
        // Large jobs (mapped) and mediums (reinserted) of modified bags.
        let is_ml = trans.removed_medium.contains(&job.id)
            || trans.from_orig[job.id.idx()]
                .is_some_and(|tj| trans.tclass[tj.idx()] != crate::classify::JobClass::Small);
        if is_ml {
            if let Some(mid) = machine[job.id.idx()] {
                ml_here.insert((mid.0, l), true);
            }
        }
    }

    // Resolve conflicts: real small job sharing a machine with a
    // large/medium job of the same modified bag.
    let mut swaps = 0usize;
    for job in inst.jobs() {
        let l = job.bag.idx();
        if !trans.was_modified[l] {
            continue;
        }
        let Some(tj) = trans.from_orig[job.id.idx()] else { continue };
        if trans.tclass[tj.idx()] != crate::classify::JobClass::Small {
            continue;
        }
        let Some(here) = machine[job.id.idx()] else { continue };
        if !ml_here.get(&(here.0, l)).copied().unwrap_or(false) {
            continue;
        }
        // Conflict: find a filler of bag l on a machine free of bag l's
        // large/medium jobs.
        let Some(pool) = fillers.get_mut(&l) else {
            return Err(GuessFailure::SwapRepair);
        };
        let Some(pick) =
            pool.iter().position(|fm| !ml_here.get(&(fm.0, l)).copied().unwrap_or(false))
        else {
            return Err(GuessFailure::SwapRepair);
        };
        let target = pool[pick];
        // Swap: the real small job moves to the filler's machine; the
        // filler conceptually moves here (and will be dropped).
        machine[job.id.idx()] = Some(target);
        pool[pick] = here;
        swaps += 1;
    }

    let mut assignment: Vec<MachineId> = Vec::with_capacity(machine.len());
    for mo in machine {
        // An unplaced original job means an upstream phase dropped one;
        // the guess fails and the driver falls back.
        let Some(mid) = mo else {
            return Err(GuessFailure::LargePlacement);
        };
        assignment.push(mid);
    }
    Ok((Schedule::from_assignment(assignment, m), swaps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;

    /// Instance with one modified bag (bag 1: large + smalls) and a
    /// priority hog bag 0.
    fn fixture() -> (Instance, Transformed) {
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.05, 1), (0.01, 1)];
        let inst = Instance::new(&jobs, 3);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 3);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        assert!(t.was_modified[1]);
        (inst, t)
    }

    fn tjob_of(t: &Transformed, orig: u32) -> JobId {
        t.from_orig[orig as usize].unwrap()
    }

    fn filler_of(t: &Transformed, orig: u32) -> JobId {
        (0..t.tinst.num_jobs())
            .find(|&j| t.filler_for[j] == Some(JobId(orig)))
            .map(|j| JobId(j as u32))
            .unwrap()
    }

    #[test]
    fn conflict_free_solution_passes_through() {
        let (inst, t) = fixture();
        let mut state = WorkState::new(t.tinst.num_jobs(), 3);
        // Machine 0: both priority larges? No — same bag; use 0 and 1.
        state.place(&t, tjob_of(&t, 0), MachineId(0));
        state.place(&t, tjob_of(&t, 1), MachineId(1));
        state.place(&t, tjob_of(&t, 2), MachineId(2)); // bag 1 large
        state.place(&t, tjob_of(&t, 3), MachineId(0)); // bag 1 small
        state.place(&t, tjob_of(&t, 4), MachineId(1)); // bag 1 small
        state.place(&t, filler_of(&t, 2), MachineId(2)); // filler next to its large: fine
        let (sched, swaps) = undo_transform(&inst, &t, &state, &[]).unwrap();
        assert_eq!(swaps, 0);
        assert!(sched.is_feasible(&inst));
        assert_eq!(sched.machine_of(JobId(3)), MachineId(0));
    }

    #[test]
    fn conflicting_small_swapped_with_filler() {
        let (inst, t) = fixture();
        let mut state = WorkState::new(t.tinst.num_jobs(), 3);
        state.place(&t, tjob_of(&t, 0), MachineId(0));
        state.place(&t, tjob_of(&t, 1), MachineId(1));
        state.place(&t, tjob_of(&t, 2), MachineId(2)); // bag 1 large on m2
        state.place(&t, tjob_of(&t, 3), MachineId(2)); // bag 1 small on m2: conflict in I
        state.place(&t, tjob_of(&t, 4), MachineId(1));
        state.place(&t, filler_of(&t, 2), MachineId(0)); // filler on free machine
        let (sched, swaps) = undo_transform(&inst, &t, &state, &[]).unwrap();
        assert_eq!(swaps, 1);
        assert!(sched.is_feasible(&inst));
        // The small job took the filler's machine.
        assert_eq!(sched.machine_of(JobId(3)), MachineId(0));
    }

    #[test]
    fn medium_assignment_lands_in_schedule() {
        // Reuse the medium fixture from medium_flow: simpler — hand-build.
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 1), (0.05, 1), (0.01, 1)];
        let (inst, t) = {
            let inst = Instance::new(&jobs, 3);
            let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
            let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
            let c = classify(&r, 3);
            let mut cfg = EptasConfig::with_epsilon(0.5);
            cfg.priority_cap = Some(1);
            let p = select_priority(&inst, &r, &c, &cfg);
            (inst.clone(), transform(&inst, &r, &c, &p))
        };
        let mut state = WorkState::new(t.tinst.num_jobs(), 3);
        for oj in [0u32, 1, 2, 3, 4] {
            if let Some(tj) = t.from_orig[oj as usize] {
                state.place(&t, tj, MachineId(oj % 3));
            }
        }
        state.place(&t, filler_of(&t, 2), MachineId(1));
        // Pretend job 4 were a medium assigned externally: it is mapped
        // here, so just verify pass-through of an empty medium list.
        let (sched, _) = undo_transform(&inst, &t, &state, &[]).unwrap();
        assert_eq!(sched.num_jobs(), inst.num_jobs());
    }

    #[test]
    fn unplaced_job_fails_guess() {
        let (inst, t) = fixture();
        let state = WorkState::new(t.tinst.num_jobs(), 3);
        let res = undo_transform(&inst, &t, &state, &[]);
        assert_eq!(res.unwrap_err(), GuessFailure::LargePlacement);
    }
}
