//! Small-job placement (paper §4).
//!
//! **Priority bags** (§4.2): the MILP's fractional `y` assignment is
//! materialized per pattern group. Whole jobs keep their pattern;
//! fractionally split jobs are merged into `m_f` equal-height
//! *constructed jobs* per (pattern, bag) — Corollary 1 — which bag-LPT
//! then spreads over the group's machines (one list entry per machine).
//! The constructed jobs become *slots*: every leftover fractional job is
//! matched to one slot (Lemma 10 guarantees enough slots exist because
//! constraint (5) capped each bag at `x_p` jobs per pattern).
//!
//! **Non-priority bags** (§4.1): machine heights are rounded up to
//! multiples of `eps` and equal-height machines form groups;
//! *group-bag-LPT* hands the largest remaining jobs of each bag to the
//! lightest group, then plain bag-LPT spreads each group's share
//! (Lemma 9: the final height is `1 + O(eps)`).
//!
//! **Repair** (Lemma 11): the Lemma-7 swaps moved large jobs *after* the
//! `y` assignment was fixed, so a priority small job can land next to a
//! same-bag large job. Walking the `origin` pointers of the displaced
//! large jobs finds a conflict-free machine without raising the makespan
//! beyond `O(eps)`.

use crate::assign_large::WorkState;
use crate::classify::JobClass;
use crate::milp_model::MilpOutcome;
use crate::pattern::PatternSet;
use crate::transform::Transformed;
use bagsched_types::{BagId, JobId, MachineId};
use std::collections::HashMap;

const FRAC_TOL: f64 = 1e-7;

/// One fractional piece of a job assigned to a pattern.
#[derive(Debug, Clone, Copy)]
struct Piece {
    job: JobId,
    alpha: f64,
}

/// A bag-LPT work list: `(Some(job), size)` for real jobs, `(None, h_f)`
/// for the constructed fractional-area jobs of the Corollary-1 merge.
type SlotList = Vec<(Option<JobId>, f64)>;

/// Statistics of the small-job phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallStats {
    /// Moves performed by the Lemma-11 origin-chain repair.
    pub lemma11_moves: usize,
    /// Conflicts the origin chain could not fix (resolved by the safety
    /// net instead; zero on the paper path).
    pub chain_failures: usize,
}

/// Place all priority-bag small jobs according to the MILP `y` values.
pub fn place_priority_smalls(
    trans: &Transformed,
    ps: &PatternSet,
    out: &MilpOutcome,
    machine_pattern: &[usize],
    state: &mut WorkState,
) {
    let np = ps.patterns.len();
    // Machines per pattern group.
    let mut group: Vec<Vec<usize>> = vec![Vec::new(); np];
    for (machine, &p) in machine_pattern.iter().enumerate() {
        group[p].push(machine);
    }

    // 1. Materialize pieces: walk each pair's jobs through its per-pattern
    //    quotas (jobs within a pair are interchangeable — same size).
    //    pieces[(pattern, bag)] -> fractional pieces; fulls likewise.
    let mut fulls: HashMap<(usize, BagId), Vec<JobId>> = HashMap::new();
    let mut fracs: HashMap<(usize, BagId), Vec<Piece>> = HashMap::new();
    // Per job: (pattern, alpha) pieces, to find leftovers later.
    let mut job_pieces: HashMap<JobId, Vec<(usize, f64)>> = HashMap::new();

    for (i, pair) in out.pairs.iter().enumerate() {
        let mut quotas: Vec<(usize, f64)> =
            (0..np).filter_map(|p| out.y.get(&(i, p)).map(|&v| (p, v))).collect();
        quotas.sort_by_key(|&(p, _)| p);
        let mut jobs = pair.jobs.iter().copied();
        let mut current: Option<JobId> = jobs.next();
        let mut job_rem = 1.0f64;
        for (p, mut quota) in quotas {
            while quota > FRAC_TOL {
                let Some(job) = current else { break };
                let take = job_rem.min(quota);
                job_pieces.entry(job).or_default().push((p, take));
                quota -= take;
                job_rem -= take;
                if job_rem <= FRAC_TOL {
                    current = jobs.next();
                    job_rem = 1.0;
                }
            }
        }
        // Numerical slack: any job with a sliver of unassigned mass gets
        // it attached to its last piece (sums were equal up to tolerance).
    }

    // Classify pieces into fulls and fractionals.
    for (&job, pieces) in &job_pieces {
        let bag = trans.tinst.bag_of(job);
        if pieces.len() == 1 && pieces[0].1 >= 1.0 - FRAC_TOL {
            fulls.entry((pieces[0].0, bag)).or_default().push(job);
        } else {
            for &(p, alpha) in pieces {
                fracs.entry((p, bag)).or_default().push(Piece { job, alpha });
            }
        }
    }

    // Leftover jobs: fractionally split everywhere.
    let mut leftovers: HashMap<BagId, Vec<JobId>> = HashMap::new();
    for (&job, pieces) in &job_pieces {
        if !(pieces.len() == 1 && pieces[0].1 >= 1.0 - FRAC_TOL) {
            leftovers.entry(trans.tinst.bag_of(job)).or_default().push(job);
        }
    }

    // 2. Per pattern group: Corollary-1 merge + bag-LPT.
    //    Collected slots per bag: (machine, constructed height).
    let mut slots: HashMap<BagId, Vec<usize>> = HashMap::new();
    for (p, machines) in group.iter().enumerate() {
        if machines.is_empty() {
            continue;
        }
        let mp = machines.len();
        // Bags present on this pattern.
        let mut bags: Vec<BagId> =
            fulls.keys().chain(fracs.keys()).filter(|&&(pp, _)| pp == p).map(|&(_, b)| b).collect();
        bags.sort();
        bags.dedup();
        if bags.is_empty() {
            continue;
        }

        // Build the bag-LPT lists: (Some(job), height) for full jobs,
        // (None, hf) for constructed jobs.
        let mut lists: Vec<(BagId, SlotList)> = Vec::new();
        for &bag in &bags {
            let full = fulls.get(&(p, bag)).cloned().unwrap_or_default();
            let frac = fracs.get(&(p, bag)).cloned().unwrap_or_default();
            let nf_jobs: std::collections::HashSet<JobId> = frac.iter().map(|pc| pc.job).collect();
            let _ = &nf_jobs;
            let mf = mp.saturating_sub(full.len());
            let frac_area: f64 = frac.iter().map(|pc| pc.alpha * trans.tinst.size(pc.job)).sum();
            let hf = if mf > 0 { frac_area / mf as f64 } else { 0.0 };
            let mut list: SlotList = full.iter().map(|&j| (Some(j), trans.tinst.size(j))).collect();
            for _ in 0..mf {
                list.push((None, hf));
            }
            lists.push((bag, list));
        }

        // Bag-LPT over the group's machines.
        let mut order: Vec<usize> = machines.clone();
        for (bag, list) in lists {
            let mut entries = list;
            entries.sort_by(|a, b| b.1.total_cmp(&a.1));
            order.sort_by(|&a, &b| state.loads[a].total_cmp(&state.loads[b]).then(a.cmp(&b)));
            for (rank, (job, height)) in entries.into_iter().enumerate() {
                let machine = order[rank];
                match job {
                    Some(j) => state.place(trans, j, MachineId(machine as u32)),
                    None => {
                        // A slot: remember the machine; the constructed
                        // height steers balance only transiently.
                        slots.entry(bag).or_default().push(machine);
                        state.loads[machine] += height;
                    }
                }
            }
        }
    }

    // 3. Lemma-10 matching: leftover fractional jobs into slots (largest
    //    job onto the least-loaded slot machine).
    for (bag, mut jobs) in leftovers {
        let mut bag_slots = slots.remove(&bag).unwrap_or_default();
        assert!(
            bag_slots.len() >= jobs.len(),
            "Lemma 10 violated: {} leftover jobs of bag {:?} but only {} slots",
            jobs.len(),
            bag,
            bag_slots.len()
        );
        jobs.sort_by(|&a, &b| trans.tinst.size(b).total_cmp(&trans.tinst.size(a)));
        bag_slots.sort_by(|&a, &b| state.loads[a].total_cmp(&state.loads[b]));
        for (job, machine) in jobs.into_iter().zip(bag_slots) {
            state.place(trans, job, MachineId(machine as u32));
        }
    }
}

/// Place all non-priority small jobs by group-bag-LPT (paper §4.1).
pub fn place_nonpriority_smalls(trans: &Transformed, epsilon: f64, state: &mut WorkState) {
    let m = trans.tinst.num_machines();

    // Jobs per non-priority bag (fillers included).
    let mut bags: HashMap<BagId, Vec<JobId>> = HashMap::new();
    for j in 0..trans.tinst.num_jobs() {
        if trans.tclass[j] != JobClass::Small {
            continue;
        }
        let job = JobId(j as u32);
        let tbag = trans.tinst.bag_of(job);
        if !trans.is_priority_tbag[tbag.idx()] {
            bags.entry(tbag).or_default().push(job);
        }
    }
    if bags.is_empty() {
        return;
    }

    // Machine groups by height rounded up to multiples of eps.
    let mut by_height: HashMap<i64, Vec<usize>> = HashMap::new();
    for machine in 0..m {
        let key = (state.loads[machine] / epsilon - 1e-9).ceil() as i64;
        by_height.entry(key).or_default().push(machine);
    }
    struct Group {
        machines: Vec<usize>,
        initial_load: f64,
        assigned_area: f64,
        jobs: Vec<(BagId, Vec<JobId>)>,
    }
    let mut groups: Vec<Group> = by_height
        .into_values()
        .map(|machines| {
            let initial_load: f64 = machines.iter().map(|&i| state.loads[i]).sum();
            Group { machines, initial_load, assigned_area: 0.0, jobs: Vec::new() }
        })
        .collect();

    // Deterministic bag order: total area descending.
    let mut bag_list: Vec<(BagId, Vec<JobId>)> = bags.into_iter().collect();
    for (_, jobs) in &mut bag_list {
        jobs.sort_by(|&a, &b| trans.tinst.size(b).total_cmp(&trans.tinst.size(a)));
    }
    bag_list.sort_by(|a, b| {
        let area = |jobs: &Vec<JobId>| jobs.iter().map(|&j| trans.tinst.size(j)).sum::<f64>();
        area(&b.1).total_cmp(&area(&a.1)).then(a.0.cmp(&b.0))
    });

    // Group-bag-LPT: biggest jobs to the group with least average load.
    for (bag, jobs) in bag_list {
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by(|&a, &b| {
            let avg = |g: &Group| (g.initial_load + g.assigned_area) / g.machines.len() as f64;
            avg(&groups[a]).total_cmp(&avg(&groups[b])).then(a.cmp(&b))
        });
        let mut cursor = 0usize;
        for &gi in &order {
            if cursor >= jobs.len() {
                break;
            }
            let take = groups[gi].machines.len().min(jobs.len() - cursor);
            let share: Vec<JobId> = jobs[cursor..cursor + take].to_vec();
            cursor += take;
            let area: f64 = share.iter().map(|&j| trans.tinst.size(j)).sum();
            groups[gi].assigned_area += area;
            groups[gi].jobs.push((bag, share));
        }
        assert!(cursor >= jobs.len(), "bag larger than machine count");
    }

    // Within each group: bag-LPT with the actual machine loads.
    for g in groups {
        for (_, share) in g.jobs {
            // One job per machine: zip biggest job with lightest machine.
            let mut machines = g.machines.clone();
            machines.sort_by(|&a, &b| state.loads[a].total_cmp(&state.loads[b]).then(a.cmp(&b)));
            for (job, &machine) in share.iter().zip(&machines) {
                state.place(trans, *job, MachineId(machine as u32));
            }
        }
    }
}

/// Lemma-11 repair: resolve conflicts between priority small jobs and
/// large jobs displaced by the Lemma-7 swaps, following origin pointers.
pub fn repair_priority_conflicts(
    trans: &Transformed,
    origin: &HashMap<JobId, MachineId>,
    state: &mut WorkState,
) -> SmallStats {
    let mut stats = SmallStats::default();
    let m = state.machine_jobs.len();

    // Collect conflicted (small job, machine) pairs among priority bags.
    let mut conflicted: Vec<JobId> = Vec::new();
    for machine in 0..m {
        let mid = MachineId(machine as u32);
        let overfull: Vec<u32> =
            state.bag_count[machine].iter().filter(|&(_, &c)| c > 1).map(|(&b, _)| b).collect();
        for bagraw in overfull {
            let bag = BagId(bagraw);
            if !trans.is_priority_tbag[bag.idx()] {
                continue;
            }
            // Move the small member(s); keep one job (preferably the
            // large one) in place.
            let members: Vec<JobId> = state.machine_jobs[machine]
                .iter()
                .copied()
                .filter(|&j| trans.tinst.bag_of(j) == bag)
                .collect();
            let smalls: Vec<JobId> = members
                .iter()
                .copied()
                .filter(|&j| trans.tclass[j.idx()] == JobClass::Small)
                .collect();
            let keep_one_small = smalls.len() == members.len();
            for (i, &js) in smalls.iter().enumerate() {
                if keep_one_small && i == 0 {
                    continue;
                }
                let _ = mid;
                conflicted.push(js);
            }
        }
    }

    for js in conflicted {
        let bag = trans.tinst.bag_of(js);
        // Conflicted jobs were collected off machine_jobs, so they are
        // placed; if the state drifted, record a chain failure (the
        // driver's safety net re-checks feasibility) instead of panicking.
        let Some(here) = state.machine_of[js.idx()] else {
            stats.chain_failures += 1;
            continue;
        };
        if state.bag_on(here, bag) <= 1 {
            continue; // earlier move already fixed it
        }
        // Find the large job of the same bag on this machine and follow
        // origins.
        let mut chain_machine: Option<MachineId> = state.machine_jobs[here.idx()]
            .iter()
            .find(|&&j| {
                j != js && trans.tinst.bag_of(j) == bag && trans.tclass[j.idx()] != JobClass::Small
            })
            .and_then(|j| origin.get(j).copied());
        let mut visited = vec![false; m];
        let mut moved = false;
        while let Some(target) = chain_machine {
            if visited[target.idx()] {
                break;
            }
            visited[target.idx()] = true;
            if state.bag_on(target, bag) == 0 {
                state.remove(trans, js);
                state.place(trans, js, target);
                stats.lemma11_moves += 1;
                moved = true;
                break;
            }
            // The blocker must be a large job (theory); follow its origin.
            chain_machine = state.machine_jobs[target.idx()]
                .iter()
                .find(|&&j| {
                    trans.tinst.bag_of(j) == bag && trans.tclass[j.idx()] != JobClass::Small
                })
                .and_then(|j| origin.get(j).copied());
        }
        if !moved {
            stats.chain_failures += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign_large::{assign_large, WorkState};
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::milp_model::solve_with_patterns;
    use crate::pattern::enumerate_patterns;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::Instance;

    fn full_small_pipeline(
        jobs: &[(f64, u32)],
        m: usize,
        cfg: &EptasConfig,
    ) -> (Transformed, WorkState) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, cfg.epsilon).unwrap();
        let c = classify(&r, m);
        let p = select_priority(&inst, &r, &c, cfg);
        let t = transform(&inst, &r, &c, &p);
        let ps = enumerate_patterns(&t, cfg.max_patterns).unwrap();
        let out = solve_with_patterns(&t, &ps, cfg, &mut crate::report::Stats::default())
            .expect("feasible guess");
        let mut state = WorkState::new(t.tinst.num_jobs(), m);
        let la = assign_large(&t, &ps, &out.x, &mut state).expect("placement feasible");
        let swaps = crate::swap_repair::repair_conflicts(
            &t,
            &mut state,
            &la.conflicts,
            &mut crate::report::Stats::default(),
        )
        .unwrap();
        let _ = swaps;
        place_priority_smalls(&t, &ps, &out, &la.machine_pattern, &mut state);
        place_nonpriority_smalls(&t, cfg.epsilon, &mut state);
        let _ = repair_priority_conflicts(&t, &la.origin, &mut state);
        (t, state)
    }

    fn assert_all_placed_and_feasible(t: &Transformed, state: &WorkState) {
        for j in 0..t.tinst.num_jobs() {
            assert!(state.machine_of[j].is_some(), "tjob {j} unplaced");
        }
        assert_eq!(state.conflict_count(), 0, "conflicts remain");
    }

    #[test]
    fn priority_smalls_placed_without_conflicts() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.05, 0), (0.05, 0), (0.9, 1), (0.05, 1), (0.4, 2)];
        let (t, state) = full_small_pipeline(&jobs, 3, &cfg);
        assert_all_placed_and_feasible(&t, &state);
    }

    #[test]
    fn nonpriority_smalls_spread_by_group_lpt() {
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        let jobs = [
            (0.9, 0),
            (0.9, 0),
            // bag 1: non-priority, small jobs only
            (0.05, 1),
            (0.05, 1),
            (0.05, 1),
            // bag 2: non-priority with a large job and smalls (split)
            (0.9, 2),
            (0.04, 2),
            (0.03, 2),
        ];
        let (t, state) = full_small_pipeline(&jobs, 4, &cfg);
        assert_all_placed_and_feasible(&t, &state);
    }

    #[test]
    fn load_conservation() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let jobs = [(0.9, 0), (0.05, 0), (0.6, 1), (0.01, 2), (0.01, 2)];
        let (t, state) = full_small_pipeline(&jobs, 3, &cfg);
        let placed: f64 = state.loads.iter().sum();
        let total: f64 = (0..t.tinst.num_jobs()).map(|j| t.tinst.size(JobId(j as u32))).sum();
        // Loads may carry tiny constructed-height residue from merged
        // slots whose jobs were matched elsewhere; bound the drift.
        assert!((placed - total).abs() < 0.05 + total * 0.02, "placed {placed} vs total {total}");
    }

    #[test]
    fn makespan_bounded_by_t_plus_small_terms() {
        let cfg = EptasConfig::with_epsilon(0.5);
        // A comfortably feasible guess: the final (rounded) height must be
        // near T = 2.25 at most.
        let jobs = [
            (0.9, 0),
            (0.05, 0),
            (0.05, 1),
            (0.9, 1),
            (0.4, 2),
            (0.05, 3),
            (0.01, 4),
            (0.01, 4),
            (0.02, 5),
        ];
        let (t, state) = full_small_pipeline(&jobs, 3, &cfg);
        let max_load = state.loads.iter().cloned().fold(0.0, f64::max);
        assert!(max_load <= t.t + 3.0 * 0.5, "load {max_load} too high");
    }

    #[test]
    fn lemma11_chain_moves_conflicted_small() {
        // Construct the conflict by hand: a priority bag with a large job
        // whose origin machine is free, and its small job stuck with it.
        let cfg = EptasConfig::with_epsilon(0.5);
        let inst = Instance::new(&[(0.9, 0), (0.05, 0), (0.9, 1)], 3);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 3);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let mut state = WorkState::new(t.tinst.num_jobs(), 3);
        // Bag 0 large job: origin machine 1, but currently on machine 0
        // together with bag 0's small job.
        let mut origin = HashMap::new();
        state.place(&t, JobId(0), MachineId(0));
        origin.insert(JobId(0), MachineId(1));
        state.place(&t, JobId(1), MachineId(0)); // conflict: same bag
        state.place(&t, JobId(2), MachineId(2));
        assert_eq!(state.conflict_count(), 1);
        let stats = repair_priority_conflicts(&t, &origin, &mut state);
        assert_eq!(stats.lemma11_moves, 1);
        assert_eq!(stats.chain_failures, 0);
        assert_eq!(state.conflict_count(), 0);
        assert_eq!(state.machine_of[1], Some(MachineId(1)));
    }

    #[test]
    fn lemma11_follows_multi_step_chain() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let inst = Instance::new(&[(0.9, 0), (0.9, 0), (0.05, 0)], 4);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 4);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let mut state = WorkState::new(t.tinst.num_jobs(), 4);
        let mut origin = HashMap::new();
        // Large job 0 on machine 0 (origin 1); large job 1 on machine 1
        // (origin 2, free). Small job 2 conflicted on machine 0: chain
        // 0 -> 1 (blocked by job 1) -> 2 (free).
        state.place(&t, JobId(0), MachineId(0));
        origin.insert(JobId(0), MachineId(1));
        state.place(&t, JobId(1), MachineId(1));
        origin.insert(JobId(1), MachineId(2));
        state.place(&t, JobId(2), MachineId(0));
        let stats = repair_priority_conflicts(&t, &origin, &mut state);
        assert_eq!(stats.lemma11_moves, 1);
        assert_eq!(state.machine_of[2], Some(MachineId(2)));
        assert_eq!(state.conflict_count(), 0);
    }
}
