//! Priority-bag selection (paper Definitions 1–2).
//!
//! A *size-restricted bag* `B_l^s` is the set of jobs of bag `l` with
//! rounded size `s`. For every large size class `s`, the bags are sorted
//! by `|B_l^s|` descending and the first `b'` become *priority* bags, as
//! does every *large bag* (one with at least `eps * m` non-small jobs).
//! The MILP honours the bag-constraints of priority bags exactly; the
//! Lemma-7 swap argument repairs everyone else, and it needs exactly the
//! `b' = (d*q + 1) * q` largest size-restricted bags to be safe.
//!
//! The paper's `b'` is astronomically large for practical `eps`; the
//! default clamps it to the number of bags (making *all* bags priority —
//! a strictly stronger regime), and [`EptasConfig::priority_cap`] lets
//! the harness force small values to exercise the swap path.

use crate::classify::{Classification, JobClass};
use crate::config::EptasConfig;
use crate::rounding::{Rounded, SizeExp};
use bagsched_types::{BagId, Instance};
use std::collections::HashMap;

/// The priority/non-priority split of the original bags.
#[derive(Debug, Clone)]
pub struct Priority {
    /// Whether each bag is priority.
    pub is_priority: Vec<bool>,
    /// The effective `b'` used (after clamping / override).
    pub b_prime: usize,
    /// The paper-formula `b'` before clamping (saturating).
    pub b_prime_paper: usize,
    /// Number of large bags (`>= eps*m` non-small jobs).
    pub num_large_bags: usize,
}

impl Priority {
    /// Number of priority bags.
    pub fn count(&self) -> usize {
        self.is_priority.iter().filter(|&&p| p).count()
    }
}

/// `q` — the maximum number of medium-or-large slots a machine can hold
/// at optimum height `T = 1 + 2eps + eps^2` (each slot `>= eps^{k+1}`).
pub fn slots_per_machine(epsilon: f64, medium_threshold: f64) -> usize {
    let t = 1.0 + 2.0 * epsilon + epsilon * epsilon;
    (t / medium_threshold).floor() as usize
}

/// Select priority bags per Definition 2.
pub fn select_priority(
    inst: &Instance,
    rounded: &Rounded,
    class: &Classification,
    cfg: &EptasConfig,
) -> Priority {
    let eps = cfg.epsilon;
    let m = inst.num_machines();
    let b = inst.num_bags();

    // Large size classes present, and per-class per-bag counts.
    let mut counts: HashMap<SizeExp, Vec<u32>> = HashMap::new();
    for job in inst.jobs() {
        if class.of(job.id.idx()) == JobClass::Large {
            counts.entry(rounded.exp[job.id.idx()]).or_insert_with(|| vec![0; b])[job.bag.idx()] +=
                1;
        }
    }
    let d = counts.len().max(1);
    let q = slots_per_machine(eps, class.medium_threshold).max(1);
    let b_prime_paper = d.saturating_mul(q).saturating_add(1).saturating_mul(q);
    let b_prime = cfg.priority_cap.unwrap_or(b_prime_paper).min(b).max(1);

    let mut is_priority = vec![false; b];

    // Top-b' bags per large size class.
    for per_bag in counts.values() {
        let mut order: Vec<usize> = (0..b).filter(|&l| per_bag[l] > 0).collect();
        order.sort_by(|&a, &c| per_bag[c].cmp(&per_bag[a]).then(a.cmp(&c)));
        for &l in order.iter().take(b_prime) {
            is_priority[l] = true;
        }
    }

    // Large bags are always priority.
    let large_bag_threshold = eps * m as f64;
    let mut num_large_bags = 0;
    for (bag, members) in inst.bags() {
        let non_small = members.iter().filter(|&&j| class.of(j.idx()) != JobClass::Small).count();
        if non_small as f64 >= large_bag_threshold - bagsched_types::EPS && non_small > 0 {
            if !is_priority[bag.idx()] {
                is_priority[bag.idx()] = true;
            }
            num_large_bags += 1;
        }
    }

    Priority { is_priority, b_prime, b_prime_paper, num_large_bags }
}

/// Convenience: the list of priority bag ids.
pub fn priority_bags(p: &Priority) -> Vec<BagId> {
    p.is_priority.iter().enumerate().filter_map(|(l, &is)| is.then_some(BagId(l as u32))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::rounding::scale_and_round;

    fn setup(jobs: &[(f64, u32)], m: usize, cfg: &EptasConfig) -> (Instance, Priority) {
        let inst = Instance::new(jobs, m);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, cfg.epsilon).unwrap();
        let c = classify(&r, m);
        let p = select_priority(&inst, &r, &c, cfg);
        (inst, p)
    }

    #[test]
    fn paper_formula_makes_everything_priority_on_small_instances() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let (_, p) = setup(&[(0.9, 0), (0.8, 1), (0.7, 2), (0.05, 3)], 3, &cfg);
        // b'_paper is huge, so every bag with large jobs is priority; the
        // small-only bag 3 is not (it appears in no large size class).
        assert!(p.is_priority[0] && p.is_priority[1] && p.is_priority[2]);
        assert!(!p.is_priority[3]);
        assert!(p.b_prime_paper >= p.b_prime);
    }

    #[test]
    fn cap_limits_selection_by_size_class_count() {
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        // Three bags with 3, 2, 1 large jobs of the same (rounded) size.
        let jobs = [(0.9, 0), (0.9, 0), (0.9, 0), (0.9, 1), (0.9, 1), (0.9, 2)];
        let (_, p) = setup(&jobs, 6, &cfg);
        assert!(p.is_priority[0], "bag with most jobs of the class must win");
        assert!(!p.is_priority[1] && !p.is_priority[2]);
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn large_bags_forced_priority() {
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        // Bag 1 has eps*m = 2 medium/large jobs but fewer large jobs of the
        // top size than bag 0; the large-bag rule still makes it priority.
        let jobs = [
            (0.9, 0),
            (0.9, 0),
            (0.9, 0),
            (0.9, 1),
            (0.3, 1), // 0.3 rounds into medium-or-large band
        ];
        let (_, p) = setup(&jobs, 4, &cfg);
        assert!(p.is_priority[1], "large bag must be priority");
        assert!(p.num_large_bags >= 1);
    }

    #[test]
    fn small_only_bags_never_priority() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let (_, p) = setup(&[(0.001, 0), (0.002, 1), (0.9, 2)], 3, &cfg);
        assert!(!p.is_priority[0]);
        assert!(!p.is_priority[1]);
        assert!(p.is_priority[2]);
    }

    #[test]
    fn slots_per_machine_matches_formula() {
        // eps = 0.5, k = 1: threshold = 0.25, T = 2.25 => q = 9.
        assert_eq!(slots_per_machine(0.5, 0.25), 9);
        // eps = 0.25, threshold = 0.0625, T = 1.5625 => q = 25.
        assert_eq!(slots_per_machine(0.25, 0.0625), 25);
    }

    #[test]
    fn priority_bags_list_matches_flags() {
        let cfg = EptasConfig::with_epsilon(0.5);
        let (_, p) = setup(&[(0.9, 0), (0.01, 1)], 2, &cfg);
        let list = priority_bags(&p);
        assert_eq!(list, vec![BagId(0)]);
    }
}
