//! Scaling and geometric rounding (paper §2.1, first paragraph).
//!
//! With the makespan guess `T0` fixed by the binary-search framework, the
//! instance is scaled so `T0 = 1` and every processing time is rounded
//! *up* to the next power of `1 + eps`. Rounding raises the optimum from
//! `1` to at most `1 + eps` and leaves only `O(log_{1+eps} n)` distinct
//! sizes, which the rest of the pipeline indexes by integer exponent.

use bagsched_types::EPS;

/// A rounded processing time, identified by its exponent: the size is
/// `(1 + eps)^exp`. Exponents are non-positive for sizes `<= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeExp(pub i32);

/// The scaled-and-rounded view of the job sizes.
#[derive(Debug, Clone)]
pub struct Rounded {
    /// `eps` used for rounding.
    pub epsilon: f64,
    /// Rounded size per job (same index space as the source instance).
    pub size: Vec<f64>,
    /// Exponent per job: `size[j] = (1 + eps)^{exp[j].0}`.
    pub exp: Vec<SizeExp>,
}

/// The rounded size for an exponent.
#[inline]
pub fn exp_size(e: SizeExp, epsilon: f64) -> f64 {
    (1.0 + epsilon).powi(e.0)
}

/// Scale all sizes by `1/t0` and round up to powers of `1 + eps`.
///
/// Returns `None` if some scaled size exceeds `1 + EPS` — the guess `t0`
/// is then certainly below the optimum (a job alone overflows a machine).
pub fn scale_and_round(sizes: &[f64], t0: f64, epsilon: f64) -> Option<Rounded> {
    assert!(t0 > 0.0 && t0.is_finite(), "guess must be positive");
    let mut size = Vec::with_capacity(sizes.len());
    let mut exp = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let scaled = s / t0;
        if scaled > 1.0 + EPS {
            return None;
        }
        let e = exponent_of(scaled, epsilon);
        size.push(exp_size(e, epsilon));
        exp.push(e);
    }
    Some(Rounded { epsilon, size, exp })
}

/// Smallest integer `e` with `(1 + eps)^e >= scaled` (up to tolerance).
fn exponent_of(scaled: f64, epsilon: f64) -> SizeExp {
    let raw = scaled.ln() / (1.0 + epsilon).ln();
    let mut e = raw.ceil() as i32;
    // `raw` may sit a hair above an integer due to float error; accept the
    // integer below if it already covers `scaled`.
    if (1.0 + epsilon).powi(e - 1) >= scaled * (1.0 - 1e-12) {
        e -= 1;
    }
    // Guard against the rare opposite error.
    while (1.0 + epsilon).powi(e) < scaled * (1.0 - 1e-12) {
        e += 1;
    }
    SizeExp(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rounds_up_within_factor() {
        let r = scale_and_round(&[0.3, 0.5, 0.99, 1.0], 1.0, 0.5).unwrap();
        for (orig, (&rs, &e)) in [0.3, 0.5, 0.99, 1.0].iter().zip(r.size.iter().zip(&r.exp)) {
            assert!(rs >= orig - 1e-12, "rounded {rs} below original {orig}");
            assert!(rs <= orig * 1.5 + 1e-12, "rounded {rs} too far above {orig}");
            assert!((exp_size(e, 0.5) - rs).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_powers_stay_put() {
        let eps = 0.5;
        for e in [-4, -2, -1, 0] {
            let v = (1.0f64 + eps).powi(e);
            let r = scale_and_round(&[v], 1.0, eps).unwrap();
            assert_eq!(r.exp[0], SizeExp(e), "power {v} moved to {:?}", r.exp[0]);
            assert!((r.size[0] - v).abs() < 1e-12);
        }
    }

    #[test]
    fn scaling_divides_by_guess() {
        let r = scale_and_round(&[2.0], 4.0, 0.5).unwrap();
        assert_eq!(r.exp[0], SizeExp(-1)); // 0.5 = 1.5^-1? No: 1.5^-1 = 0.666 >= 0.5.
        assert!(r.size[0] >= 0.5);
    }

    #[test]
    fn oversized_job_rejects_guess() {
        assert!(scale_and_round(&[2.0], 1.0, 0.5).is_none());
        assert!(scale_and_round(&[2.0], 2.0, 0.5).is_some());
    }

    #[test]
    fn one_rounds_to_exponent_zero() {
        let r = scale_and_round(&[1.0], 1.0, 0.3).unwrap();
        assert_eq!(r.exp[0], SizeExp(0));
    }

    proptest! {
        #[test]
        fn rounding_invariants(size in 1e-6f64..1.0, eps in 0.05f64..0.9) {
            let r = scale_and_round(&[size], 1.0, eps).unwrap();
            let rs = r.size[0];
            // Monotone: never below the original.
            prop_assert!(rs >= size * (1.0 - 1e-9));
            // At most one factor above.
            prop_assert!(rs <= size * (1.0 + eps) * (1.0 + 1e-9));
            // Consistent with the exponent.
            prop_assert!((exp_size(r.exp[0], eps) - rs).abs() < 1e-9);
        }

        #[test]
        fn rounding_is_monotone_in_size(a in 1e-6f64..1.0, b in 1e-6f64..1.0) {
            let eps = 0.4;
            let r = scale_and_round(&[a, b], 1.0, eps).unwrap();
            if a <= b {
                prop_assert!(r.size[0] <= r.size[1] + 1e-12);
            } else {
                prop_assert!(r.size[1] <= r.size[0] + 1e-12);
            }
        }
    }
}
