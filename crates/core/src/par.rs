//! The solver's internal execution layer: scoped worker threads and
//! cooperative cancellation.
//!
//! Three seams use it (each behind an [`EptasConfig`] knob): sharded
//! pricing ([`crate::pricing`]), speculative guess racing and the
//! deadline portfolio ([`crate::driver`]). The contract everywhere is
//! **thread-count invariance**: the thread count decides where work
//! runs, never what is computed — for fixed knobs, schedules and
//! reports are byte-identical at any `solver_threads` value. The
//! helpers here make that easy to uphold: [`run_indexed`] returns
//! results in index order regardless of completion order, and
//! [`CancelToken`] only ever *stops* work whose result the caller has
//! already decided to discard.
//!
//! No thread pool: threads are scoped to one call ([`std::thread::scope`],
//! the same idiom as the bench runner's `parallel_map`), so the solver
//! stays a plain function of its inputs with no global state.
//!
//! [`EptasConfig`]: crate::EptasConfig

use bagsched_milp::CancelProbe;
use bagsched_types::obs;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Run `f(0), f(1), .., f(n-1)` on up to `threads` scoped worker
/// threads and return the results in index order. With `threads <= 1`
/// (or `n <= 1`) everything runs sequentially on the caller's thread —
/// the zero-overhead path the default configuration takes.
///
/// Work is claimed by an atomic cursor, so completion order is
/// arbitrary; result order is not. Panics in `f` propagate (the scope
/// joins all workers first).
pub fn run_indexed<O, F>(n: usize, threads: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Propagate the caller's observability context (with its current
    // region) into the workers: spans a shard opens land on a per-worker
    // track but aggregate into the same profile region as the caller.
    let obs_handle = obs::handle();
    std::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        for w in 0..threads {
            let worker_handle = obs_handle.clone();
            scope.spawn(move || {
                let _obs = worker_handle.map(|h| h.install(&format!("par-{w}")));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("worker skipped slot"))
        .collect()
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

/// Cooperative cancellation, checked at phase boundaries.
///
/// A token trips when [`cancel`](CancelToken::cancel) is called, when
/// its deadline (if any) passes, or when any ancestor token trips —
/// [`child`](CancelToken::child) builds trees where cancelling a parent
/// (the whole solve) reaches every descendant (one speculative guess)
/// but not vice versa. Cancellation is *cooperative*: work observes the
/// token between phases and unwinds as [`GuessFailure::Cancelled`]; a
/// cancelled computation's partial results are discarded by the caller,
/// which is what keeps cancellation timing out of the committed output.
///
/// [`GuessFailure::Cancelled`]: crate::report::GuessFailure::Cancelled
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token that only trips on an explicit [`cancel`]
    /// (or via a parent, for children of this token).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: None, parent: None }),
        }
    }

    /// A token that also trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A child token: trips when this token trips or on its own
    /// [`cancel`], without affecting this token.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Trip the token (idempotent). Descendants observe it; ancestors
    /// do not.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has tripped — explicitly, by deadline, or via
    /// an ancestor.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// The token as a [`bagsched_milp::CancelProbe`], for threading
    /// through [`MilpOptions`](bagsched_milp::MilpOptions) so the
    /// branch-and-bound loop observes it between nodes.
    pub fn probe(&self) -> CancelProbe {
        let inner = Arc::clone(&self.inner);
        CancelProbe::new(move || inner.is_cancelled())
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn run_indexed_preserves_order_at_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 8, 64] {
            assert_eq!(run_indexed(37, threads, |i| i * i), expect, "threads={threads}");
        }
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn run_indexed_runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 8, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn cancel_token_trips_and_children_observe_parents() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        assert!(!root.is_cancelled() && !child.is_cancelled() && !grandchild.is_cancelled());

        // Child cancellation stays local.
        child.cancel();
        assert!(!root.is_cancelled());
        assert!(child.is_cancelled() && grandchild.is_cancelled());

        // Parent cancellation reaches every descendant.
        let other = root.child();
        assert!(!other.is_cancelled());
        root.cancel();
        assert!(other.is_cancelled());
    }

    #[test]
    fn deadline_trips_the_token() {
        let live = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!live.is_cancelled());
        let past = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(past.is_cancelled());
        assert!(past.child().is_cancelled());
    }

    #[test]
    fn probe_mirrors_the_token() {
        let token = CancelToken::new();
        let probe = token.probe();
        assert!(!probe.is_cancelled());
        token.cancel();
        assert!(probe.is_cancelled());
    }
}
