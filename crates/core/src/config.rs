//! Configuration of the EPTAS.
//!
//! Every constant of the paper is configurable. Defaults follow the
//! paper's formulas *clamped to the instance* (DESIGN.md §2): the paper's
//! constants are astronomically large (its own point is theoretical), and
//! clamping preserves the approximation guarantee — e.g. making *all*
//! bags priority is strictly more constrained than the paper requires.

use std::time::Duration;

/// Tuning parameters for [`Eptas`](crate::Eptas).
#[derive(Debug, Clone)]
pub struct EptasConfig {
    /// Approximation parameter `eps` in `(0, 0.95]`. The schedule is
    /// within `(1 + O(eps))` of optimal; the hidden constant is small
    /// (see EXPERIMENTS.md T1 for measured ratios).
    pub epsilon: f64,
    /// Cap on enumerated patterns per guess; exceeding it fails the guess
    /// loudly (the driver then degrades as configured).
    pub max_patterns: usize,
    /// Override for the number of priority bags per large size class
    /// (`b'` in Definition 2). `None` = paper formula `(d*q+1)*q` clamped
    /// to the number of bags.
    pub priority_cap: Option<usize>,
    /// Enforce constraint (7) literally (integral `y` for priority small
    /// jobs larger than `eps^{2k+11}`). Default `false`: all `y`
    /// fractional, with the Corollary-1 merge rounding to the bag's
    /// largest small size instead (same `O(eps)` error at practical
    /// constants; DESIGN.md §2).
    pub paper_integral_y: bool,
    /// Branch-and-bound node budget per MILP solve.
    pub milp_max_nodes: usize,
    /// Wall-clock budget per MILP solve.
    pub milp_time_limit: Duration,
    /// Column budget for the joint (paper-faithful) MILP with explicit
    /// `y` variables; above it the two-stage path (x-MILP with aggregate
    /// small-job cuts, then greedy fractional `y`) is used.
    pub joint_col_budget: usize,
    /// Row budget, analogous.
    pub joint_row_budget: usize,
    /// Budget on `rows * cols` of the joint model. The dense-tableau
    /// simplex pays O(rows * cols) *per pivot*, so a model inside the
    /// row/column budgets can still be far slower than the two-stage
    /// path; this caps the actual work estimate.
    pub joint_cell_budget: usize,
    /// Binary-search grid ratio is `1 + epsilon * grid_factor`.
    pub grid_factor: f64,
    /// Generate patterns by column-generation pricing against the master
    /// LP duals instead of eager enumeration (default). Eager enumeration
    /// remains the cross-validation oracle and the fallback when pricing
    /// stalls.
    pub column_generation: bool,
    /// Pricing rounds (master LP solve + pricing DFS) per guess before
    /// the loop declares a stall and falls back to eager enumeration.
    pub pricing_max_rounds: usize,
    /// DFS node budget per pricing round; exceeding it makes the round
    /// inexact (no infeasibility proofs, possible stall).
    pub pricing_dfs_node_budget: usize,
    /// Safety-valve on the pricing master's size. Three gates read it:
    ///
    /// 1. **per-bag engagement** — instances whose *per-bag* symbol
    ///    count exceeds it switch to the class-aggregated path
    ///    ([`EptasConfig::class_aggregation`]);
    /// 2. **class-count ceiling** — the aggregated master is gated on
    ///    the number of **bag classes** (groups of priority bags with
    ///    identical size→count profiles,
    ///    [`crate::classes::BagClasses`]) against the same budget; past
    ///    it, pricing is skipped for that attempt;
    /// 3. **coarsening engagement** — when the exact-class attempt
    ///    could not settle the guess (typically because gate 2 fired),
    ///    [`EptasConfig::class_coarsening`] retries with
    ///    template-quantized *coarse* classes, whose (smaller) class
    ///    count faces the same ceiling; only past that does the eager
    ///    path run as before the pricing subsystem existed.
    ///
    /// Class keying is what keeps instances whose per-bag symbol count
    /// is in the thousands (n=1600 tight clustered: 1061 symbols, 118
    /// classes) far below the ceiling as long as their bags cluster
    /// into few profiles; coarsening extends that to instances whose
    /// *exact* class count outgrows the ceiling too (n=6400 tight
    /// clustered and up).
    pub pricing_symbol_budget: usize,
    /// Key pattern slot symbols, master rows, MILP covering constraints
    /// and the pricing item space on `(size, bag class)` instead of
    /// `(size, bag)` (default on). This is the *scale* path: it engages
    /// exactly when the instance's priority bags exceed
    /// [`EptasConfig::pricing_symbol_budget`] — where per-bag pricing is
    /// impossible and the pre-aggregation pipeline degraded to eager
    /// enumeration — and aggregated solutions are mapped back to
    /// concrete bags by [`crate::declass`] before the placement phases.
    /// Below the budget the per-bag path runs unchanged; off = never
    /// aggregate.
    pub class_aggregation: bool,
    /// Second-level coarsening of the class-aggregated path (default
    /// on): when the *exact* bag-class attempt cannot settle a guess —
    /// typically because the exact class count itself exceeds
    /// [`EptasConfig::pricing_symbol_budget`] — bag profiles are
    /// re-quantized onto a geometric count-bucket template
    /// ([`EptasConfig::coarse_tolerance`]) and bags whose quantized
    /// profiles coincide merge into one coarse class. The coarse master
    /// prices against the per-size *minimum* count over the members (a
    /// relaxation, so Infeasible verdicts stay exact), and
    /// [`crate::declass`] re-places each member's surplus jobs in a
    /// repair pass — any repair failure fails the guess loudly, never
    /// producing a wrong schedule, so the `(1 + O(eps))` contract is
    /// unchanged. Engages only when coarsening actually reduces the
    /// class count; off = the exact-class pipeline as before.
    pub class_coarsening: bool,
    /// Relative width of the coarse count buckets: bucket boundaries
    /// grow by `max(+1, *(1 + coarse_tolerance))`, so two bags merge
    /// when their per-(size, class) job counts agree within roughly a
    /// `(1 + coarse_tolerance)` factor (and their supports are
    /// identical). `0.0` reproduces the exact partition; larger values
    /// merge more aggressively and shift more work onto the declass
    /// repair pass.
    pub coarse_tolerance: f64,
    /// Warm-start master-LP re-solves inside the pricing loop from the
    /// previous optimal basis instead of a cold two-phase solve
    /// (default). Per-round pivot work then scales with the newly priced
    /// columns rather than the whole tableau.
    pub warm_start: bool,
    /// Pools larger than this are pruned to the master's optimal support
    /// (plus the empty pattern and the singleton seeds) before the
    /// restricted MILP runs: every unused column widens the dense
    /// tableau of *every* branch-and-bound node LP. Small pools pass
    /// through untouched.
    pub pricing_pool_cap: usize,
    /// Eager-enumeration budget used to consult the oracle when the MILP
    /// over the priced pool fails inconclusively. Kept far below
    /// `max_patterns`: on instances where enumeration is cheap this
    /// restores the exact pre-pricing behaviour, on tight instances the
    /// restricted verdict stands instead of burning the full budget.
    pub pricing_fallback_budget: usize,
    /// Warm-start branch-and-bound *node* LPs from the parent basis via
    /// the dual simplex (default on): a branching bound change leaves the
    /// parent basis dual feasible, so the child re-optimizes in a few
    /// dual pivots instead of a cold phase-1/phase-2 solve. Falls back to
    /// a cold solve per node on numerical singularity or a bound shape
    /// the warm tableau cannot encode. Off = every node solves cold
    /// (pre-PR-5 behaviour).
    pub dual_simplex: bool,
    /// Generate pattern columns *inside* the branch-and-bound tree
    /// (default on): at fractional node LPs of the restricted MILP the
    /// knapsack pricing DFS re-runs against the node duals, and improving
    /// patterns are grafted into the tree as new integer columns. Rescues
    /// dives that fail only because the root pool is missing a column.
    /// Only engages on MILPs over a priced pool (the eager/oracle path is
    /// never tree-priced).
    pub tree_pricing: bool,
    /// Total in-tree pricing rounds (one knapsack DFS each) per MILP
    /// solve; bounds the extra work tree pricing may add to a solve.
    pub tree_pricing_round_cap: usize,
    /// Round cap of the pricing loop's *enrichment* phase (phase B) on
    /// **wide** masters — those carrying more structural columns than
    /// [`EptasConfig::pricing_symbol_budget`] when enrichment starts.
    /// The pool is feasibility-complete at that point, so every extra
    /// round trades a marginal pool improvement for a permanently wider
    /// dense master tableau — the classic column-generation tailing-off,
    /// measured at >90% of the n=1600 tight cell before the cap existed
    /// (the master objective keeps improving by dust-sized amounts right
    /// up to `pricing_max_rounds`). A short enrichment is safe because a
    /// column the integral search turns out to miss is priced *in the
    /// branch-and-bound tree* on demand ([`EptasConfig::tree_pricing`])
    /// instead of speculatively at the root. Narrow masters, where a
    /// round is cheap, enrich to natural convergence as before.
    pub pricing_enrich_rounds: usize,
    /// Reduced-cost threshold of the master column lifecycle: a nonbasic
    /// pattern column whose reduced cost stays above this for
    /// `PURGE_PATIENCE` consecutive feasibility-master re-solves is
    /// physically removed from the master model (its pattern and key
    /// stay in the pool, so the re-admission guard and the dedup set
    /// still see it; it is re-admitted the moment it prices negative
    /// under later duals). `f64::INFINITY` disables purging.
    pub column_purge_threshold: f64,
    /// Pivots between basis refactorizations of the revised simplex
    /// (threaded to every LP/MILP model the pipeline builds). Smaller
    /// keeps the eta file shorter — cheaper FTRAN/BTRAN per pivot — at
    /// the cost of more frequent rebuilds.
    pub refactor_interval: usize,
    /// Worker threads the solver may use internally (scoped threads,
    /// spawned per solve — no persistent pool). `1` (the default) runs
    /// every parallel seam on the caller's thread. The determinism
    /// contract is thread-count invariance: for fixed knobs, schedules
    /// and reports are byte-identical at any `solver_threads` value —
    /// the thread count decides only *where* work runs, never *what*
    /// is computed (see `tests/parallel_determinism.rs`).
    pub solver_threads: usize,
    /// Shards the pricing DFS is partitioned into per round: shard `s`
    /// explores only patterns whose first used item index is `≡ s (mod
    /// shards)`, each with the full [`pricing_dfs_node_budget`], and
    /// candidates merge under a deterministic (profit, key) sort.
    /// `1` (the default) is the classic single-DFS path, bit-for-bit.
    /// Note the *shard count* is part of the configuration — different
    /// shard counts may keep different candidates at profit ties — while
    /// the thread count executing the shards never changes the result.
    ///
    /// [`pricing_dfs_node_budget`]: EptasConfig::pricing_dfs_node_budget
    pub pricing_shards: usize,
    /// Budget of the speculative binary-search window: up to this many
    /// adjacent guesses (the midpoint plus its predicted successors) are
    /// solved concurrently, with verdicts committed strictly in the
    /// order the sequential search would probe them, so the chosen guess
    /// is bitwise-identical to the sequential search. Off-path work is
    /// cancelled cooperatively at phase boundaries. `<= 1` (the
    /// default) runs the plain sequential search.
    pub speculative_guesses: usize,
    /// Deadline of the portfolio race in milliseconds: when set, the
    /// EPTAS guess search runs against the clock and, past the
    /// deadline, the solve returns the best feasible schedule found so
    /// far — a committed guess if one succeeded, otherwise the
    /// bag-aware-LPT arm (always computed as the search's upper bound).
    /// Wall-clock dependent by construction, so excluded from the
    /// determinism contract. `None` (the default) never cuts off.
    pub portfolio_deadline_ms: Option<u64>,
}

impl EptasConfig {
    /// Defaults at the given `eps`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 0.95, "epsilon must be in (0, 0.95], got {epsilon}");
        EptasConfig {
            epsilon,
            max_patterns: 20_000,
            priority_cap: None,
            paper_integral_y: false,
            milp_max_nodes: 20_000,
            milp_time_limit: Duration::from_secs(20),
            joint_col_budget: 2500,
            joint_row_budget: 1200,
            joint_cell_budget: 150_000,
            grid_factor: 0.5,
            column_generation: true,
            pricing_max_rounds: 400,
            pricing_dfs_node_budget: 200_000,
            pricing_symbol_budget: 200,
            pricing_fallback_budget: 2000,
            class_aggregation: true,
            class_coarsening: true,
            coarse_tolerance: 0.5,
            warm_start: true,
            pricing_pool_cap: 600,
            dual_simplex: true,
            tree_pricing: true,
            tree_pricing_round_cap: 16,
            pricing_enrich_rounds: 8,
            column_purge_threshold: 0.1,
            refactor_interval: 32,
            solver_threads: 1,
            pricing_shards: 1,
            speculative_guesses: 1,
            portfolio_deadline_ms: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = EptasConfig::with_epsilon(0.5);
        assert_eq!(c.epsilon, 0.5);
        assert!(c.max_patterns > 0);
        assert!(c.priority_cap.is_none());
        assert!(!c.paper_integral_y);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        EptasConfig::with_epsilon(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_large_epsilon() {
        EptasConfig::with_epsilon(1.2);
    }
}
