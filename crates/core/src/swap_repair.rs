//! Lemma-7 swap repair for wildcard large-job conflicts.
//!
//! When a wildcard slot forced two jobs of one non-priority bag onto a
//! machine, the conflict is resolved by swapping the offending job with a
//! *same-rounded-size* large/medium job on another machine, chosen so
//! that neither machine ends up conflicted. Because both jobs have the
//! same rounded size, every machine keeps exactly the load the MILP
//! assigned it — the makespan does not move.
//!
//! The paper proves a valid partner always exists when `b'` (the number
//! of priority bags per size class) is at least `(dq+1)q`; with the
//! default clamped constants a partner exists trivially (all bags
//! priority means no wildcard slots at all). Under a forced small
//! `priority_cap` the search may fail, which is reported as
//! [`GuessFailure::SwapRepair`].

use crate::assign_large::WorkState;
use crate::classify::JobClass;
use crate::report::{GuessFailure, Stats};
use crate::transform::Transformed;
use bagsched_types::JobId;

/// Resolve all recorded conflicts by swapping. Returns the number of
/// swaps performed. Each swap is also recorded into `stats` as it
/// happens, so work done before a [`GuessFailure::SwapRepair`] abort
/// still shows up in the run-wide counters.
pub fn repair_conflicts(
    trans: &Transformed,
    state: &mut WorkState,
    conflicts: &[JobId],
    stats: &mut Stats,
) -> Result<usize, GuessFailure> {
    let mut swaps = 0;
    for &job in conflicts {
        let bag = trans.tinst.bag_of(job);
        // A conflict entry for an unplaced job means the placement state
        // drifted; fail the guess rather than abort the process.
        let Some(mid) = state.machine_of[job.idx()] else {
            return Err(GuessFailure::SwapRepair);
        };
        if state.bag_on(mid, bag) <= 1 {
            continue; // an earlier swap already cleared this machine
        }
        let exp = trans.texp[job.idx()];
        let m = state.machine_jobs.len();
        let mut done = false;
        'machines: for other in 0..m {
            if other == mid.idx() || state.conflicts(bagsched_types::MachineId(other as u32), bag) {
                continue;
            }
            // A same-size large/medium partner whose bag is free on `mid`
            // (not counting the partner itself, which leaves).
            for pi in 0..state.machine_jobs[other].len() {
                let partner = state.machine_jobs[other][pi];
                if trans.tclass[partner.idx()] == JobClass::Small
                    || trans.texp[partner.idx()] != exp
                {
                    continue;
                }
                let pbag = trans.tinst.bag_of(partner);
                if pbag == bag || state.bag_on(mid, pbag) > 0 {
                    continue;
                }
                // Swap.
                let other_mid = bagsched_types::MachineId(other as u32);
                state.remove(trans, job);
                state.remove(trans, partner);
                state.place(trans, job, other_mid);
                state.place(trans, partner, mid);
                swaps += 1;
                stats.swap_repair_rounds += 1;
                done = true;
                break 'machines;
            }
        }
        if !done {
            return Err(GuessFailure::SwapRepair);
        }
    }
    Ok(swaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign_large::WorkState;
    use crate::classify::classify;
    use crate::config::EptasConfig;
    use crate::priority::select_priority;
    use crate::rounding::scale_and_round;
    use crate::transform::transform;
    use bagsched_types::{Instance, MachineId};

    /// Build a transformed instance and hand-place jobs to create a
    /// controlled conflict.
    fn fixture() -> (Transformed, WorkState) {
        // eps = 0.5. Bag 0 hogs priority (cap 1); bags 1 and 2 are
        // non-priority, with two large jobs each (plus a small to split).
        let jobs = [
            (0.9, 0),
            (0.9, 0),
            (0.9, 0),
            (0.9, 1),
            (0.9, 1),
            (0.01, 1),
            (0.9, 2),
            (0.9, 2),
            (0.01, 2),
        ];
        let inst = Instance::new(&jobs, 6);
        let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        let r = scale_and_round(&sizes, 1.0, 0.5).unwrap();
        let c = classify(&r, 6);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.priority_cap = Some(1);
        let p = select_priority(&inst, &r, &c, &cfg);
        let t = transform(&inst, &r, &c, &p);
        let state = WorkState::new(t.tinst.num_jobs(), 6);
        (t, state)
    }

    /// Transformed job ids of the large-side jobs of original bags 1, 2.
    fn large_side_jobs(t: &Transformed) -> (Vec<JobId>, Vec<JobId>) {
        let ls1 = t.large_side_of[1].unwrap();
        let ls2 = t.large_side_of[2].unwrap();
        (t.tinst.bag(ls1).to_vec(), t.tinst.bag(ls2).to_vec())
    }

    #[test]
    fn resolves_forced_conflict_preserving_loads() {
        let (t, mut state) = fixture();
        let (b1, b2) = large_side_jobs(&t);
        // Machine 0: both jobs of bag 1 (conflict). Machine 1: both of bag 2.
        state.place(&t, b1[0], MachineId(0));
        state.place(&t, b1[1], MachineId(0));
        state.place(&t, b2[0], MachineId(1));
        state.place(&t, b2[1], MachineId(1));
        let loads_before = state.loads.clone();
        assert_eq!(state.conflict_count(), 2);

        let mut stats = Stats::default();
        let swaps = repair_conflicts(&t, &mut state, &[b1[1], b2[1]], &mut stats).unwrap();
        assert!(swaps >= 1);
        assert_eq!(stats.swap_repair_rounds, swaps as u64);
        assert_eq!(state.conflict_count(), 0);
        // Same-size swaps keep every machine load unchanged.
        for (a, b) in loads_before.iter().zip(&state.loads) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn already_resolved_conflict_skipped() {
        let (t, mut state) = fixture();
        let (b1, _) = large_side_jobs(&t);
        state.place(&t, b1[0], MachineId(0));
        state.place(&t, b1[1], MachineId(1)); // no actual conflict
        let swaps = repair_conflicts(&t, &mut state, &[b1[1]], &mut Stats::default()).unwrap();
        assert_eq!(swaps, 0);
    }

    #[test]
    fn unresolvable_conflict_reported() {
        let (t, mut state) = fixture();
        let (b1, _) = large_side_jobs(&t);
        // Only bag 1's jobs are placed, both on machine 0: no partner of
        // equal size exists anywhere else.
        state.place(&t, b1[0], MachineId(0));
        state.place(&t, b1[1], MachineId(0));
        let res = repair_conflicts(&t, &mut state, &[b1[1]], &mut Stats::default());
        assert_eq!(res.unwrap_err(), GuessFailure::SwapRepair);
    }

    #[test]
    fn partner_bag_must_be_free_on_target() {
        let (t, mut state) = fixture();
        let (b1, b2) = large_side_jobs(&t);
        // Machine 0: bag1+bag1 (conflict) AND a bag-2 job; machine 1 has
        // the other bag-2 job. Swapping the conflicted bag-1 job with
        // machine 1's bag-2 job would put two bag-2 jobs on machine 0 —
        // the repair must instead move it somewhere safe (machine 1 works
        // for the bag-1 job only if machine 1 has no bag-1 job: it
        // doesn't, but the partner must leave machine 1 and not conflict
        // on machine 0... bag-2 on machine 0 conflicts). With only two
        // machines occupied, repair must fail; with a third machine
        // holding a lone large job it must succeed.
        state.place(&t, b1[0], MachineId(0));
        state.place(&t, b1[1], MachineId(0));
        state.place(&t, b2[0], MachineId(0));
        state.place(&t, b2[1], MachineId(1));
        let res = repair_conflicts(&t, &mut state, &[b1[1]], &mut Stats::default());
        // The only same-size partner off machine 0 is b2[1] on machine 1,
        // but bag 2 is already on machine 0 -> must fail.
        assert_eq!(res.unwrap_err(), GuessFailure::SwapRepair);
    }
}
