//! The top-level EPTAS driver: dual-approximation binary search around
//! the per-guess pipeline.
//!
//! The binary-search framework (paper §2, "with a binary search framework
//! we may assume that we know the height of an optimal makespan") walks a
//! geometric grid of makespan guesses between a certified lower bound and
//! the conflict-aware-LPT upper bound. Each guess runs the full pipeline;
//! an infeasibility proof moves the search up, success moves it down. The
//! returned schedule is always feasible: a final safety net (counted in
//! the report, zero on the paper path) would repair any residual
//! conflict.
//!
//! The driver is session-aware: [`solve_session_inner`] optionally takes
//! a [`SolverState`] captured by a previous run on the same rounded
//! instance shape and *replays* it — the cached winning guess is retried
//! first with the cached pattern pool and warm basis, and only on a seed
//! mismatch does the full binary search run cold. [`crate::Solver`] owns
//! the state cache; the deprecated [`Eptas`] facade always solves cold.

use crate::assign_large::{assign_large, WorkState};
use crate::classify::classify;
use crate::config::EptasConfig;
use crate::medium_flow::reinsert_medium;
use crate::milp_model::{PatternSolve, ReplaySeed};
use crate::par::CancelToken;
use crate::priority::select_priority;
use crate::report::{EptasReport, GuessFailure, GuessStats, Stats};
use crate::rounding::scale_and_round;
use crate::small::{place_nonpriority_smalls, place_priority_smalls, repair_priority_conflicts};
use crate::solver::SolverState;
use crate::swap_repair::repair_conflicts;
use crate::transform::transform;
use crate::undo::undo_transform;
use bagsched_types::{
    lowerbound::lower_bounds, obs, validate_instance, Instance, InstanceError, JobId, MachineId,
    Schedule,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why the EPTAS refused to run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EptasError {
    /// The instance admits no feasible schedule.
    Infeasible(InstanceError),
}

impl std::fmt::Display for EptasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EptasError::Infeasible(e) => write!(f, "infeasible instance: {e}"),
        }
    }
}

impl std::error::Error for EptasError {}

/// Result of a successful EPTAS run.
#[derive(Debug, Clone)]
pub struct EptasResult {
    /// A feasible schedule for the input instance.
    pub schedule: Schedule,
    /// Its makespan (under the original, unrounded sizes).
    pub makespan: f64,
    /// Diagnostics (guesses, phases, swap counts, fallbacks).
    pub report: EptasReport,
}

/// One-shot facade over the session API, kept for source compatibility.
#[deprecated(note = "use `Solver`: `Solver::with_epsilon(eps).solve_instance(&inst)` replaces \
            `Eptas::with_epsilon(eps).solve(&inst)` and adds solver-state caching")]
#[derive(Debug, Clone)]
pub struct Eptas {
    cfg: EptasConfig,
}

#[allow(deprecated)]
impl Eptas {
    /// Create a solver with the given configuration.
    pub fn new(cfg: EptasConfig) -> Self {
        Eptas { cfg }
    }

    /// Shorthand: default configuration at `eps`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Eptas::new(EptasConfig::with_epsilon(epsilon))
    }

    /// The configuration in use.
    pub fn config(&self) -> &EptasConfig {
        &self.cfg
    }

    /// Compute a `(1 + O(eps))`-approximate feasible schedule (cold; no
    /// state is cached or replayed).
    pub fn solve(&self, inst: &Instance) -> Result<EptasResult, EptasError> {
        solve_session_inner(&self.cfg, inst, None, None).map(|(result, _)| result)
    }
}

/// The shared driver behind [`crate::Solver`] and the deprecated
/// [`Eptas`] facade. Returns the result plus, when the pipeline (not an
/// LPT shortcut/fallback) produced the schedule, a [`SolverState`] that
/// replays this solve on the next structurally identical request.
///
/// `hint` seeds the binary search's *first* probe with a guess value
/// (the similarity cache tier passes a near-neighbour's chosen guess):
/// the nearest grid point replaces the first midpoint, and every later
/// probe bisects as usual, so the search stays correct for any hint —
/// a good one just lands near the answer immediately.
pub(crate) fn solve_session_inner(
    cfg: &EptasConfig,
    inst: &Instance,
    replay: Option<&SolverState>,
    hint: Option<f64>,
) -> Result<(EptasResult, Option<SolverState>), EptasError> {
    let start = Instant::now();
    validate_instance(inst).map_err(EptasError::Infeasible)?;
    let mut report = EptasReport::default();
    // When the caller installed an `obs::Recorder`, attach the phase
    // profile for exactly this solve to the report (the cursor scopes
    // out anything the recorder saw before us).
    let obs_session = obs::handle().map(|h| {
        let cursor = h.cursor();
        (h, cursor)
    });

    if inst.num_jobs() == 0 {
        report.elapsed = start.elapsed();
        let result = EptasResult {
            schedule: Schedule::unassigned(0, inst.num_machines().max(1)),
            makespan: 0.0,
            report,
        };
        return Ok((result, None));
    }

    let lb = lower_bounds(inst).combined();
    let ub_sched = greedy_upper_bound(inst);
    let ub = ub_sched.makespan(inst);
    report.lower_bound = lb;
    report.lpt_upper_bound = ub;

    // LPT already optimal (or within rounding): done. No pipeline ran, so
    // there is nothing to cache.
    if ub <= lb * (1.0 + 1e-9) {
        report.chosen_guess = Some(ub);
        report.elapsed = start.elapsed();
        let result = EptasResult { schedule: ub_sched, makespan: ub, report };
        return Ok((result, None));
    }

    // The cancellation root for this solve. With a portfolio deadline
    // configured it trips on the wall clock and every phase boundary /
    // B&B node polls it; without one it never trips and the checks are
    // a dead atomic load. Speculative windows hang their per-node child
    // tokens off it either way.
    let deadline = cfg.portfolio_deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let root_token = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };

    // Replay attempt: retry the cached winning guess with the cached
    // pattern pool and warm basis before paying for the binary search.
    // A stale or mismatched seed fails fast (`SeedMismatch`) and the
    // cold search below takes over — a cache collision can cost time,
    // never correctness.
    let mut best: Option<(Schedule, f64, GuessStats, f64, ReplaySeed)> = None;
    if let Some(state) = replay {
        report.guesses_tried += 1;
        match try_guess(
            cfg,
            inst,
            state.chosen_guess,
            &mut report.stats,
            Some(&state.seed),
            Some(&root_token),
        ) {
            Ok((sched, gstats, seed)) => {
                let ms = sched.makespan(inst);
                report.replayed = true;
                best = Some((sched, ms, gstats, state.chosen_guess, seed));
            }
            Err(fail) => report.failures.push((state.chosen_guess, fail)),
        }
    }

    if best.is_none() {
        // Geometric guess grid.
        let eps = cfg.epsilon;
        let step = 1.0 + eps * cfg.grid_factor;
        let mut grid = Vec::new();
        let mut t = lb;
        while t < ub * (1.0 - 1e-12) {
            grid.push(t);
            t *= step;
        }
        grid.push(ub);

        // Binary search the smallest guess that succeeds. With
        // `speculative_guesses > 1` the search runs in speculative
        // windows: likely midpoints race ahead of the verdict, and the
        // commit order below guarantees the chosen guess is exactly the
        // one the plain loop would pick.
        let (mut lo, mut hi) = (0usize, grid.len() - 1);
        // Nearest grid index to the similarity-cache hint, if any. Only
        // the first probe is overridden; bisection is correct from any
        // starting midpoint inside [lo, hi].
        let mut first_mid = hint.and_then(|h| {
            let up = grid.partition_point(|&g| g < h);
            let cand = if up == 0 {
                0
            } else if up >= grid.len() {
                grid.len() - 1
            } else if (h - grid[up - 1]).abs() <= (grid[up] - h).abs() {
                up - 1
            } else {
                up
            };
            (cand >= lo && cand <= hi).then_some(cand)
        });
        if cfg.speculative_guesses <= 1 {
            while lo <= hi {
                let mid = first_mid.take().unwrap_or((lo + hi) / 2);
                report.guesses_tried += 1;
                match try_guess(cfg, inst, grid[mid], &mut report.stats, None, Some(&root_token)) {
                    Ok((sched, gstats, seed)) => {
                        let ms = sched.makespan(inst);
                        let better = best.as_ref().is_none_or(|&(_, bms, _, _, _)| ms < bms);
                        if better {
                            best = Some((sched, ms, gstats, grid[mid], seed));
                        }
                        if mid == 0 {
                            break;
                        }
                        hi = mid - 1;
                    }
                    Err(GuessFailure::Cancelled) => {
                        // The portfolio deadline fired mid-guess. A
                        // cancelled guess is inconclusive — raising `lo`
                        // on it could certify a wrong "smallest feasible
                        // guess" — so the search stops here and the LPT
                        // arm below answers.
                        report.failures.push((grid[mid], GuessFailure::Cancelled));
                        break;
                    }
                    Err(fail) => {
                        report.failures.push((grid[mid], fail));
                        lo = mid + 1;
                    }
                }
            }
        } else {
            'windows: while lo <= hi {
                let window =
                    build_window(lo, hi, cfg.speculative_guesses, &root_token, first_mid.take());
                // The three speculation counters are *structural*: they
                // depend only on the window shapes and the verdict path,
                // never on which thread finished first, so reports stay
                // byte-identical at any thread count.
                report.stats.speculative_guesses_launched += window.len() as u64;
                let committed = execute_window(cfg, inst, &grid, &window);
                report.stats.speculative_wins += committed.len() as u64 - 1;
                report.stats.guesses_cancelled += (window.len() - committed.len()) as u64;
                let mut stop = false;
                for (idx, res, nstats) in committed {
                    // Merging the private per-node stats in commit order
                    // reproduces the sequential totals: `try_guess` only
                    // ever adds deltas, and `Stats::add` is fieldwise.
                    report.stats.add(&nstats);
                    report.guesses_tried += 1;
                    let node = &window[idx];
                    match res {
                        Ok((sched, gstats, seed)) => {
                            let ms = sched.makespan(inst);
                            let better = best.as_ref().is_none_or(|&(_, bms, _, _, _)| ms < bms);
                            if better {
                                best = Some((sched, ms, gstats, grid[node.mid], seed));
                            }
                            if node.mid == 0 {
                                stop = true;
                            } else {
                                lo = node.lo;
                                hi = node.mid - 1;
                            }
                        }
                        Err(GuessFailure::Cancelled) => {
                            report.failures.push((grid[node.mid], GuessFailure::Cancelled));
                            stop = true;
                        }
                        Err(fail) => {
                            report.failures.push((grid[node.mid], fail));
                            lo = node.mid + 1;
                            hi = node.hi;
                        }
                    }
                }
                if stop {
                    break 'windows;
                }
            }
        }
    }

    let (mut schedule, mut makespan, state) = match best {
        Some((sched, ms, gstats, guess, seed)) => {
            report.chosen_guess = Some(guess);
            report.last_success = Some(gstats);
            (sched, ms, Some(SolverState { chosen_guess: guess, seed }))
        }
        None => {
            report.fell_back_to_lpt = true;
            report.stats.lpt_fallbacks += 1;
            (ub_sched.clone(), ub, None)
        }
    };

    // The guess pipeline can only beat LPT or match it; keep whichever
    // is better under the true sizes. The state stays valid either way —
    // it describes the pipeline solve, not which schedule won.
    let lpt_won = ub < makespan;
    if lpt_won {
        schedule = ub_sched;
        makespan = ub;
    }
    // Portfolio accounting: the deadline fired and the always-running
    // bag-aware-LPT arm supplied the answer.
    if deadline.is_some() && root_token.is_cancelled() && (lpt_won || report.fell_back_to_lpt) {
        report.stats.portfolio_winner += 1;
    }

    // Safety net: the paper path yields a feasible schedule; repair
    // loudly if a phase misbehaved.
    report.safety_net_moves = safety_net(inst, &mut schedule);
    if report.safety_net_moves > 0 {
        makespan = schedule.makespan(inst);
    }
    if let Some((h, cursor)) = &obs_session {
        report.profile = Some(h.profile_since(cursor));
    }
    report.elapsed = start.elapsed();
    debug_assert!(schedule.is_feasible(inst));
    Ok((EptasResult { schedule, makespan, report }, state))
}

/// The per-guess result type shared by the sequential loop and the
/// speculative workers.
type GuessOutcome = Result<(Schedule, GuessStats, ReplaySeed), GuessFailure>;

/// One node of a speculative prediction window: a `(lo, hi)` search
/// range with its midpoint guess and the two possible continuations.
struct SpecNode {
    lo: usize,
    hi: usize,
    mid: usize,
    /// Continuation when this guess succeeds (search moves down).
    success: Option<usize>,
    /// Continuation when this guess fails (search moves up).
    failure: Option<usize>,
    /// Child of the tree-parent's token, so cancelling a mispredicted
    /// branch cancels its whole subtree.
    token: CancelToken,
}

/// Build the speculative prediction tree over the binary-search range
/// `[lo, hi]`: each node's children are exactly the ranges the plain
/// loop would visit next on success / failure, expanded breadth-first
/// (success side first) up to `cap` nodes. The tree shape is a pure
/// function of `(lo, hi, cap, root_mid)` — no timing enters it.
///
/// `root_mid` overrides the root node's probe point (the similarity
/// cache's hinted first guess); children still bisect their own ranges,
/// so the tree stays a pure function of its arguments and the
/// structural speculation counters stay deterministic.
fn build_window(
    lo: usize,
    hi: usize,
    cap: usize,
    root: &CancelToken,
    root_mid: Option<usize>,
) -> Vec<SpecNode> {
    let mut nodes = vec![SpecNode {
        lo,
        hi,
        mid: root_mid.filter(|&m| m >= lo && m <= hi).unwrap_or((lo + hi) / 2),
        success: None,
        failure: None,
        token: root.child(),
    }];
    let mut queue = VecDeque::from([0usize]);
    while let Some(i) = queue.pop_front() {
        let (nlo, nhi, nmid) = (nodes[i].lo, nodes[i].hi, nodes[i].mid);
        // Success continuation: `hi = mid - 1` (the plain loop breaks at
        // `mid == 0` instead, and exits when the range empties).
        if nmid > 0 && nlo < nmid && nodes.len() < cap {
            let token = nodes[i].token.child();
            nodes[i].success = Some(nodes.len());
            queue.push_back(nodes.len());
            let (clo, chi) = (nlo, nmid - 1);
            nodes.push(SpecNode {
                lo: clo,
                hi: chi,
                mid: (clo + chi) / 2,
                success: None,
                failure: None,
                token,
            });
        }
        // Failure continuation: `lo = mid + 1`.
        if nmid < nhi && nodes.len() < cap {
            let token = nodes[i].token.child();
            nodes[i].failure = Some(nodes.len());
            queue.push_back(nodes.len());
            let (clo, chi) = (nmid + 1, nhi);
            nodes.push(SpecNode {
                lo: clo,
                hi: chi,
                mid: (clo + chi) / 2,
                success: None,
                failure: None,
                token,
            });
        }
    }
    nodes
}

/// Walk the verdict path through a window, committing nodes in grid
/// order. `obtain` produces node `i`'s outcome (inline, or by waiting on
/// a racing worker); the walk cancels the mispredicted subtree the
/// moment each verdict lands. The returned commit sequence is exactly
/// the node sequence the plain sequential loop would have executed.
fn walk_committed(
    window: &[SpecNode],
    mut obtain: impl FnMut(usize) -> (GuessOutcome, Stats),
) -> Vec<(usize, GuessOutcome, Stats)> {
    let mut committed = Vec::new();
    let mut cur = 0usize;
    loop {
        let (res, nstats) = obtain(cur);
        let node = &window[cur];
        let next = match &res {
            Ok(_) => {
                if let Some(f) = node.failure {
                    window[f].token.cancel();
                }
                if node.mid == 0 {
                    None
                } else {
                    node.success
                }
            }
            Err(GuessFailure::Cancelled) => {
                // Deadline: the whole search stops; nothing to predict.
                if let Some(s) = node.success {
                    window[s].token.cancel();
                }
                if let Some(f) = node.failure {
                    window[f].token.cancel();
                }
                None
            }
            Err(_) => {
                if let Some(s) = node.success {
                    window[s].token.cancel();
                }
                node.failure
            }
        };
        committed.push((cur, res, nstats));
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }
    committed
}

/// Execute one speculative window: with one solver thread only the
/// verdict-path nodes run (speculation costs nothing, counters stay
/// structural); with more, workers claim nodes in breadth-first order
/// and race ahead while the main thread commits along the actual path.
fn execute_window(
    cfg: &EptasConfig,
    inst: &Instance,
    grid: &[f64],
    window: &[SpecNode],
) -> Vec<(usize, GuessOutcome, Stats)> {
    let threads = cfg.solver_threads.max(1).min(window.len());
    if threads <= 1 {
        return walk_committed(window, |i| {
            let mut nstats = Stats::default();
            let res = try_guess(
                cfg,
                inst,
                grid[window[i].mid],
                &mut nstats,
                None,
                Some(&window[i].token),
            );
            (res, nstats)
        });
    }
    let claimed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(GuessOutcome, Stats)>>> =
        (0..window.len()).map(|_| Mutex::new(None)).collect();
    let gate = (Mutex::new(()), Condvar::new());
    // Each speculative node records its spans under a private region:
    // after the commit walk, losers' regions are discarded so cancelled
    // work is visible in the trace but never in the profile (keeping
    // profile counts byte-identical to the sequential walk).
    let obs_handle = obs::handle();
    let regions: Vec<u64> = match &obs_handle {
        Some(h) => window.iter().map(|_| h.new_region()).collect(),
        None => Vec::new(),
    };
    std::thread::scope(|scope| {
        let (claimed, slots, gate, regions) = (&claimed, &slots, &gate, &regions);
        for w in 0..threads {
            let worker_handle = obs_handle.clone();
            scope.spawn(move || {
                let _obs = worker_handle.map(|h| h.install(&format!("spec-{w}")));
                loop {
                    let i = claimed.fetch_add(1, Ordering::Relaxed);
                    if i >= window.len() {
                        break;
                    }
                    if !regions.is_empty() {
                        obs::set_region(regions[i]);
                    }
                    let node = &window[i];
                    // A node cancelled before it started still fills its
                    // slot: path nodes are never cancelled except by the
                    // portfolio deadline, where `Cancelled` is the answer.
                    let out = if node.token.is_cancelled() {
                        (Err(GuessFailure::Cancelled), Stats::default())
                    } else {
                        let mut nstats = Stats::default();
                        let res = try_guess(
                            cfg,
                            inst,
                            grid[node.mid],
                            &mut nstats,
                            None,
                            Some(&node.token),
                        );
                        (res, nstats)
                    };
                    *slots[i].lock().unwrap() = Some(out);
                    let _g = gate.0.lock().unwrap();
                    gate.1.notify_all();
                }
            });
        }
        let committed = walk_committed(window, |i| loop {
            if let Some(out) = slots[i].lock().unwrap().take() {
                return out;
            }
            let g = gate.0.lock().unwrap();
            // Timed wait: robust against the store landing between the
            // slot check and the wait.
            drop(gate.1.wait_timeout(g, Duration::from_millis(5)).unwrap());
        });
        if let Some(h) = &obs_handle {
            let mut kept = vec![false; window.len()];
            for &(i, _, _) in &committed {
                kept[i] = true;
            }
            for (i, &r) in regions.iter().enumerate() {
                if !kept[i] {
                    h.discard_region(r);
                }
            }
        }
        // The path is committed; stop whatever speculation is still in
        // flight so the scope join is prompt.
        for node in window {
            node.token.cancel();
        }
        committed
    })
}

/// Run the full pipeline for one makespan guess. Work counters are
/// accumulated into `stats` incrementally, phase by phase, so the cost
/// of guesses that *fail* midway still shows up in the report. When
/// `replay` carries a seed from a previous solve of the same shape, the
/// pattern phase skips enumeration/pricing and re-solves from the cached
/// pool and basis; the (refreshed) seed for the *next* replay is always
/// returned alongside the schedule. A tripped `cancel` token aborts at
/// the next phase boundary (or inside the MILP / pricing loop) with
/// [`GuessFailure::Cancelled`].
fn try_guess(
    cfg: &EptasConfig,
    inst: &Instance,
    t0: f64,
    stats: &mut Stats,
    replay: Option<&ReplaySeed>,
    cancel: Option<&CancelToken>,
) -> Result<(Schedule, GuessStats, ReplaySeed), GuessFailure> {
    let _guess_span = obs::Span::enter("guess");
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
    let (rounded, trans) = {
        let _span = obs::Span::enter("transform");
        let rounded = scale_and_round(&sizes, t0, cfg.epsilon).ok_or(GuessFailure::JobTooLarge)?;
        let class = classify(&rounded, inst.num_machines());
        let priority = select_priority(inst, &rounded, &class, cfg);
        let trans = transform(inst, &rounded, &class, &priority);
        (rounded, trans)
    };
    if cancelled() {
        return Err(GuessFailure::Cancelled);
    }

    // Pattern generation (column-generation pricing with the eager
    // enumerator as oracle/fallback) and the MILP solve; all pattern,
    // pricing and LP work counters are recorded inside.
    let mut solve = PatternSolve::new(&trans, cfg);
    if let Some(seed) = replay {
        solve = solve.replay(seed);
    }
    if let Some(token) = cancel {
        solve = solve.cancel_token(token);
    }
    let sol = {
        let _span = obs::Span::enter("patterns");
        solve.run(stats)?
    };
    if cancelled() {
        return Err(GuessFailure::Cancelled);
    }
    let (ps, out) = (sol.patterns, sol.outcome);
    // Carry the integral solution in the seed: the next replay of this
    // shape hands it straight to placement, skipping the MILP as well.
    let seed = sol.seed.with_solution(&ps, &out);

    let mut state = WorkState::new(trans.tinst.num_jobs(), inst.num_machines());
    let (la, lemma7_swaps) = {
        let _span = obs::Span::enter("place.large");
        let la = assign_large(&trans, &ps, &out.x, &mut state)?;
        // repair_conflicts records its swaps into `stats` itself, so
        // work done before a SwapRepair abort is not lost.
        let lemma7_swaps = repair_conflicts(&trans, &mut state, &la.conflicts, stats)?;
        (la, lemma7_swaps)
    };

    let small_stats = {
        let _span = obs::Span::enter("place.small");
        place_priority_smalls(&trans, &ps, &out, &la.machine_pattern, &mut state);
        place_nonpriority_smalls(&trans, cfg.epsilon, &mut state);
        repair_priority_conflicts(&trans, &la.origin, &mut state)
    };
    stats.swap_repair_rounds += small_stats.lemma11_moves as u64;

    if cancelled() {
        return Err(GuessFailure::Cancelled);
    }
    let mediums = {
        let _span = obs::Span::enter("place.medium_flow");
        reinsert_medium(inst, &trans, &rounded, &mut state, stats)?
    };
    stats.mediums_reinserted += mediums.len() as u64;
    let (schedule, lemma4_swaps) = {
        let _span = obs::Span::enter("place.undo");
        undo_transform(inst, &trans, &state, &mediums)?
    };
    stats.swap_repair_rounds += lemma4_swaps as u64;

    let gstats = GuessStats {
        patterns: ps.patterns.len(),
        symbols: ps.symbols.len(),
        priority_bags: trans.is_priority_tbag.iter().filter(|&&p| p).count(),
        joint_milp: out.joint,
        milp_nodes: out.nodes,
        lp_iterations: out.lp_iterations,
        lemma7_swaps,
        lemma11_moves: small_stats.lemma11_moves,
        lemma4_swaps,
        medium_reinserted: mediums.len(),
        filler_jobs: trans.filler_for.iter().filter(|f| f.is_some()).count(),
    };
    Ok((schedule, gstats, seed))
}

/// Conflict-aware LPT, used to seed the upper bound (kept internal so the
/// core crate stays dependency-light; `bagsched-baselines` ships the
/// fully featured version).
fn greedy_upper_bound(inst: &Instance) -> Schedule {
    let m = inst.num_machines();
    let mut order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; m];
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for j in order {
        let bag = inst.bag_of(j).idx();
        let best = (0..m)
            .filter(|&i| !has_bag[i][bag])
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("validated instance: |B| <= m");
        sched.assign(j, MachineId(best as u32));
        loads[best] += inst.size(j);
        has_bag[best][bag] = true;
    }
    sched
}

/// Move conflicting jobs to the least-loaded conflict-free machine until
/// the schedule is feasible. Returns the number of moves.
fn safety_net(inst: &Instance, sched: &mut Schedule) -> usize {
    let mut moves = 0usize;
    loop {
        let conflicts = sched.conflicts(inst);
        if conflicts.is_empty() {
            return moves;
        }
        let loads = sched.loads(inst);
        for (_, job) in conflicts {
            let bag = inst.bag_of(job);
            // Recompute occupancy lazily; correctness over speed — this
            // path is cold by construction.
            let mut occupied = vec![false; inst.num_machines()];
            for (other, &mid) in sched.assignment().iter().enumerate() {
                if other != job.idx() && inst.bag_of(JobId(other as u32)) == bag {
                    occupied[mid.idx()] = true;
                }
            }
            let target = (0..inst.num_machines())
                .filter(|&i| !occupied[i])
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
                .expect("validated instance: |B| <= m");
            sched.assign(job, MachineId(target as u32));
            moves += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use bagsched_types::gen;
    use bagsched_types::validate_schedule;

    #[test]
    fn empty_instance() {
        let inst = bagsched_types::InstanceBuilder::new(3).build();
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn infeasible_instance_rejected() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0)], 1);
        assert!(matches!(
            Solver::with_epsilon(0.5).solve_instance(&inst),
            Err(EptasError::Infeasible(_))
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_facade_still_solves() {
        // `Eptas` is a shim over the session driver; it must keep giving
        // the same answers until it is removed.
        let inst = Instance::new(&[(3.5, 0)], 2);
        let r = Eptas::with_epsilon(0.5).solve(&inst).unwrap();
        assert_eq!(r.makespan, 3.5);
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn single_job() {
        let inst = Instance::new(&[(3.5, 0)], 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert_eq!(r.makespan, 3.5);
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn tiny_instance_feasible_and_bounded() {
        let inst = Instance::new(&[(0.9, 0), (0.9, 1), (0.4, 2), (0.05, 0), (0.05, 3)], 3);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).unwrap();
        let lb = lower_bounds(&inst).combined();
        assert!(r.makespan >= lb - 1e-9);
        assert!(r.makespan <= lb * (1.0 + 3.0 * 0.5) + 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.report.safety_net_moves, 0, "paper path must not need the net");
    }

    #[test]
    fn families_feasible_no_safety_net() {
        for family in gen::Family::ALL {
            let inst = family.generate(24, 3, 11);
            let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
            validate_schedule(&inst, &r.schedule)
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(r.report.safety_net_moves, 0, "{}: safety net engaged", family.name());
        }
    }

    #[test]
    fn beats_or_matches_lpt() {
        for seed in 0..3 {
            let inst = gen::uniform(20, 3, 8, seed);
            let r = Solver::with_epsilon(0.4).solve_instance(&inst).unwrap();
            let lpt = greedy_upper_bound(&inst).makespan(&inst);
            assert!(r.makespan <= lpt + 1e-9, "seed {seed}: {} > {lpt}", r.makespan);
        }
    }

    #[test]
    fn fig1_gadget_near_optimal() {
        let inst = gen::fig1_gadget(3);
        let r = Solver::with_epsilon(0.4).solve_instance(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).unwrap();
        // OPT = 1.0 exactly; the EPTAS must land within 1 + O(eps).
        assert!(r.makespan <= 1.0 + 3.0 * 0.4 + 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn report_carries_diagnostics() {
        let inst = gen::uniform(15, 3, 6, 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert!(r.report.guesses_tried >= 1);
        assert!(r.report.lower_bound > 0.0);
        assert!(r.report.lpt_upper_bound >= r.report.lower_bound - 1e-9);
        assert!(!r.report.replayed, "cold solve must not claim a replay");
        if !r.report.fell_back_to_lpt {
            assert!(r.report.chosen_guess.is_some());
        }
    }

    #[test]
    fn session_replay_matches_cold_solve() {
        // Solving through an explicit session handle must reproduce the
        // cold schedule byte for byte: the replayed MILP is bit-identical
        // (same pool, same basis, same branching), and every later phase
        // is deterministic in its input.
        let inst = gen::uniform(40, 4, 12, 7);
        let solver = Solver::with_epsilon(0.5);
        let (cold, state) = solver.solve_session(&inst, None).unwrap();
        let state = state.expect("pipeline win must yield replay state");
        let (warm, state2) = solver.solve_session(&inst, Some(&state)).unwrap();
        assert!(warm.report.replayed, "seeded session must replay");
        assert!(!cold.report.replayed);
        assert_eq!(warm.schedule.assignment(), cold.schedule.assignment());
        assert_eq!(warm.makespan.to_bits(), cold.makespan.to_bits());
        assert_eq!(warm.report.guesses_tried, 1, "replay must skip the binary search");
        assert!(state2.is_some(), "replay must refresh the state");
        // The replay skips enumeration/pricing entirely.
        assert_eq!(warm.report.stats.patterns_enumerated, 0);
        assert_eq!(warm.report.stats.pricing_rounds, 0);
    }

    #[test]
    fn stats_accumulate_across_guesses() {
        // An instance the full pipeline engages on (patterns, MILP, flow,
        // repair all run): every aggregate counter must reflect real work.
        let inst = gen::uniform(40, 4, 12, 7);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let stats = &r.report.stats;
        for (name, value) in stats.named() {
            // The seed pool can already be LP-complete, in which case the
            // pricing loop converges without generating a single column;
            // the aggregation/warm-start counters stay zero when the
            // accepted guess has no priority bags at all (everything
            // small) — the clustered test below covers them.
            // The branch-and-price trio is conditional too: dual pivots /
            // node warm starts need a node LP that actually re-optimizes
            // (a dive of all-optimal-at-parent-basis children pivots
            // zero times), and tree columns only appear when a node dive
            // was missing a column.
            // The lifecycle pair only moves when the purge threshold
            // actually fires (big degenerate masters); short solves never
            // reach a refactorization; `lpt_fallbacks` is an assertion
            // counter that must stay zero on instances the pipeline wins.
            // The cache trio belongs to `Solver` with a cache attached —
            // a plain one-shot solve never touches it.
            // The parallel-execution counters only move when pricing
            // shards, guess speculation or a portfolio deadline are
            // configured; the defaults run the classic sequential path.
            // The coarsening trio engages only past the symbol budget,
            // and `cache_near_hits` needs a solver-level cache.
            let may_be_zero = matches!(
                name,
                "columns_generated"
                    | "bag_classes"
                    | "symbols_after_aggregation"
                    | "warm_start_pivots_saved"
                    | "dual_pivots"
                    | "node_warm_starts"
                    | "tree_columns_generated"
                    | "basis_refactorizations"
                    | "columns_purged"
                    | "columns_readmitted"
                    | "lpt_fallbacks"
                    | "cache_hits"
                    | "cache_misses"
                    | "cache_evictions"
                    | "pricing_shards_run"
                    | "speculative_guesses_launched"
                    | "speculative_wins"
                    | "guesses_cancelled"
                    | "portfolio_winner"
                    | "coarse_classes_formed"
                    | "repair_jobs_moved"
                    | "repair_failures"
                    | "cache_near_hits"
            );
            if may_be_zero {
                continue;
            }
            assert!(value > 0, "counter {name} stayed zero on a full-pipeline instance");
        }
        assert!(
            stats.lp_solves >= stats.milp_nodes,
            "B&B contributes one LP per node; pricing master re-solves only add"
        );
        // Per-guess stats of the winning guess are a lower bound on the
        // aggregate (failed guesses only add).
        if let Some(s) = &r.report.last_success {
            assert!(stats.patterns_enumerated >= s.patterns as u64);
            assert!(stats.simplex_pivots >= s.lp_iterations as u64);
        }
    }

    #[test]
    fn lp_solves_diverge_from_milp_nodes_on_priced_instances() {
        // Every pricing round re-solves the master LP without exploring a
        // branch-and-bound node, so on an instance where the pricing loop
        // runs at all the two counters must separate. (Before column
        // generation the two were always equal — one LP relaxation per
        // explored node.)
        let inst = gen::uniform(40, 4, 12, 7);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let stats = &r.report.stats;
        assert!(stats.pricing_rounds > 0, "instance was expected to exercise pricing");
        assert!(
            stats.lp_solves > stats.milp_nodes,
            "lp_solves ({}) must exceed milp_nodes ({}) once master re-solves are counted",
            stats.lp_solves,
            stats.milp_nodes
        );
    }

    #[test]
    fn aggregation_counters_populate_on_clustered_instances() {
        // Tight clustered instances have priority bags at every real
        // guess, so the class/aggregation counters must be live, and the
        // pricing loop runs enough master re-solves for the warm-start
        // saving estimate to be positive.
        let inst = gen::clustered(60, 20, 20, 5, 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let stats = &r.report.stats;
        assert!(stats.bag_classes > 0, "no bag classes counted");
        assert!(stats.symbols_after_aggregation > 0, "no aggregated symbols counted");
        assert!(
            stats.bag_classes <= stats.symbols_after_aggregation,
            "a class contributes at least one symbol"
        );
        assert!(stats.warm_start_pivots_saved > 0, "warm starts saved no pivots");
    }

    #[test]
    fn speculative_search_matches_sequential() {
        // The speculative window commits verdicts in grid order, so the
        // entire solve — schedule, makespan, guess sequence, every work
        // counter — must match the plain loop; only the three structural
        // speculation counters may differ from zero.
        let inst = gen::uniform(40, 4, 12, 7);
        let base = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.speculative_guesses = 3;
        let spec = Solver::new(cfg).solve_instance(&inst).unwrap();
        assert_eq!(spec.schedule.assignment(), base.schedule.assignment());
        assert_eq!(spec.makespan.to_bits(), base.makespan.to_bits());
        assert_eq!(spec.report.guesses_tried, base.report.guesses_tried);
        assert!(spec.report.stats.speculative_guesses_launched > 0);
        let mut masked = spec.report.stats;
        masked.speculative_guesses_launched = 0;
        masked.speculative_wins = 0;
        masked.guesses_cancelled = 0;
        assert_eq!(masked, base.report.stats);
    }

    #[test]
    fn sharded_pricing_matches_plain_at_any_thread_count() {
        // Shard count fixed, thread count varied: the merge is a pure
        // function of the shard results, so schedules and reports are
        // identical at 1 and 4 threads.
        let inst = gen::uniform(40, 4, 12, 7);
        let solve = |threads: usize| {
            let mut cfg = EptasConfig::with_epsilon(0.5);
            cfg.pricing_shards = 2;
            cfg.solver_threads = threads;
            Solver::new(cfg).solve_instance(&inst).unwrap()
        };
        let a = solve(1);
        let b = solve(4);
        assert_eq!(a.schedule.assignment(), b.schedule.assignment());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.report.stats, b.report.stats);
        assert!(a.report.stats.pricing_shards_run > 0, "sharded rounds must be counted");
    }

    #[test]
    fn portfolio_deadline_yields_lpt_schedule() {
        // A deadline that fires immediately forces every guess to cancel;
        // the LPT arm must answer with a feasible schedule and the
        // portfolio counter must record the win.
        let inst = gen::uniform(40, 4, 12, 7);
        let mut cfg = EptasConfig::with_epsilon(0.5);
        cfg.portfolio_deadline_ms = Some(0);
        let r = Solver::new(cfg).solve_instance(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).unwrap();
        assert!(r.report.fell_back_to_lpt, "all guesses cancelled: LPT must answer");
        assert_eq!(r.report.stats.portfolio_winner, 1);
        assert!(r.report.failures.iter().any(|(_, f)| matches!(f, GuessFailure::Cancelled)));
        assert!((r.makespan - r.report.lpt_upper_bound).abs() < 1e-12);
    }

    #[test]
    fn stats_zero_on_lpt_shortcut() {
        // A single job is solved by the LPT-already-optimal shortcut; no
        // pipeline work should be counted.
        let inst = Instance::new(&[(3.5, 0)], 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert_eq!(r.report.stats, Stats::default());
    }
}
