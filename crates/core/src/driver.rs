//! The top-level EPTAS driver: dual-approximation binary search around
//! the per-guess pipeline.
//!
//! The binary-search framework (paper §2, "with a binary search framework
//! we may assume that we know the height of an optimal makespan") walks a
//! geometric grid of makespan guesses between a certified lower bound and
//! the conflict-aware-LPT upper bound. Each guess runs the full pipeline;
//! an infeasibility proof moves the search up, success moves it down. The
//! returned schedule is always feasible: a final safety net (counted in
//! the report, zero on the paper path) would repair any residual
//! conflict.
//!
//! The driver is session-aware: [`solve_session_inner`] optionally takes
//! a [`SolverState`] captured by a previous run on the same rounded
//! instance shape and *replays* it — the cached winning guess is retried
//! first with the cached pattern pool and warm basis, and only on a seed
//! mismatch does the full binary search run cold. [`crate::Solver`] owns
//! the state cache; the deprecated [`Eptas`] facade always solves cold.

use crate::assign_large::{assign_large, WorkState};
use crate::classify::classify;
use crate::config::EptasConfig;
use crate::medium_flow::reinsert_medium;
use crate::milp_model::{PatternSolve, ReplaySeed};
use crate::priority::select_priority;
use crate::report::{EptasReport, GuessFailure, GuessStats, Stats};
use crate::rounding::scale_and_round;
use crate::small::{place_nonpriority_smalls, place_priority_smalls, repair_priority_conflicts};
use crate::solver::SolverState;
use crate::swap_repair::repair_conflicts;
use crate::transform::transform;
use crate::undo::undo_transform;
use bagsched_types::{
    lowerbound::lower_bounds, validate_instance, Instance, InstanceError, JobId, MachineId,
    Schedule,
};
use std::time::Instant;

/// Why the EPTAS refused to run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EptasError {
    /// The instance admits no feasible schedule.
    Infeasible(InstanceError),
}

impl std::fmt::Display for EptasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EptasError::Infeasible(e) => write!(f, "infeasible instance: {e}"),
        }
    }
}

impl std::error::Error for EptasError {}

/// Result of a successful EPTAS run.
#[derive(Debug, Clone)]
pub struct EptasResult {
    /// A feasible schedule for the input instance.
    pub schedule: Schedule,
    /// Its makespan (under the original, unrounded sizes).
    pub makespan: f64,
    /// Diagnostics (guesses, phases, swap counts, fallbacks).
    pub report: EptasReport,
}

/// One-shot facade over the session API, kept for source compatibility.
#[deprecated(note = "use `Solver`: `Solver::with_epsilon(eps).solve_instance(&inst)` replaces \
            `Eptas::with_epsilon(eps).solve(&inst)` and adds solver-state caching")]
#[derive(Debug, Clone)]
pub struct Eptas {
    cfg: EptasConfig,
}

#[allow(deprecated)]
impl Eptas {
    /// Create a solver with the given configuration.
    pub fn new(cfg: EptasConfig) -> Self {
        Eptas { cfg }
    }

    /// Shorthand: default configuration at `eps`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Eptas::new(EptasConfig::with_epsilon(epsilon))
    }

    /// The configuration in use.
    pub fn config(&self) -> &EptasConfig {
        &self.cfg
    }

    /// Compute a `(1 + O(eps))`-approximate feasible schedule (cold; no
    /// state is cached or replayed).
    pub fn solve(&self, inst: &Instance) -> Result<EptasResult, EptasError> {
        solve_session_inner(&self.cfg, inst, None).map(|(result, _)| result)
    }
}

/// The shared driver behind [`crate::Solver`] and the deprecated
/// [`Eptas`] facade. Returns the result plus, when the pipeline (not an
/// LPT shortcut/fallback) produced the schedule, a [`SolverState`] that
/// replays this solve on the next structurally identical request.
pub(crate) fn solve_session_inner(
    cfg: &EptasConfig,
    inst: &Instance,
    replay: Option<&SolverState>,
) -> Result<(EptasResult, Option<SolverState>), EptasError> {
    let start = Instant::now();
    validate_instance(inst).map_err(EptasError::Infeasible)?;
    let mut report = EptasReport::default();

    if inst.num_jobs() == 0 {
        report.elapsed = start.elapsed();
        let result = EptasResult {
            schedule: Schedule::unassigned(0, inst.num_machines().max(1)),
            makespan: 0.0,
            report,
        };
        return Ok((result, None));
    }

    let lb = lower_bounds(inst).combined();
    let ub_sched = greedy_upper_bound(inst);
    let ub = ub_sched.makespan(inst);
    report.lower_bound = lb;
    report.lpt_upper_bound = ub;

    // LPT already optimal (or within rounding): done. No pipeline ran, so
    // there is nothing to cache.
    if ub <= lb * (1.0 + 1e-9) {
        report.chosen_guess = Some(ub);
        report.elapsed = start.elapsed();
        let result = EptasResult { schedule: ub_sched, makespan: ub, report };
        return Ok((result, None));
    }

    // Replay attempt: retry the cached winning guess with the cached
    // pattern pool and warm basis before paying for the binary search.
    // A stale or mismatched seed fails fast (`SeedMismatch`) and the
    // cold search below takes over — a cache collision can cost time,
    // never correctness.
    let mut best: Option<(Schedule, f64, GuessStats, f64, ReplaySeed)> = None;
    if let Some(state) = replay {
        report.guesses_tried += 1;
        match try_guess(cfg, inst, state.chosen_guess, &mut report.stats, Some(&state.seed)) {
            Ok((sched, gstats, seed)) => {
                let ms = sched.makespan(inst);
                report.replayed = true;
                best = Some((sched, ms, gstats, state.chosen_guess, seed));
            }
            Err(fail) => report.failures.push((state.chosen_guess, fail)),
        }
    }

    if best.is_none() {
        // Geometric guess grid.
        let eps = cfg.epsilon;
        let step = 1.0 + eps * cfg.grid_factor;
        let mut grid = Vec::new();
        let mut t = lb;
        while t < ub * (1.0 - 1e-12) {
            grid.push(t);
            t *= step;
        }
        grid.push(ub);

        // Binary search the smallest guess that succeeds.
        let (mut lo, mut hi) = (0usize, grid.len() - 1);
        while lo <= hi {
            let mid = (lo + hi) / 2;
            report.guesses_tried += 1;
            match try_guess(cfg, inst, grid[mid], &mut report.stats, None) {
                Ok((sched, gstats, seed)) => {
                    let ms = sched.makespan(inst);
                    let better = best.as_ref().is_none_or(|&(_, bms, _, _, _)| ms < bms);
                    if better {
                        best = Some((sched, ms, gstats, grid[mid], seed));
                    }
                    if mid == 0 {
                        break;
                    }
                    hi = mid - 1;
                }
                Err(fail) => {
                    report.failures.push((grid[mid], fail));
                    lo = mid + 1;
                }
            }
        }
    }

    let (mut schedule, mut makespan, state) = match best {
        Some((sched, ms, gstats, guess, seed)) => {
            report.chosen_guess = Some(guess);
            report.last_success = Some(gstats);
            (sched, ms, Some(SolverState { chosen_guess: guess, seed }))
        }
        None => {
            report.fell_back_to_lpt = true;
            report.stats.lpt_fallbacks += 1;
            (ub_sched.clone(), ub, None)
        }
    };

    // The guess pipeline can only beat LPT or match it; keep whichever
    // is better under the true sizes. The state stays valid either way —
    // it describes the pipeline solve, not which schedule won.
    if ub < makespan {
        schedule = ub_sched;
        makespan = ub;
    }

    // Safety net: the paper path yields a feasible schedule; repair
    // loudly if a phase misbehaved.
    report.safety_net_moves = safety_net(inst, &mut schedule);
    if report.safety_net_moves > 0 {
        makespan = schedule.makespan(inst);
    }
    report.elapsed = start.elapsed();
    debug_assert!(schedule.is_feasible(inst));
    Ok((EptasResult { schedule, makespan, report }, state))
}

/// Run the full pipeline for one makespan guess. Work counters are
/// accumulated into `stats` incrementally, phase by phase, so the cost
/// of guesses that *fail* midway still shows up in the report. When
/// `replay` carries a seed from a previous solve of the same shape, the
/// pattern phase skips enumeration/pricing and re-solves from the cached
/// pool and basis; the (refreshed) seed for the *next* replay is always
/// returned alongside the schedule.
fn try_guess(
    cfg: &EptasConfig,
    inst: &Instance,
    t0: f64,
    stats: &mut Stats,
    replay: Option<&ReplaySeed>,
) -> Result<(Schedule, GuessStats, ReplaySeed), GuessFailure> {
    let sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
    let rounded = scale_and_round(&sizes, t0, cfg.epsilon).ok_or(GuessFailure::JobTooLarge)?;
    let class = classify(&rounded, inst.num_machines());
    let priority = select_priority(inst, &rounded, &class, cfg);
    let trans = transform(inst, &rounded, &class, &priority);

    // Pattern generation (column-generation pricing with the eager
    // enumerator as oracle/fallback) and the MILP solve; all pattern,
    // pricing and LP work counters are recorded inside.
    let mut solve = PatternSolve::new(&trans, cfg);
    if let Some(seed) = replay {
        solve = solve.replay(seed);
    }
    let sol = solve.run(stats)?;
    let (ps, out) = (sol.patterns, sol.outcome);
    // Carry the integral solution in the seed: the next replay of this
    // shape hands it straight to placement, skipping the MILP as well.
    let seed = sol.seed.with_solution(&ps, &out);

    let mut state = WorkState::new(trans.tinst.num_jobs(), inst.num_machines());
    let la = assign_large(&trans, &ps, &out.x, &mut state)?;
    // repair_conflicts records its swaps into `stats` itself, so
    // work done before a SwapRepair abort is not lost.
    let lemma7_swaps = repair_conflicts(&trans, &mut state, &la.conflicts, stats)?;

    place_priority_smalls(&trans, &ps, &out, &la.machine_pattern, &mut state);
    place_nonpriority_smalls(&trans, cfg.epsilon, &mut state);
    let small_stats = repair_priority_conflicts(&trans, &la.origin, &mut state);
    stats.swap_repair_rounds += small_stats.lemma11_moves as u64;

    let mediums = reinsert_medium(inst, &trans, &rounded, &mut state, stats)?;
    stats.mediums_reinserted += mediums.len() as u64;
    let (schedule, lemma4_swaps) = undo_transform(inst, &trans, &state, &mediums)?;
    stats.swap_repair_rounds += lemma4_swaps as u64;

    let gstats = GuessStats {
        patterns: ps.patterns.len(),
        symbols: ps.symbols.len(),
        priority_bags: trans.is_priority_tbag.iter().filter(|&&p| p).count(),
        joint_milp: out.joint,
        milp_nodes: out.nodes,
        lp_iterations: out.lp_iterations,
        lemma7_swaps,
        lemma11_moves: small_stats.lemma11_moves,
        lemma4_swaps,
        medium_reinserted: mediums.len(),
        filler_jobs: trans.filler_for.iter().filter(|f| f.is_some()).count(),
    };
    Ok((schedule, gstats, seed))
}

/// Conflict-aware LPT, used to seed the upper bound (kept internal so the
/// core crate stays dependency-light; `bagsched-baselines` ships the
/// fully featured version).
fn greedy_upper_bound(inst: &Instance) -> Schedule {
    let m = inst.num_machines();
    let mut order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; m];
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for j in order {
        let bag = inst.bag_of(j).idx();
        let best = (0..m)
            .filter(|&i| !has_bag[i][bag])
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("validated instance: |B| <= m");
        sched.assign(j, MachineId(best as u32));
        loads[best] += inst.size(j);
        has_bag[best][bag] = true;
    }
    sched
}

/// Move conflicting jobs to the least-loaded conflict-free machine until
/// the schedule is feasible. Returns the number of moves.
fn safety_net(inst: &Instance, sched: &mut Schedule) -> usize {
    let mut moves = 0usize;
    loop {
        let conflicts = sched.conflicts(inst);
        if conflicts.is_empty() {
            return moves;
        }
        let loads = sched.loads(inst);
        for (_, job) in conflicts {
            let bag = inst.bag_of(job);
            // Recompute occupancy lazily; correctness over speed — this
            // path is cold by construction.
            let mut occupied = vec![false; inst.num_machines()];
            for (other, &mid) in sched.assignment().iter().enumerate() {
                if other != job.idx() && inst.bag_of(JobId(other as u32)) == bag {
                    occupied[mid.idx()] = true;
                }
            }
            let target = (0..inst.num_machines())
                .filter(|&i| !occupied[i])
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
                .expect("validated instance: |B| <= m");
            sched.assign(job, MachineId(target as u32));
            moves += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use bagsched_types::gen;
    use bagsched_types::validate_schedule;

    #[test]
    fn empty_instance() {
        let inst = bagsched_types::InstanceBuilder::new(3).build();
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn infeasible_instance_rejected() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0)], 1);
        assert!(matches!(
            Solver::with_epsilon(0.5).solve_instance(&inst),
            Err(EptasError::Infeasible(_))
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_facade_still_solves() {
        // `Eptas` is a shim over the session driver; it must keep giving
        // the same answers until it is removed.
        let inst = Instance::new(&[(3.5, 0)], 2);
        let r = Eptas::with_epsilon(0.5).solve(&inst).unwrap();
        assert_eq!(r.makespan, 3.5);
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn single_job() {
        let inst = Instance::new(&[(3.5, 0)], 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert_eq!(r.makespan, 3.5);
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn tiny_instance_feasible_and_bounded() {
        let inst = Instance::new(&[(0.9, 0), (0.9, 1), (0.4, 2), (0.05, 0), (0.05, 3)], 3);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).unwrap();
        let lb = lower_bounds(&inst).combined();
        assert!(r.makespan >= lb - 1e-9);
        assert!(r.makespan <= lb * (1.0 + 3.0 * 0.5) + 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.report.safety_net_moves, 0, "paper path must not need the net");
    }

    #[test]
    fn families_feasible_no_safety_net() {
        for family in gen::Family::ALL {
            let inst = family.generate(24, 3, 11);
            let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
            validate_schedule(&inst, &r.schedule)
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(r.report.safety_net_moves, 0, "{}: safety net engaged", family.name());
        }
    }

    #[test]
    fn beats_or_matches_lpt() {
        for seed in 0..3 {
            let inst = gen::uniform(20, 3, 8, seed);
            let r = Solver::with_epsilon(0.4).solve_instance(&inst).unwrap();
            let lpt = greedy_upper_bound(&inst).makespan(&inst);
            assert!(r.makespan <= lpt + 1e-9, "seed {seed}: {} > {lpt}", r.makespan);
        }
    }

    #[test]
    fn fig1_gadget_near_optimal() {
        let inst = gen::fig1_gadget(3);
        let r = Solver::with_epsilon(0.4).solve_instance(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).unwrap();
        // OPT = 1.0 exactly; the EPTAS must land within 1 + O(eps).
        assert!(r.makespan <= 1.0 + 3.0 * 0.4 + 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn report_carries_diagnostics() {
        let inst = gen::uniform(15, 3, 6, 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert!(r.report.guesses_tried >= 1);
        assert!(r.report.lower_bound > 0.0);
        assert!(r.report.lpt_upper_bound >= r.report.lower_bound - 1e-9);
        assert!(!r.report.replayed, "cold solve must not claim a replay");
        if !r.report.fell_back_to_lpt {
            assert!(r.report.chosen_guess.is_some());
        }
    }

    #[test]
    fn session_replay_matches_cold_solve() {
        // Solving through an explicit session handle must reproduce the
        // cold schedule byte for byte: the replayed MILP is bit-identical
        // (same pool, same basis, same branching), and every later phase
        // is deterministic in its input.
        let inst = gen::uniform(40, 4, 12, 7);
        let solver = Solver::with_epsilon(0.5);
        let (cold, state) = solver.solve_session(&inst, None).unwrap();
        let state = state.expect("pipeline win must yield replay state");
        let (warm, state2) = solver.solve_session(&inst, Some(&state)).unwrap();
        assert!(warm.report.replayed, "seeded session must replay");
        assert!(!cold.report.replayed);
        assert_eq!(warm.schedule.assignment(), cold.schedule.assignment());
        assert_eq!(warm.makespan.to_bits(), cold.makespan.to_bits());
        assert_eq!(warm.report.guesses_tried, 1, "replay must skip the binary search");
        assert!(state2.is_some(), "replay must refresh the state");
        // The replay skips enumeration/pricing entirely.
        assert_eq!(warm.report.stats.patterns_enumerated, 0);
        assert_eq!(warm.report.stats.pricing_rounds, 0);
    }

    #[test]
    fn stats_accumulate_across_guesses() {
        // An instance the full pipeline engages on (patterns, MILP, flow,
        // repair all run): every aggregate counter must reflect real work.
        let inst = gen::uniform(40, 4, 12, 7);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let stats = &r.report.stats;
        for (name, value) in stats.named() {
            // The seed pool can already be LP-complete, in which case the
            // pricing loop converges without generating a single column;
            // the aggregation/warm-start counters stay zero when the
            // accepted guess has no priority bags at all (everything
            // small) — the clustered test below covers them.
            // The branch-and-price trio is conditional too: dual pivots /
            // node warm starts need a node LP that actually re-optimizes
            // (a dive of all-optimal-at-parent-basis children pivots
            // zero times), and tree columns only appear when a node dive
            // was missing a column.
            // The lifecycle pair only moves when the purge threshold
            // actually fires (big degenerate masters); short solves never
            // reach a refactorization; `lpt_fallbacks` is an assertion
            // counter that must stay zero on instances the pipeline wins.
            // The cache trio belongs to `Solver` with a cache attached —
            // a plain one-shot solve never touches it.
            let may_be_zero = matches!(
                name,
                "columns_generated"
                    | "bag_classes"
                    | "symbols_after_aggregation"
                    | "warm_start_pivots_saved"
                    | "dual_pivots"
                    | "node_warm_starts"
                    | "tree_columns_generated"
                    | "basis_refactorizations"
                    | "columns_purged"
                    | "columns_readmitted"
                    | "lpt_fallbacks"
                    | "cache_hits"
                    | "cache_misses"
                    | "cache_evictions"
            );
            if may_be_zero {
                continue;
            }
            assert!(value > 0, "counter {name} stayed zero on a full-pipeline instance");
        }
        assert!(
            stats.lp_solves >= stats.milp_nodes,
            "B&B contributes one LP per node; pricing master re-solves only add"
        );
        // Per-guess stats of the winning guess are a lower bound on the
        // aggregate (failed guesses only add).
        if let Some(s) = &r.report.last_success {
            assert!(stats.patterns_enumerated >= s.patterns as u64);
            assert!(stats.simplex_pivots >= s.lp_iterations as u64);
        }
    }

    #[test]
    fn lp_solves_diverge_from_milp_nodes_on_priced_instances() {
        // Every pricing round re-solves the master LP without exploring a
        // branch-and-bound node, so on an instance where the pricing loop
        // runs at all the two counters must separate. (Before column
        // generation the two were always equal — one LP relaxation per
        // explored node.)
        let inst = gen::uniform(40, 4, 12, 7);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let stats = &r.report.stats;
        assert!(stats.pricing_rounds > 0, "instance was expected to exercise pricing");
        assert!(
            stats.lp_solves > stats.milp_nodes,
            "lp_solves ({}) must exceed milp_nodes ({}) once master re-solves are counted",
            stats.lp_solves,
            stats.milp_nodes
        );
    }

    #[test]
    fn aggregation_counters_populate_on_clustered_instances() {
        // Tight clustered instances have priority bags at every real
        // guess, so the class/aggregation counters must be live, and the
        // pricing loop runs enough master re-solves for the warm-start
        // saving estimate to be positive.
        let inst = gen::clustered(60, 20, 20, 5, 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        let stats = &r.report.stats;
        assert!(stats.bag_classes > 0, "no bag classes counted");
        assert!(stats.symbols_after_aggregation > 0, "no aggregated symbols counted");
        assert!(
            stats.bag_classes <= stats.symbols_after_aggregation,
            "a class contributes at least one symbol"
        );
        assert!(stats.warm_start_pivots_saved > 0, "warm starts saved no pivots");
    }

    #[test]
    fn stats_zero_on_lpt_shortcut() {
        // A single job is solved by the LPT-already-optimal shortcut; no
        // pipeline work should be counted.
        let inst = Instance::new(&[(3.5, 0)], 2);
        let r = Solver::with_epsilon(0.5).solve_instance(&inst).unwrap();
        assert_eq!(r.report.stats, Stats::default());
    }
}
