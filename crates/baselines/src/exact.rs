//! Exact branch-and-bound scheduler: ground-truth optima for small
//! instances.
//!
//! Depth-first search over jobs in non-increasing size order; prunes by
//! the incumbent makespan, an area lower bound on the remaining jobs, and
//! empty-machine symmetry. Exponential in the worst case — the harness
//! only calls it for `n <= ~16`, where it is fast, and it carries an
//! explicit node budget so a pathological case degrades loudly (result is
//! flagged non-optimal) rather than hanging.

use bagsched_types::{
    lowerbound::lower_bounds, validate_instance, Instance, InstanceError, JobId, MachineId,
    Schedule,
};

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: f64,
    /// Search nodes explored.
    pub nodes: usize,
    /// `true` iff the search ran to completion, i.e. `makespan` is the
    /// true optimum (not just an incumbent cut short by the node budget).
    pub proven_optimal: bool,
}

struct Search<'a> {
    inst: &'a Instance,
    order: Vec<JobId>,
    /// Suffix total size from job rank r onward.
    suffix: Vec<f64>,
    loads: Vec<f64>,
    has_bag: Vec<Vec<bool>>,
    assignment: Vec<MachineId>,
    best: f64,
    best_assignment: Vec<MachineId>,
    nodes: usize,
    node_budget: usize,
    exhausted: bool,
    area_lb: f64,
}

impl Search<'_> {
    fn dfs(&mut self, rank: usize, current_max: f64) {
        if current_max >= self.best - 1e-12 {
            return;
        }
        if self.nodes >= self.node_budget {
            self.exhausted = true;
            return;
        }
        self.nodes += 1;
        if rank == self.order.len() {
            self.best = current_max;
            self.best_assignment = self.assignment.clone();
            return;
        }
        // Area bound: remaining jobs must fit somewhere.
        let m = self.loads.len();
        let total_left: f64 = self.suffix[rank];
        let used: f64 = self.loads.iter().sum();
        let area_bound = ((used + total_left) / m as f64).max(self.area_lb);
        if area_bound >= self.best - 1e-12 {
            return;
        }

        let job = self.order[rank];
        let size = self.inst.size(job);
        let bag = self.inst.bag_of(job).idx();

        // Candidate machines: conflict-free, sorted by load ascending,
        // with only the first empty machine kept (symmetry).
        let mut candidates: Vec<usize> = (0..m).filter(|&i| !self.has_bag[i][bag]).collect();
        candidates.sort_by(|&a, &b| self.loads[a].total_cmp(&self.loads[b]).then(a.cmp(&b)));
        let mut seen_empty = false;
        candidates.retain(|&i| {
            if self.loads[i] == 0.0 {
                if seen_empty {
                    return false;
                }
                seen_empty = true;
            }
            true
        });

        for i in candidates {
            let new_load = self.loads[i] + size;
            if new_load >= self.best - 1e-12 {
                continue;
            }
            self.loads[i] = new_load;
            self.has_bag[i][bag] = true;
            self.assignment[job.idx()] = MachineId(i as u32);
            self.dfs(rank + 1, current_max.max(new_load));
            self.loads[i] -= size;
            self.has_bag[i][bag] = false;
            if self.exhausted {
                return;
            }
        }
    }
}

/// Compute an optimal schedule by branch and bound.
///
/// `node_budget` caps the search; when hit, the best incumbent is returned
/// with `proven_optimal = false`.
pub fn exact_makespan(inst: &Instance, node_budget: usize) -> Result<ExactResult, InstanceError> {
    validate_instance(inst)?;
    let m = inst.num_machines();
    if inst.num_jobs() == 0 {
        return Ok(ExactResult {
            schedule: Schedule::unassigned(0, m.max(1)),
            makespan: 0.0,
            nodes: 0,
            proven_optimal: true,
        });
    }

    // Seed the incumbent with conflict-aware LPT.
    let seed = crate::bag_aware_lpt(inst)?;
    let seed_makespan = seed.makespan(inst);
    let lb = lower_bounds(inst).combined();
    if seed_makespan <= lb + 1e-12 {
        // LPT already optimal; no search needed.
        return Ok(ExactResult {
            schedule: seed,
            makespan: seed_makespan,
            nodes: 0,
            proven_optimal: true,
        });
    }

    let mut order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));
    let mut suffix = vec![0.0; order.len() + 1];
    for r in (0..order.len()).rev() {
        suffix[r] = suffix[r + 1] + inst.size(order[r]);
    }

    let mut search = Search {
        inst,
        suffix,
        order,
        loads: vec![0.0; m],
        has_bag: vec![vec![false; inst.num_bags()]; m],
        assignment: vec![MachineId(0); inst.num_jobs()],
        best: seed_makespan + 1e-9,
        best_assignment: seed.assignment().to_vec(),
        nodes: 0,
        node_budget,
        exhausted: false,
        area_lb: lb,
    };
    search.dfs(0, 0.0);

    let schedule = Schedule::from_assignment(search.best_assignment, m);
    let makespan = schedule.makespan(inst);
    Ok(ExactResult { schedule, makespan, nodes: search.nodes, proven_optimal: !search.exhausted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::{gen, validate_schedule};

    #[test]
    fn trivial_instances() {
        let inst = Instance::new(&[(1.0, 0)], 3);
        let r = exact_makespan(&inst, 1_000_000).unwrap();
        assert_eq!(r.makespan, 1.0);
        assert!(r.proven_optimal);
    }

    #[test]
    fn partition_style_instance() {
        // 2 machines, sizes 3,3,2,2,2: optimum 6 (3+3 | 2+2+2).
        let jobs: Vec<(f64, u32)> =
            [3.0, 3.0, 2.0, 2.0, 2.0].iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
        let inst = Instance::new(&jobs, 2);
        let r = exact_makespan(&inst, 1_000_000).unwrap();
        assert_eq!(r.makespan, 6.0);
        assert!(r.proven_optimal);
    }

    #[test]
    fn bags_change_the_optimum() {
        // Without bags: sizes 2,2,1,1 on 2 machines -> OPT 3.
        // With both 2s in one bag and both 1s in another: still 3 (2+1 each).
        // But with a (2,1) pairing forced apart... construct: bag {0,1} sizes 2,2
        // and bag {2,3} sizes 2,1 on 2 machines: machine loads must pair a 2
        // with a 2 or 1 from the other bag: OPT = 4.
        let inst = Instance::new(&[(2.0, 0), (2.0, 0), (2.0, 1), (1.0, 1)], 2);
        let r = exact_makespan(&inst, 1_000_000).unwrap();
        assert_eq!(r.makespan, 4.0);
        let no_bags = Instance::new(&[(2.0, 0), (2.0, 1), (2.0, 2), (1.0, 3)], 2);
        let r2 = exact_makespan(&no_bags, 1_000_000).unwrap();
        assert_eq!(r2.makespan, 4.0); // 2+2 | 2+1 is optimal anyway here
    }

    #[test]
    fn fig1_gadget_opt_is_one() {
        let inst = gen::fig1_gadget(3);
        let r = exact_makespan(&inst, 5_000_000).unwrap();
        assert!(r.proven_optimal);
        assert!((r.makespan - 1.0).abs() < 1e-9, "got {}", r.makespan);
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn never_beats_lower_bound_and_always_feasible() {
        for family in gen::Family::ALL {
            let inst = family.generate(10, 3, 8);
            let r = exact_makespan(&inst, 2_000_000).unwrap();
            validate_schedule(&inst, &r.schedule).unwrap();
            let lb = lower_bounds(&inst).combined();
            assert!(r.makespan >= lb - 1e-9, "{}: {} < {}", family.name(), r.makespan, lb);
        }
    }

    #[test]
    fn budget_degrades_gracefully() {
        let inst = gen::uniform(20, 4, 10, 3);
        let r = exact_makespan(&inst, 10).unwrap();
        // Whatever happened, we must still hold a feasible incumbent (LPT).
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn optimal_at_most_lpt() {
        for seed in 0..5 {
            let inst = gen::uniform(12, 3, 6, seed);
            let lpt = crate::bag_aware_lpt(&inst).unwrap().makespan(&inst);
            let r = exact_makespan(&inst, 2_000_000).unwrap();
            assert!(r.makespan <= lpt + 1e-9);
        }
    }
}
