//! The paper's *bag-LPT* primitive (§4) and a whole-instance scheduler
//! built on it.
//!
//! Bag-LPT (paper, before Lemma 8): given `m'` machines and bags of at
//! most `m'` jobs each (padded with height-0 dummies), process bags one by
//! one; within a bag sort jobs by non-increasing height, sort machines by
//! non-decreasing load, and give the j-th job to the j-th machine. Lemma 8
//! proves the resulting loads differ by at most `pmax` and the top machine
//! ends at most `h + x + pmax` where `x` is the average assigned area.
//!
//! [`bag_lpt_assign`] is the reusable primitive (also called by the EPTAS
//! for priority-bag small jobs and machine groups); [`bag_lpt_schedule`]
//! wraps it into a standalone baseline over all `m` machines.

use bagsched_types::{validate_instance, Instance, InstanceError, JobId, MachineId, Schedule};

/// One bag-LPT round: assign each bag's jobs (at most one per machine) on
/// top of the given loads. `loads` is updated in place.
///
/// Every bag must have at most `loads.len()` jobs; jobs are `(id, size)`.
/// Returns `(job, machine-index)` pairs.
///
/// # Panics
/// Panics if some bag has more jobs than machines.
pub fn bag_lpt_assign(loads: &mut [f64], bags: &[Vec<(JobId, f64)>]) -> Vec<(JobId, usize)> {
    let m = loads.len();
    let mut out = Vec::with_capacity(bags.iter().map(Vec::len).sum());
    let mut machine_order: Vec<usize> = (0..m).collect();
    for bag in bags {
        assert!(bag.len() <= m, "bag of {} jobs exceeds {} machines", bag.len(), m);
        let mut jobs = bag.clone();
        // Non-increasing job height.
        jobs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // Non-decreasing machine load.
        machine_order.sort_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)));
        for (rank, (job, size)) in jobs.into_iter().enumerate() {
            let machine = machine_order[rank];
            loads[machine] += size;
            out.push((job, machine));
        }
    }
    out
}

/// Schedule a whole instance by repeated bag-LPT over all `m` machines.
///
/// This is only valid because every machine is free for every bag at the
/// start and each bag contributes at most one job per machine; it is the
/// algorithm the paper runs per machine-*group*, used here over the whole
/// machine set as a baseline.
pub fn bag_lpt_schedule(inst: &Instance) -> Result<Schedule, InstanceError> {
    validate_instance(inst)?;
    let m = inst.num_machines();
    if inst.num_jobs() == 0 {
        return Ok(Schedule::unassigned(0, m.max(1)));
    }
    let mut loads = vec![0.0f64; m];
    // Process bags by non-increasing total area (helps balance, mirrors
    // LPT's big-first principle at bag granularity).
    let mut bags: Vec<Vec<(JobId, f64)>> = inst
        .bags()
        .map(|(_, members)| members.iter().map(|&j| (j, inst.size(j))).collect())
        .collect();
    bags.sort_by(|a, b| {
        let sa: f64 = a.iter().map(|x| x.1).sum();
        let sb: f64 = b.iter().map(|x| x.1).sum();
        sb.total_cmp(&sa)
    });
    let assignment = bag_lpt_assign(&mut loads, &bags);
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for (job, machine) in assignment {
        sched.assign(job, MachineId(machine as u32));
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::gen;
    use bagsched_types::validate_schedule;
    use proptest::prelude::*;

    #[test]
    fn zip_order_is_big_job_to_light_machine() {
        let mut loads = vec![0.0, 1.0, 2.0];
        let bag = vec![(JobId(0), 3.0), (JobId(1), 1.0), (JobId(2), 2.0)];
        let got = bag_lpt_assign(&mut loads, &[bag]);
        // Biggest job (0, size 3) -> lightest machine 0; job 2 (size 2) ->
        // machine 1; job 1 -> machine 2.
        assert_eq!(got, vec![(JobId(0), 0), (JobId(2), 1), (JobId(1), 2)]);
        assert_eq!(loads, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn schedule_feasible_on_families() {
        for family in gen::Family::ALL {
            let inst = family.generate(50, 5, 3);
            let s = bag_lpt_schedule(&inst).unwrap();
            validate_schedule(&inst, &s).unwrap_or_else(|e| panic!("{}: {e}", family.name()));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_bag_panics() {
        let mut loads = vec![0.0];
        bag_lpt_assign(&mut loads, &[vec![(JobId(0), 1.0), (JobId(1), 1.0)]]);
    }

    proptest! {
        /// Lemma 8, first part: starting from equal loads, after bag-LPT
        /// any two machine loads differ by at most pmax.
        #[test]
        fn lemma8_spread_bound(
            bags in proptest::collection::vec(
                proptest::collection::vec(0.01f64..1.0, 1..5), 1..8),
            m in 5usize..9,
        ) {
            let mut loads = vec![0.0f64; m];
            let mut id = 0u32;
            let bags: Vec<Vec<(JobId, f64)>> = bags
                .into_iter()
                .map(|sizes| sizes.into_iter().map(|s| {
                    id += 1;
                    (JobId(id), s)
                }).collect())
                .collect();
            let pmax = bags
                .iter()
                .flat_map(|b| b.iter().map(|x| x.1))
                .fold(0.0f64, f64::max);
            bag_lpt_assign(&mut loads, &bags);
            let hi = loads.iter().cloned().fold(f64::MIN, f64::max);
            let lo = loads.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(hi - lo <= pmax + 1e-9,
                "spread {} exceeds pmax {}", hi - lo, pmax);
        }

        /// Lemma 8, second part: highest machine <= h + x + pmax where x is
        /// the average area per machine and h the (equal) starting height.
        #[test]
        fn lemma8_height_bound(
            bags in proptest::collection::vec(
                proptest::collection::vec(0.01f64..1.0, 1..6), 1..8),
            m in 6usize..10,
            h in 0.0f64..2.0,
        ) {
            let mut loads = vec![h; m];
            let mut id = 0u32;
            let bags: Vec<Vec<(JobId, f64)>> = bags
                .into_iter()
                .map(|sizes| sizes.into_iter().map(|s| {
                    id += 1;
                    (JobId(id), s)
                }).collect())
                .collect();
            let pmax = bags.iter().flat_map(|b| b.iter().map(|x| x.1)).fold(0.0f64, f64::max);
            let area: f64 = bags.iter().flat_map(|b| b.iter().map(|x| x.1)).sum();
            let x = area / m as f64;
            bag_lpt_assign(&mut loads, &bags);
            let hi = loads.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(hi <= h + x + pmax + 1e-9,
                "highest {} exceeds h+x+pmax = {}", hi, h + x + pmax);
        }
    }
}
