//! Baseline schedulers and comparators for bag-constrained makespan
//! minimization.
//!
//! The paper (Grage, Jansen, Klein; SPAA 2019) proves an approximation
//! guarantee but evaluates nothing; the experiment harness compares its
//! EPTAS against these baselines:
//!
//! * [`lpt`] — Graham's LPT, bag-*oblivious* (may violate constraints;
//!   used only to quantify how often ignoring bags breaks feasibility),
//! * [`bag_aware_lpt`] — LPT restricted to conflict-free machines; the
//!   practical heuristic a systems engineer would reach for first,
//! * [`bag_lpt`] — the paper's *bag-LPT* primitive (§4, Lemma 8): per bag,
//!   sort jobs descending and machines ascending and zip them,
//! * [`fits`] — first-fit / best-fit-decreasing with a capacity threshold
//!   (the dual-approximation building block),
//! * [`random_fit`] — seeded random conflict-free placement (sanity floor),
//! * [`local_search`] — move/swap hill climbing on top of any feasible
//!   schedule (the strongest practical comparator short of exact),
//! * [`exact`] — an exact branch-and-bound scheduler (ground-truth OPT for
//!   small instances),
//! * [`dw_ptas`] — a Das–Wiese-style configuration-DP PTAS baseline whose
//!   running time scales like `n^{g(1/eps)}`, the shape the EPTAS improves
//!   on.

pub mod bag_aware_lpt;
pub mod bag_lpt;
pub mod dw_ptas;
pub mod exact;
pub mod fits;
pub mod local_search;
pub mod lpt;
pub mod random_fit;

pub use bag_aware_lpt::bag_aware_lpt;
pub use bag_lpt::{bag_lpt_assign, bag_lpt_schedule};
pub use dw_ptas::{dw_ptas, DwPtasConfig};
pub use exact::{exact_makespan, ExactResult};
pub use fits::{best_fit_decreasing, first_fit};
pub use local_search::{local_search, lpt_with_local_search, LocalSearchResult};
pub use lpt::lpt;
pub use random_fit::random_fit;
