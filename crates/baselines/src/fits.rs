//! Threshold-based fit heuristics: the dual-approximation building blocks.
//!
//! Both take a capacity `cap` and never load a machine beyond it; they
//! report failure instead. Wrapped in a binary search over `cap` they form
//! classic `2`-ish approximations, and the experiment harness uses them as
//! cheap comparators.

use bagsched_types::{Instance, JobId, MachineId, Schedule};

/// First-fit: jobs in the given order; each goes to the first machine
/// where it causes no conflict and fits under `cap`.
pub fn first_fit(inst: &Instance, order: &[JobId], cap: f64) -> Option<Schedule> {
    let m = inst.num_machines();
    if m == 0 {
        return inst.num_jobs().eq(&0).then(|| Schedule::unassigned(0, 1));
    }
    let mut loads = vec![0.0f64; m];
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for &j in order {
        let size = inst.size(j);
        let bag = inst.bag_of(j).idx();
        let slot = (0..m).find(|&i| !has_bag[i][bag] && loads[i] + size <= cap + 1e-9)?;
        sched.assign(j, MachineId(slot as u32));
        loads[slot] += size;
        has_bag[slot][bag] = true;
    }
    Some(sched)
}

/// Best-fit-decreasing: jobs by non-increasing size; each goes to the
/// *fullest* machine where it still fits under `cap` without conflict.
pub fn best_fit_decreasing(inst: &Instance, cap: f64) -> Option<Schedule> {
    let m = inst.num_machines();
    if m == 0 {
        return inst.num_jobs().eq(&0).then(|| Schedule::unassigned(0, 1));
    }
    let mut order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; m];
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for j in order {
        let size = inst.size(j);
        let bag = inst.bag_of(j).idx();
        let slot = (0..m)
            .filter(|&i| !has_bag[i][bag] && loads[i] + size <= cap + 1e-9)
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))?;
        sched.assign(j, MachineId(slot as u32));
        loads[slot] += size;
        has_bag[slot][bag] = true;
    }
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::gen;

    #[test]
    fn first_fit_respects_cap_and_bags() {
        let inst = Instance::new(&[(0.6, 0), (0.6, 0), (0.3, 1)], 2);
        let order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
        let s = first_fit(&inst, &order, 1.0).unwrap();
        assert!(s.is_feasible(&inst));
        assert!(s.makespan(&inst) <= 1.0 + 1e-9);
    }

    #[test]
    fn first_fit_fails_when_cap_too_small() {
        let inst = Instance::new(&[(0.6, 0), (0.6, 1)], 1);
        let order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
        assert!(first_fit(&inst, &order, 1.0).is_none());
        assert!(first_fit(&inst, &order, 1.2).is_some());
    }

    #[test]
    fn bfd_prefers_fuller_machine() {
        // cap 1.0; sizes .5,.4,.1: after the first job lands somewhere, BFD
        // keeps stacking onto that (fullest) machine until it is exactly
        // full, leaving the other machine empty.
        let inst = Instance::new(&[(0.5, 0), (0.4, 1), (0.1, 2)], 2);
        let s = best_fit_decreasing(&inst, 1.0).unwrap();
        let mut loads = s.loads(&inst);
        loads.sort_by(f64::total_cmp);
        assert_eq!(loads, vec![0.0, 1.0]);
    }

    #[test]
    fn bfd_feasible_on_families_with_generous_cap() {
        for family in gen::Family::ALL {
            let inst = family.generate(40, 4, 1);
            let cap = inst.total_size(); // generous
            let s = best_fit_decreasing(&inst, cap);
            // A generous cap can still fail if bags force spreading; on our
            // generated (feasible) instances it must succeed because every
            // bag has at most m jobs and capacity is effectively unbounded.
            let s = s.unwrap_or_else(|| panic!("{} failed", family.name()));
            assert!(s.is_feasible(&inst));
        }
    }

    #[test]
    fn bag_spread_forced() {
        // Bag of 3 jobs on 3 machines, cap tight.
        let inst = Instance::new(&[(1.0, 0), (1.0, 0), (1.0, 0)], 3);
        let s = best_fit_decreasing(&inst, 1.0).unwrap();
        assert_eq!(s.makespan(&inst), 1.0);
        assert!(s.is_feasible(&inst));
    }
}
