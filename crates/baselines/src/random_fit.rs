//! Random conflict-free placement: the sanity floor for the harness.
//!
//! Every job goes to a uniformly random machine among those without a
//! conflict. Any scheduler that does not clearly beat this on makespan is
//! not doing useful work.

use bagsched_types::{validate_instance, Instance, InstanceError, JobId, MachineId, Schedule};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Schedule every job on a random conflict-free machine (seeded).
pub fn random_fit(inst: &Instance, seed: u64) -> Result<Schedule, InstanceError> {
    validate_instance(inst)?;
    let m = inst.num_machines();
    if inst.num_jobs() == 0 {
        return Ok(Schedule::unassigned(0, m.max(1)));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    let mut free: Vec<usize> = Vec::with_capacity(m);
    for j in 0..inst.num_jobs() {
        let job = JobId(j as u32);
        let bag = inst.bag_of(job).idx();
        free.clear();
        free.extend((0..m).filter(|&i| !has_bag[i][bag]));
        let pick = free[rng.random_range(0..free.len())];
        sched.assign(job, MachineId(pick as u32));
        has_bag[pick][bag] = true;
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::{gen, validate_schedule};

    #[test]
    fn feasible_and_deterministic() {
        let inst = gen::uniform(60, 5, 20, 4);
        let a = random_fit(&inst, 99).unwrap();
        let b = random_fit(&inst, 99).unwrap();
        assert_eq!(a, b);
        validate_schedule(&inst, &a).unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let inst = gen::uniform(60, 5, 20, 4);
        let a = random_fit(&inst, 1).unwrap();
        let b = random_fit(&inst, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn handles_tight_bags() {
        let inst = gen::tight_bags(12, 3, 0);
        let s = random_fit(&inst, 5).unwrap();
        validate_schedule(&inst, &s).unwrap();
    }

    #[test]
    fn rejects_infeasible() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0)], 1);
        assert!(random_fit(&inst, 0).is_err());
    }
}
