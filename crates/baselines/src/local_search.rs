//! Local-search improvement: move/swap hill climbing on top of any
//! feasible schedule.
//!
//! Neighborhoods:
//! * **move** — relocate a job from a makespan-critical machine to a
//!   conflict-free machine where the new loads strictly reduce the
//!   lexicographic (makespan, #critical machines) objective;
//! * **swap** — exchange two jobs across machines when both ends stay
//!   conflict-free and the objective drops.
//!
//! This is the strongest *practical* comparator short of the exact
//! solver: the experiment harness uses it to show how much headroom the
//! heuristics leave and whether the EPTAS closes it.

use bagsched_types::{Instance, JobId, MachineId, Schedule};

/// Outcome of a local-search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The improved schedule (feasible; at least as good as the input).
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: f64,
    /// Accepted improving moves.
    pub moves: usize,
    /// Accepted improving swaps.
    pub swaps: usize,
    /// Whether a full pass found no improvement (local optimum reached
    /// within the iteration budget).
    pub converged: bool,
}

/// Improve `start` by move/swap hill climbing (first-improvement,
/// critical-machine driven). `max_rounds` bounds full passes.
pub fn local_search(inst: &Instance, start: &Schedule, max_rounds: usize) -> LocalSearchResult {
    assert!(start.is_feasible(inst), "local search needs a feasible start");
    let m = inst.num_machines();
    let mut sched = start.clone();
    let mut loads = sched.loads(inst);
    let mut bag_on: Vec<Vec<bool>> = vec![vec![false; inst.num_bags()]; m];
    for (j, &mid) in sched.assignment().iter().enumerate() {
        bag_on[mid.idx()][inst.bag_of(JobId(j as u32)).idx()] = true;
    }

    let mut moves = 0usize;
    let mut swaps = 0usize;
    let mut converged = false;

    'rounds: for _ in 0..max_rounds {
        let makespan = loads.iter().cloned().fold(0.0f64, f64::max);
        // Jobs on a critical machine, biggest first.
        let mut critical: Vec<JobId> = (0..inst.num_jobs() as u32)
            .map(JobId)
            .filter(|&j| loads[sched.machine_of(j).idx()] >= makespan - 1e-12)
            .collect();
        critical.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)));

        for &job in &critical {
            let from = sched.machine_of(job);
            let size = inst.size(job);
            let bag = inst.bag_of(job).idx();

            // Move: any machine where the job fits strictly below the
            // critical load.
            if let Some(to) = (0..m)
                .filter(|&i| i != from.idx() && !bag_on[i][bag])
                .filter(|&i| loads[i] + size < makespan - 1e-12)
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            {
                bag_on[from.idx()][bag] = false;
                bag_on[to][bag] = true;
                loads[from.idx()] -= size;
                loads[to] += size;
                sched.assign(job, MachineId(to as u32));
                moves += 1;
                continue 'rounds;
            }

            // Swap: exchange with a smaller job elsewhere.
            for other in 0..inst.num_jobs() as u32 {
                let pj = JobId(other);
                let to = sched.machine_of(pj);
                if to == from {
                    continue;
                }
                let psize = inst.size(pj);
                if psize >= size - 1e-12 {
                    continue; // must strictly shrink the critical machine
                }
                let pbag = inst.bag_of(pj).idx();
                // Conflict checks, ignoring the departing partner.
                let from_ok = pbag == bag || !bag_on[from.idx()][pbag];
                let to_ok = pbag == bag || !bag_on[to.idx()][bag];
                if !from_ok || !to_ok {
                    continue;
                }
                let new_from = loads[from.idx()] - size + psize;
                let new_to = loads[to.idx()] - psize + size;
                if new_from < makespan - 1e-12 && new_to < makespan - 1e-12 {
                    bag_on[from.idx()][bag] = false;
                    bag_on[to.idx()][pbag] = false;
                    bag_on[from.idx()][pbag] = true;
                    bag_on[to.idx()][bag] = true;
                    loads[from.idx()] = new_from;
                    loads[to.idx()] = new_to;
                    sched.assign(job, to);
                    sched.assign(pj, from);
                    swaps += 1;
                    continue 'rounds;
                }
            }
        }
        converged = true;
        break;
    }

    let makespan = sched.makespan(inst);
    debug_assert!(sched.is_feasible(inst));
    LocalSearchResult { schedule: sched, makespan, moves, swaps, converged }
}

/// Convenience: conflict-aware LPT followed by local search.
pub fn lpt_with_local_search(
    inst: &Instance,
    max_rounds: usize,
) -> Result<LocalSearchResult, bagsched_types::InstanceError> {
    let start = crate::bag_aware_lpt(inst)?;
    Ok(local_search(inst, &start, max_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::{gen, lowerbound::lower_bounds, validate_schedule};

    #[test]
    fn never_worse_than_start_and_feasible() {
        for family in gen::Family::ALL {
            let inst = family.generate(40, 4, 5);
            let start = crate::bag_aware_lpt(&inst).unwrap();
            let before = start.makespan(&inst);
            let r = local_search(&inst, &start, 500);
            validate_schedule(&inst, &r.schedule).unwrap();
            assert!(r.makespan <= before + 1e-9, "{} got worse", family.name());
        }
    }

    #[test]
    fn improves_the_classic_lpt_worst_case() {
        // 5,5,4,4,3,3,3 on 3 machines: LPT gives 11, optimum is 9.
        let jobs: Vec<(f64, u32)> = [5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let inst = bagsched_types::Instance::new(&jobs, 3);
        let r = lpt_with_local_search(&inst, 1000).unwrap();
        assert!(r.makespan < 11.0 - 1e-9, "local search failed to improve LPT");
    }

    #[test]
    fn respects_bags_during_moves() {
        // One tight bag across all machines pins one job per machine.
        let inst = gen::tight_bags(12, 3, 2);
        let r = lpt_with_local_search(&inst, 200).unwrap();
        validate_schedule(&inst, &r.schedule).unwrap();
    }

    #[test]
    fn converges_on_balanced_instances() {
        let inst = bagsched_types::Instance::new(&[(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3)], 2);
        let r = lpt_with_local_search(&inst, 100).unwrap();
        assert!(r.converged);
        assert_eq!(r.makespan, 2.0);
        assert_eq!(r.moves + r.swaps, 0, "already optimal");
    }

    #[test]
    fn stays_above_lower_bound() {
        for seed in 0..4 {
            let inst = gen::powerlaw(30, 4, 12, 1.4, seed);
            let r = lpt_with_local_search(&inst, 500).unwrap();
            assert!(r.makespan >= lower_bounds(&inst).combined() - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn rejects_infeasible_start() {
        let inst = bagsched_types::Instance::new(&[(1.0, 0), (1.0, 0)], 2);
        let bad = Schedule::from_assignment(vec![MachineId(0), MachineId(0)], 2);
        local_search(&inst, &bad, 10);
    }
}
