//! Graham's Longest-Processing-Time rule, bag-oblivious.
//!
//! This is the classical `4/3 - 1/(3m)` approximation for makespan
//! minimization *without* bag-constraints. It ignores bags entirely, so
//! its output may be infeasible for the bag-constrained problem — the
//! harness uses it (a) as a makespan floor no conflict-respecting
//! algorithm can beat by much on bag-light instances and (b) to count how
//! often bag-obliviousness actually violates constraints.

use bagsched_types::{Instance, JobId, MachineId, Schedule};

/// Schedule by LPT, ignoring bag-constraints.
pub fn lpt(inst: &Instance) -> Schedule {
    let m = inst.num_machines();
    assert!(m > 0, "need at least one machine");
    let mut order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for j in order {
        let (best, _) =
            loads.iter().enumerate().min_by(|(_, a), (_, b)| a.total_cmp(b)).expect("m > 0");
        sched.assign(j, MachineId(best as u32));
        loads[best] += inst.size(j);
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::gen;

    #[test]
    fn balances_equal_jobs() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3)], 2);
        let s = lpt(&inst);
        assert_eq!(s.makespan(&inst), 2.0);
    }

    #[test]
    fn classic_lpt_example() {
        // The classic 4/3 worst case: sizes 5,5,4,4,3,3,3 on 3 machines.
        // LPT yields 11 while the optimum is 9 (5+4 | 5+4 | 3+3+3).
        let jobs: Vec<(f64, u32)> = [5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let inst = Instance::new(&jobs, 3);
        let s = lpt(&inst);
        assert_eq!(s.makespan(&inst), 11.0);
    }

    #[test]
    fn can_violate_bags() {
        // Two same-bag jobs, two machines, but a third giant job occupies
        // one machine: LPT piles the pair together.
        let inst = Instance::new(&[(10.0, 9), (1.0, 0), (1.0, 0)], 2);
        let s = lpt(&inst);
        assert!(!s.is_feasible(&inst), "this gadget should force a conflict");
    }

    #[test]
    fn within_graham_bound_on_random() {
        for seed in 0..5 {
            let inst = gen::uniform(50, 4, 20, seed);
            let s = lpt(&inst);
            let lb = bagsched_types::lowerbound::lower_bounds(&inst).combined();
            assert!(s.makespan(&inst) <= (4.0 / 3.0) * lb + 1e-9);
        }
    }

    #[test]
    fn single_machine_stacks_everything() {
        let inst = Instance::new(&[(1.0, 0), (2.0, 1)], 1);
        let s = lpt(&inst);
        assert_eq!(s.makespan(&inst), 3.0);
    }
}
