//! A Das–Wiese-style configuration-DP PTAS baseline.
//!
//! Das & Wiese (ESA 2017) gave the first PTAS for bag-constrained makespan
//! minimization: place large jobs "like in an optimal solution" with a
//! dynamic program over machine configurations, then finish small jobs
//! greedily. Its running time is `n^{g(1/eps)}` — a *PTAS*, not an EPTAS —
//! which is precisely what the paper reproduced here improves.
//!
//! This module implements that recipe faithfully in shape:
//! dual-approximation binary search on the threshold `T`; large jobs
//! (`>= eps*T`) rounded to multiples of `eps^2*T`; an exact DP over
//! remaining-count vectors whose state space is `O(n^{#sizes})` (the
//! PTAS-ish exponent); then bag-respecting slot filling with swap repair
//! and greedy small-job placement. Deviations from the original (the DP
//! tracks job counts, not per-bag counts; bag feasibility of large jobs is
//! restored by swapping afterwards) are heuristic simplifications that
//! keep this a *baseline*, and are documented in DESIGN.md.
//!
//! The DP state budget is explicit; exceeding it fails loudly.

use bagsched_types::{
    lowerbound::lower_bounds, validate_instance, Instance, JobId, MachineId, Schedule,
};
use std::collections::HashMap;

/// Tuning knobs for [`dw_ptas`].
#[derive(Debug, Clone)]
pub struct DwPtasConfig {
    /// Approximation parameter.
    pub epsilon: f64,
    /// Maximum DP states per threshold trial.
    pub max_states: usize,
}

impl DwPtasConfig {
    /// Default budgets at the given epsilon.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        DwPtasConfig { epsilon, max_states: 4_000_000 }
    }
}

/// Why a PTAS run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DwPtasError {
    /// The instance admits no feasible schedule.
    Infeasible,
    /// The DP state budget was exhausted at every threshold.
    StateBudget,
}

impl std::fmt::Display for DwPtasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DwPtasError::Infeasible => write!(f, "instance is infeasible"),
            DwPtasError::StateBudget => write!(f, "configuration-DP state budget exhausted"),
        }
    }
}

impl std::error::Error for DwPtasError {}

/// Run the PTAS baseline. Returns a feasible schedule with makespan close
/// to `(1 + O(eps)) * OPT` on instances where the DP fits in budget.
pub fn dw_ptas(inst: &Instance, cfg: &DwPtasConfig) -> Result<Schedule, DwPtasError> {
    validate_instance(inst).map_err(|_| DwPtasError::Infeasible)?;
    if inst.num_jobs() == 0 {
        return Ok(Schedule::unassigned(0, inst.num_machines().max(1)));
    }
    let lb = lower_bounds(inst).combined();
    let ub_sched = crate::bag_aware_lpt(inst).map_err(|_| DwPtasError::Infeasible)?;
    let ub = ub_sched.makespan(inst);
    if ub <= lb + 1e-12 {
        return Ok(ub_sched);
    }

    // Geometric threshold grid [lb, ub].
    let eps = cfg.epsilon;
    let mut grid = Vec::new();
    let mut t = lb.max(1e-12);
    while t < ub * (1.0 + 1e-12) {
        grid.push(t);
        t *= 1.0 + eps / 4.0;
    }
    grid.push(ub);

    // Binary search the smallest threshold that succeeds; keep LPT as the
    // fallback incumbent.
    let mut best: Option<Schedule> = None;
    let (mut lo, mut hi) = (0usize, grid.len() - 1);
    let mut saw_budget = false;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        match try_threshold(inst, grid[mid], cfg) {
            Ok(s) => {
                best = Some(s);
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            Err(budget) => {
                saw_budget |= budget;
                lo = mid + 1;
            }
        }
    }
    match best {
        Some(s) => {
            // The binary search may have found a schedule worse than plain
            // LPT (the grid is coarse); keep whichever is better.
            if s.makespan(inst) <= ub {
                Ok(s)
            } else {
                Ok(ub_sched)
            }
        }
        None if saw_budget => Err(DwPtasError::StateBudget),
        // Every threshold failed (possible: the slot-filling heuristic is
        // not complete) — fall back to the LPT schedule rather than fail.
        None => Ok(ub_sched),
    }
}

/// Attempt to build a schedule of makespan roughly `(1 + O(eps)) * t`.
/// `Err(true)` means the state budget was exhausted, `Err(false)` a
/// genuine failure at this threshold.
fn try_threshold(inst: &Instance, t: f64, cfg: &DwPtasConfig) -> Result<Schedule, bool> {
    let eps = cfg.epsilon;
    let m = inst.num_machines();
    let quantum = eps * eps * t;

    if inst.max_size() > t * (1.0 + 1e-9) {
        return Err(false);
    }

    // Partition into large (>= eps*t) and small, rounding large sizes up to
    // quanta of eps^2*t.
    let mut large: Vec<(JobId, u32)> = Vec::new(); // (job, quanta)
    let mut small: Vec<JobId> = Vec::new();
    for job in inst.jobs() {
        if job.size >= eps * t {
            large.push((job.id, (job.size / quantum).ceil() as u32));
        } else {
            small.push(job.id);
        }
    }

    // Distinct rounded sizes and their counts.
    let mut sizes: Vec<u32> = large.iter().map(|&(_, q)| q).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let counts: Vec<u16> =
        sizes.iter().map(|&q| large.iter().filter(|&&(_, jq)| jq == q).count() as u16).collect();

    // Machine capacity in quanta: (1 + eps) * t worth of rounded load.
    let cap: u32 = ((1.0 + eps) / (eps * eps)).floor() as u32;

    // Enumerate configurations (multisets of size indices fitting in cap),
    // excluding the empty configuration.
    let mut configs: Vec<Vec<u16>> = Vec::new();
    let mut current = vec![0u16; sizes.len()];
    enumerate_configs(&sizes, &counts, 0, cap, &mut current, &mut configs);
    if configs.is_empty() && !large.is_empty() {
        return Err(false);
    }

    // BFS over remaining-count vectors: fewest machines to consume all
    // large jobs.
    let start: Vec<u16> = counts.clone();
    let goal = vec![0u16; sizes.len()];
    let mut parent: HashMap<Vec<u16>, (Vec<u16>, usize)> = HashMap::new();
    let mut dist: HashMap<Vec<u16>, u32> = HashMap::new();
    dist.insert(start.clone(), 0);
    let mut queue = std::collections::VecDeque::from([start.clone()]);
    let mut reached = large.is_empty();
    while let Some(state) = queue.pop_front() {
        let d = dist[&state];
        if state == goal {
            reached = true;
            break;
        }
        if d as usize >= m {
            continue;
        }
        if dist.len() > cfg.max_states {
            return Err(true);
        }
        for (ci, config) in configs.iter().enumerate() {
            if config.iter().zip(&state).all(|(c, s)| c <= s) {
                let next: Vec<u16> = state.iter().zip(config).map(|(s, c)| s - c).collect();
                if !dist.contains_key(&next) {
                    dist.insert(next.clone(), d + 1);
                    parent.insert(next.clone(), (state.clone(), ci));
                    queue.push_back(next);
                }
            }
        }
    }
    if !reached {
        return Err(false);
    }

    // Reconstruct the per-machine configurations.
    let mut machine_configs: Vec<&Vec<u16>> = Vec::new();
    let mut state = goal;
    while let Some((prev, ci)) = parent.get(&state) {
        machine_configs.push(&configs[*ci]);
        state = prev.clone();
    }
    if machine_configs.len() > m {
        return Err(false);
    }

    // Fill slots with actual jobs, avoiding bag conflicts greedily.
    let mut per_size_jobs: HashMap<u32, Vec<JobId>> = HashMap::new();
    for &(job, q) in &large {
        per_size_jobs.entry(q).or_default().push(job);
    }

    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut loads = vec![0.0f64; m];
    let mut conflicted: Vec<(JobId, usize)> = Vec::new();
    for (machine, config) in machine_configs.iter().enumerate() {
        for (si, &mult) in config.iter().enumerate() {
            let pool = per_size_jobs.get_mut(&sizes[si]).expect("counted above");
            for _ in 0..mult {
                // Prefer a conflict-free job of this rounded size.
                let pick =
                    pool.iter().position(|&j| !has_bag[machine][inst.bag_of(j).idx()]).unwrap_or(0);
                let job = pool.swap_remove(pick);
                let bag = inst.bag_of(job).idx();
                if has_bag[machine][bag] {
                    conflicted.push((job, machine));
                } else {
                    has_bag[machine][bag] = true;
                }
                sched.assign(job, MachineId(machine as u32));
                loads[machine] += inst.size(job);
            }
        }
    }

    // Swap repair: move each conflicted large job to a machine holding a
    // same-rounded-size job whose bag is free here and vice versa.
    for (job, machine) in conflicted {
        let q = (inst.size(job) / quantum).ceil() as u32;
        let bag = inst.bag_of(job).idx();
        let mut fixed = false;
        'outer: for other in 0..m {
            if other == machine || has_bag[other][bag] {
                continue;
            }
            // A same-size partner on `other` whose bag is free on `machine`.
            for (jj, &mid) in sched.assignment().iter().enumerate() {
                let pj = JobId(jj as u32);
                if mid.idx() != other || pj == job {
                    continue;
                }
                let pq = (inst.size(pj) / quantum).ceil() as u32;
                if pq != q || inst.size(pj) < eps * t {
                    continue;
                }
                let pbag = inst.bag_of(pj).idx();
                if pbag != bag && !has_bag[machine][pbag] {
                    // Swap.
                    loads[machine] += inst.size(pj) - inst.size(job);
                    loads[other] += inst.size(job) - inst.size(pj);
                    sched.assign(job, MachineId(other as u32));
                    sched.assign(pj, MachineId(machine as u32));
                    has_bag[other][bag] = true;
                    has_bag[machine][pbag] = true;
                    fixed = true;
                    break 'outer;
                }
            }
        }
        if !fixed {
            return Err(false);
        }
    }

    // Small jobs: LPT onto the least-loaded conflict-free machine.
    small.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));
    for job in small {
        let bag = inst.bag_of(job).idx();
        let Some(best) =
            (0..m).filter(|&i| !has_bag[i][bag]).min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
        else {
            return Err(false);
        };
        sched.assign(job, MachineId(best as u32));
        loads[best] += inst.size(job);
        has_bag[best][bag] = true;
    }

    if sched.is_feasible(inst) {
        Ok(sched)
    } else {
        Err(false)
    }
}

/// Recursively enumerate non-empty configurations.
fn enumerate_configs(
    sizes: &[u32],
    counts: &[u16],
    idx: usize,
    cap_left: u32,
    current: &mut Vec<u16>,
    out: &mut Vec<Vec<u16>>,
) {
    if idx == sizes.len() {
        if current.iter().any(|&c| c > 0) {
            out.push(current.clone());
        }
        return;
    }
    let max_mult = (cap_left / sizes[idx]).min(counts[idx] as u32) as u16;
    for mult in 0..=max_mult {
        current[idx] = mult;
        enumerate_configs(
            sizes,
            counts,
            idx + 1,
            cap_left - mult as u32 * sizes[idx],
            current,
            out,
        );
    }
    current[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::{gen, validate_schedule};

    #[test]
    fn feasible_on_families() {
        for family in gen::Family::ALL {
            let inst = family.generate(24, 3, 2);
            let s = dw_ptas(&inst, &DwPtasConfig::with_epsilon(0.5))
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            validate_schedule(&inst, &s).unwrap_or_else(|e| panic!("{}: {e}", family.name()));
        }
    }

    #[test]
    fn close_to_optimum_on_small_instances() {
        for seed in 0..4 {
            let inst = gen::uniform(12, 3, 6, seed);
            let opt = crate::exact_makespan(&inst, 5_000_000).unwrap();
            assert!(opt.proven_optimal);
            let s = dw_ptas(&inst, &DwPtasConfig::with_epsilon(0.3)).unwrap();
            let ratio = s.makespan(&inst) / opt.makespan;
            assert!(ratio <= 1.0 + 3.0 * 0.3 + 1e-9, "ratio {ratio} too large (seed {seed})");
        }
    }

    #[test]
    fn solves_fig1_gadget_near_optimally() {
        let inst = gen::fig1_gadget(3);
        let s = dw_ptas(&inst, &DwPtasConfig::with_epsilon(0.4)).unwrap();
        assert!(s.is_feasible(&inst));
        // OPT = 1.0; the PTAS should land within ~(1 + O(eps)).
        assert!(s.makespan(&inst) <= 1.75, "got {}", s.makespan(&inst));
    }

    #[test]
    fn empty_instance() {
        let inst = bagsched_types::InstanceBuilder::new(2).build();
        let s = dw_ptas(&inst, &DwPtasConfig::with_epsilon(0.5)).unwrap();
        assert_eq!(s.num_jobs(), 0);
    }

    #[test]
    fn infeasible_instance_rejected() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0)], 1);
        assert_eq!(dw_ptas(&inst, &DwPtasConfig::with_epsilon(0.5)), Err(DwPtasError::Infeasible));
    }

    #[test]
    fn config_enumeration_counts() {
        // sizes {2, 3} quanta, cap 6, counts ample: configs are all (a, b)
        // with 2a + 3b <= 6, excluding (0,0): (0,1), (0,2), (1,0), (1,1),
        // (2,0), (3,0) => 6 configs.
        let mut out = Vec::new();
        let mut cur = vec![0u16; 2];
        enumerate_configs(&[2, 3], &[10, 10], 0, 6, &mut cur, &mut out);
        assert_eq!(out.len(), 6);
    }
}
