//! LPT restricted to conflict-free machines.
//!
//! Jobs in non-increasing size order; each goes to the least-loaded
//! machine that does not already run a job of its bag. Whenever
//! `|B_l| <= m` for every bag (the instance feasibility condition) a free
//! machine always exists, so this never fails on valid instances. It is
//! the natural practical heuristic and the upper bound seeding the
//! EPTAS's binary search.

use bagsched_types::{validate_instance, Instance, InstanceError, JobId, MachineId, Schedule};

/// Schedule by conflict-aware LPT. Fails only on infeasible instances.
pub fn bag_aware_lpt(inst: &Instance) -> Result<Schedule, InstanceError> {
    validate_instance(inst)?;
    let m = inst.num_machines();
    if inst.num_jobs() == 0 {
        return Ok(Schedule::unassigned(0, m.max(1)));
    }
    let mut order: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| inst.size(b).total_cmp(&inst.size(a)).then(a.cmp(&b)));

    let mut loads = vec![0.0f64; m];
    let mut has_bag = vec![vec![false; inst.num_bags()]; m];
    let mut sched = Schedule::unassigned(inst.num_jobs(), m);
    for j in order {
        let bag = inst.bag_of(j).idx();
        let best = (0..m)
            .filter(|&i| !has_bag[i][bag])
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("a conflict-free machine exists because |B| <= m");
        sched.assign(j, MachineId(best as u32));
        loads[best] += inst.size(j);
        has_bag[best][bag] = true;
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::{gen, lowerbound::lower_bounds, validate_schedule};

    #[test]
    fn always_feasible_on_generated_families() {
        for family in gen::Family::ALL {
            for seed in 0..3 {
                let inst = family.generate(40, 4, seed);
                let s = bag_aware_lpt(&inst).unwrap();
                validate_schedule(&inst, &s).unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            }
        }
    }

    #[test]
    fn solves_the_lpt_breaking_gadget() {
        let inst = Instance::new(&[(10.0, 9), (1.0, 0), (1.0, 0)], 2);
        let s = bag_aware_lpt(&inst).unwrap();
        assert!(s.is_feasible(&inst));
        // The bag-0 pair must split, so one job shares with the giant: OPT = 11.
        assert_eq!(s.makespan(&inst), 11.0);
    }

    #[test]
    fn rejects_infeasible_instance() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0), (1.0, 0)], 2);
        assert!(bag_aware_lpt(&inst).is_err());
    }

    #[test]
    fn tight_bags_get_perfectly_spread() {
        // One bag of exactly m equal jobs must land on m distinct machines.
        let inst = Instance::new(&[(1.0, 0), (1.0, 0), (1.0, 0)], 3);
        let s = bag_aware_lpt(&inst).unwrap();
        assert_eq!(s.makespan(&inst), 1.0);
    }

    #[test]
    fn empty_instance_ok() {
        let inst = bagsched_types::InstanceBuilder::new(3).build();
        let s = bag_aware_lpt(&inst).unwrap();
        assert_eq!(s.num_jobs(), 0);
    }

    #[test]
    fn stays_close_to_lower_bound_statistically() {
        // Not a guarantee of the algorithm, but on uniform workloads the
        // heuristic should land well under 2x the certified lower bound.
        for seed in 0..5 {
            let inst = gen::uniform(80, 6, 30, seed);
            let s = bag_aware_lpt(&inst).unwrap();
            let lb = lower_bounds(&inst).combined();
            assert!(s.makespan(&inst) <= 2.0 * lb);
        }
    }
}
