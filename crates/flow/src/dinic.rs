//! Dinic's maximum-flow algorithm.
//!
//! Runs in `O(V^2 E)` in general and `O(E sqrt(V))` on the unit-capacity
//! bipartite networks Lemma 3 builds — far below the cost of the MILP, so
//! the reinsertion step never dominates the EPTAS running time.

use crate::graph::{FlowNetwork, NodeId};

/// Work counters of one max-flow computation, used by the EPTAS report to
/// attribute wall-clock to the Lemma-3 reinsertion phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Augmenting paths pushed (one per successful blocking-flow DFS).
    pub augmenting_paths: u64,
    /// BFS phases (level-graph rebuilds), bounded by `O(V)` for Dinic.
    pub bfs_phases: u64,
}

impl FlowStats {
    /// Accumulate another computation's counters into this one.
    pub fn add(&mut self, other: &FlowStats) {
        self.augmenting_paths += other.augmenting_paths;
        self.bfs_phases += other.bfs_phases;
    }
}

/// Compute the maximum `source -> sink` flow. The network retains the flow
/// (query per-edge flow with [`FlowNetwork::flow`]).
pub fn max_flow(net: &mut FlowNetwork, source: NodeId, sink: NodeId) -> u64 {
    max_flow_with_stats(net, source, sink).0
}

/// [`max_flow`] plus the work counters of the computation.
pub fn max_flow_with_stats(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
) -> (u64, FlowStats) {
    assert!(source.0 < net.num_nodes() && sink.0 < net.num_nodes(), "node out of range");
    assert_ne!(source, sink, "source and sink must differ");
    let n = net.num_nodes();
    let mut level = vec![-1i32; n];
    let mut it = vec![0usize; n];
    let mut queue = Vec::with_capacity(n);
    let mut total = 0u64;
    let mut stats = FlowStats::default();

    loop {
        // BFS: build level graph.
        stats.bfs_phases += 1;
        level.iter_mut().for_each(|l| *l = -1);
        level[source.0] = 0;
        queue.clear();
        queue.push(source.0);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &eid in &net.adj[u] {
                let e = &net.edges[eid];
                if e.cap > 0 && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    queue.push(e.to);
                }
            }
        }
        if level[sink.0] < 0 {
            break;
        }
        // DFS: find blocking flow.
        it.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs(net, source.0, sink.0, u64::MAX, &level, &mut it);
            if pushed == 0 {
                break;
            }
            stats.augmenting_paths += 1;
            total += pushed;
        }
    }
    (total, stats)
}

fn dfs(
    net: &mut FlowNetwork,
    u: usize,
    sink: usize,
    limit: u64,
    level: &[i32],
    it: &mut [usize],
) -> u64 {
    if u == sink {
        return limit;
    }
    while it[u] < net.adj[u].len() {
        let eid = net.adj[u][it[u]];
        let (to, cap) = {
            let e = &net.edges[eid];
            (e.to, e.cap)
        };
        if cap > 0 && level[to] == level[u] + 1 {
            let pushed = dfs(net, to, sink, limit.min(cap), level, it);
            if pushed > 0 {
                net.edges[eid].cap -= pushed;
                net.edges[eid ^ 1].cap += pushed;
                return pushed;
            }
        }
        it[u] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowNetwork;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(NodeId(0), NodeId(1), 7);
        assert_eq!(max_flow(&mut g, NodeId(0), NodeId(1)), 7);
        assert_eq!(g.flow(e), 7);
    }

    #[test]
    fn classic_diamond() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1)
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        g.add_edge(s, a, 3);
        g.add_edge(s, b, 2);
        g.add_edge(a, t, 2);
        g.add_edge(b, t, 3);
        g.add_edge(a, b, 1);
        assert_eq!(max_flow(&mut g, s, t), 5);
    }

    #[test]
    fn disconnected_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(NodeId(0), NodeId(1), 10);
        assert_eq!(max_flow(&mut g, NodeId(0), NodeId(2)), 0);
    }

    #[test]
    fn stats_count_paths_and_phases() {
        // Two disjoint unit paths: Dinic finds both in one BFS phase, so
        // exactly 2 augmenting paths and 2 BFS rounds (the second proves
        // the sink unreachable).
        let mut g = FlowNetwork::new(4);
        let (s, a, b) = (NodeId(0), NodeId(1), NodeId(2));
        let t = NodeId(3);
        g.add_edge(s, a, 1);
        g.add_edge(a, t, 1);
        g.add_edge(s, b, 1);
        g.add_edge(b, t, 1);
        let (total, stats) = max_flow_with_stats(&mut g, s, t);
        assert_eq!(total, 2);
        assert_eq!(stats.augmenting_paths, 2);
        assert_eq!(stats.bfs_phases, 2);
        // The disconnected case still pays one BFS to discover it.
        let mut g = FlowNetwork::new(2);
        let (total, stats) = max_flow_with_stats(&mut g, NodeId(0), NodeId(1));
        assert_eq!((total, stats.augmenting_paths, stats.bfs_phases), (0, 0, 1));
    }

    #[test]
    fn stats_accumulate() {
        let mut acc = FlowStats::default();
        acc.add(&FlowStats { augmenting_paths: 2, bfs_phases: 3 });
        acc.add(&FlowStats { augmenting_paths: 1, bfs_phases: 1 });
        assert_eq!(acc, FlowStats { augmenting_paths: 3, bfs_phases: 4 });
    }

    #[test]
    fn bottleneck_path() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(NodeId(0), NodeId(1), 10);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(3), 10);
        assert_eq!(max_flow(&mut g, NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(NodeId(0), NodeId(1), 2);
        g.add_edge(NodeId(0), NodeId(1), 3);
        assert_eq!(max_flow(&mut g, NodeId(0), NodeId(1)), 5);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut g = FlowNetwork::new(6);
        let s = NodeId(0);
        let t = NodeId(5);
        let edges = [
            (0, 1, 4),
            (0, 2, 6),
            (1, 3, 3),
            (2, 3, 2),
            (2, 4, 5),
            (3, 5, 6),
            (4, 5, 3),
            (1, 4, 1),
        ];
        let mut ids = Vec::new();
        for &(u, v, c) in &edges {
            ids.push((u, v, g.add_edge(NodeId(u), NodeId(v), c)));
        }
        let total = max_flow(&mut g, s, t);
        assert!(total > 0);
        // Net flow at every interior node must be zero.
        let mut net_flow = [0i64; 6];
        for &(u, v, e) in &ids {
            let f = g.flow(e) as i64;
            net_flow[u] -= f;
            net_flow[v] += f;
        }
        assert_eq!(net_flow[s.0], -(total as i64));
        assert_eq!(net_flow[t.0], total as i64);
        for (node, &flow) in net_flow.iter().enumerate().take(5).skip(1) {
            assert_eq!(flow, 0, "conservation violated at node {node}");
        }
    }

    #[test]
    fn reset_then_resolve_same_value() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(NodeId(0), NodeId(1), 3);
        g.add_edge(NodeId(1), NodeId(3), 2);
        g.add_edge(NodeId(0), NodeId(2), 2);
        g.add_edge(NodeId(2), NodeId(3), 4);
        let f1 = max_flow(&mut g, NodeId(0), NodeId(3));
        g.reset();
        let f2 = max_flow(&mut g, NodeId(0), NodeId(3));
        assert_eq!(f1, f2);
        assert_eq!(f1, 4);
    }

    /// Reference implementation: Edmonds–Karp (BFS augmenting paths), used
    /// to cross-check Dinic on random graphs.
    fn edmonds_karp(net: &mut FlowNetwork, s: usize, t: usize) -> u64 {
        let n = net.num_nodes();
        let mut total = 0;
        loop {
            let mut parent_edge = vec![usize::MAX; n];
            let mut visited = vec![false; n];
            visited[s] = true;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &eid in &net.adj[u] {
                    let e = &net.edges[eid];
                    if e.cap > 0 && !visited[e.to] {
                        visited[e.to] = true;
                        parent_edge[e.to] = eid;
                        queue.push_back(e.to);
                    }
                }
            }
            if !visited[t] {
                return total;
            }
            // Find bottleneck.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let eid = parent_edge[v];
                bottleneck = bottleneck.min(net.edges[eid].cap);
                v = net.edges[eid ^ 1].to;
            }
            let mut v = t;
            while v != s {
                let eid = parent_edge[v];
                net.edges[eid].cap -= bottleneck;
                net.edges[eid ^ 1].cap += bottleneck;
                v = net.edges[eid ^ 1].to;
            }
            total += bottleneck;
        }
    }

    proptest::proptest! {
        #[test]
        fn dinic_matches_edmonds_karp(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..20), 1..40)
        ) {
            let mut g1 = FlowNetwork::new(8);
            let mut g2 = FlowNetwork::new(8);
            for &(u, v, c) in &edges {
                if u != v {
                    g1.add_edge(NodeId(u), NodeId(v), c);
                    g2.add_edge(NodeId(u), NodeId(v), c);
                }
            }
            let d = max_flow(&mut g1, NodeId(0), NodeId(7));
            let ek = edmonds_karp(&mut g2, 0, 7);
            proptest::prop_assert_eq!(d, ek);
        }
    }
}
