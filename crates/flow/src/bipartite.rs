//! Bipartite assignment with supplies and capacities, solved by max-flow.
//!
//! This is the exact shape of the Lemma-3 network: left nodes are bags
//! (supply = number of medium jobs to place), right nodes are machines
//! (capacity = ceiling of the fractional assignment), and an edge `(l, r)`
//! with capacity 1 exists iff machine `r` is free for bag `l`.

use crate::dinic::{max_flow_with_stats, FlowStats};
use crate::graph::{EdgeId, FlowNetwork, NodeId};

/// A bipartite assignment problem.
#[derive(Debug, Clone)]
pub struct BipartiteProblem {
    num_left: usize,
    num_right: usize,
    supply: Vec<u64>,
    capacity: Vec<u64>,
    edges: Vec<(usize, usize, u64)>,
}

/// The integral assignment found by [`BipartiteProblem::solve`].
#[derive(Debug, Clone)]
pub struct BipartiteAssignment {
    /// Total units assigned.
    pub total: u64,
    /// `(left, right, amount)` triples with `amount > 0`.
    pub flows: Vec<(usize, usize, u64)>,
    /// Sum of all supplies (for completeness checks).
    pub total_supply: u64,
    /// Work counters of the underlying max-flow computation.
    pub stats: FlowStats,
}

impl BipartiteAssignment {
    /// Whether every unit of supply was assigned.
    pub fn is_complete(&self) -> bool {
        self.total == self.total_supply
    }
}

impl BipartiteProblem {
    /// A problem with `num_left` supply nodes and `num_right` capacity
    /// nodes, all supplies and capacities zero, no edges.
    pub fn new(num_left: usize, num_right: usize) -> Self {
        BipartiteProblem {
            num_left,
            num_right,
            supply: vec![0; num_left],
            capacity: vec![0; num_right],
            edges: Vec::new(),
        }
    }

    /// Set the supply of left node `l`.
    pub fn set_supply(&mut self, l: usize, units: u64) {
        self.supply[l] = units;
    }

    /// Set the capacity of right node `r`.
    pub fn set_capacity(&mut self, r: usize, units: u64) {
        self.capacity[r] = units;
    }

    /// Allow `cap` units to move from left `l` to right `r`.
    pub fn allow(&mut self, l: usize, r: usize, cap: u64) {
        assert!(l < self.num_left && r < self.num_right, "node out of range");
        self.edges.push((l, r, cap));
    }

    /// Solve by max-flow; the result is integral.
    pub fn solve(&self) -> BipartiteAssignment {
        // Node layout: 0 = source, 1..=L = left, L+1..=L+R = right, last = sink.
        let l0 = 1;
        let r0 = 1 + self.num_left;
        let sink = r0 + self.num_right;
        let mut net = FlowNetwork::new(sink + 1);
        for (l, &s) in self.supply.iter().enumerate() {
            if s > 0 {
                net.add_edge(NodeId(0), NodeId(l0 + l), s);
            }
        }
        for (r, &c) in self.capacity.iter().enumerate() {
            if c > 0 {
                net.add_edge(NodeId(r0 + r), NodeId(sink), c);
            }
        }
        let mut mid_edges: Vec<(usize, usize, EdgeId)> = Vec::with_capacity(self.edges.len());
        for &(l, r, cap) in &self.edges {
            let e = net.add_edge(NodeId(l0 + l), NodeId(r0 + r), cap);
            mid_edges.push((l, r, e));
        }
        let (total, stats) = max_flow_with_stats(&mut net, NodeId(0), NodeId(sink));
        let flows = mid_edges
            .into_iter()
            .filter_map(|(l, r, e)| {
                let f = net.flow(e);
                (f > 0).then_some((l, r, f))
            })
            .collect();
        BipartiteAssignment { total, flows, total_supply: self.supply.iter().sum(), stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching() {
        let mut p = BipartiteProblem::new(2, 2);
        p.set_supply(0, 1);
        p.set_supply(1, 1);
        p.set_capacity(0, 1);
        p.set_capacity(1, 1);
        p.allow(0, 0, 1);
        p.allow(0, 1, 1);
        p.allow(1, 0, 1);
        let a = p.solve();
        assert!(a.is_complete());
        assert_eq!(a.total, 2);
        // Left 1 can only go right 0, forcing left 0 to right 1.
        assert!(a.flows.contains(&(1, 0, 1)));
        assert!(a.flows.contains(&(0, 1, 1)));
    }

    #[test]
    fn incomplete_when_capacity_short() {
        let mut p = BipartiteProblem::new(1, 1);
        p.set_supply(0, 5);
        p.set_capacity(0, 3);
        p.allow(0, 0, 10);
        let a = p.solve();
        assert!(!a.is_complete());
        assert_eq!(a.total, 3);
        assert_eq!(a.total_supply, 5);
    }

    #[test]
    fn respects_edge_caps() {
        let mut p = BipartiteProblem::new(1, 2);
        p.set_supply(0, 4);
        p.set_capacity(0, 4);
        p.set_capacity(1, 4);
        p.allow(0, 0, 1);
        p.allow(0, 1, 1);
        let a = p.solve();
        assert_eq!(a.total, 2);
        for &(_, _, f) in &a.flows {
            assert!(f <= 1);
        }
    }

    #[test]
    fn empty_problem() {
        let p = BipartiteProblem::new(0, 0);
        let a = p.solve();
        assert_eq!(a.total, 0);
        assert!(a.is_complete());
    }

    #[test]
    fn lemma3_shape_distributes_evenly() {
        // 3 bags with 2 medium jobs each, 6 machines, every bag allowed on
        // every machine (unit edges), machine capacity 1: a perfect spread
        // must exist.
        let mut p = BipartiteProblem::new(3, 6);
        for l in 0..3 {
            p.set_supply(l, 2);
            for r in 0..6 {
                p.allow(l, r, 1);
            }
        }
        for r in 0..6 {
            p.set_capacity(r, 1);
        }
        let a = p.solve();
        assert!(a.is_complete());
        // Every machine got exactly one job.
        let mut per_machine = [0u64; 6];
        for &(_, r, f) in &a.flows {
            per_machine[r] += f;
        }
        assert!(per_machine.iter().all(|&c| c == 1));
    }
}
