//! Max-flow substrate for `bagsched`.
//!
//! The EPTAS of Grage, Jansen and Klein reinserts the medium jobs of
//! non-priority bags through an integral maximum flow in a bag -> machine
//! network (Lemma 3 of the paper). This crate provides:
//!
//! * [`FlowNetwork`] — a compact adjacency-list flow network,
//! * [`max_flow`] — Dinic's blocking-flow algorithm (integral capacities),
//! * [`bipartite`] — a convenience layer for the bag/machine assignment
//!   networks the scheduler actually builds.
//!
//! Capacities are `u64`; Dinic returns integral flows, which is exactly the
//! integrality argument Lemma 3 relies on ("flow theory implies that there
//! exists an integral solution").

pub mod bipartite;
pub mod dinic;
pub mod graph;

pub use bipartite::{BipartiteAssignment, BipartiteProblem};
pub use dinic::{max_flow, max_flow_with_stats, FlowStats};
pub use graph::{EdgeId, FlowNetwork, NodeId};
