//! Compact adjacency-list flow network with residual edges.

/// Node index in a [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Edge index in a [`FlowNetwork`]. Identifies the *forward* edge; its
/// residual twin is `EdgeId(id.0 ^ 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub to: usize,
    pub cap: u64,
}

/// A directed flow network with integral capacities.
///
/// Edges are stored in pairs: the forward edge at an even index and its
/// residual (initially zero-capacity) twin at the following odd index, so
/// the twin of edge `e` is `e ^ 1`.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    pub(crate) edges: Vec<Edge>,
    pub(crate) adj: Vec<Vec<usize>>,
    initial_caps: Vec<u64>,
}

impl FlowNetwork {
    /// An empty network with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork { edges: Vec::new(), adj: vec![Vec::new(); nodes], initial_caps: Vec::new() }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId(self.adj.len() - 1)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Add a directed edge `from -> to` with capacity `cap`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        assert!(from.0 < self.adj.len() && to.0 < self.adj.len(), "node out of range");
        let id = self.edges.len();
        self.edges.push(Edge { to: to.0, cap });
        self.edges.push(Edge { to: from.0, cap: 0 });
        self.adj[from.0].push(id);
        self.adj[to.0].push(id + 1);
        self.initial_caps.push(cap);
        self.initial_caps.push(0);
        EdgeId(id)
    }

    /// Flow currently routed through a forward edge (its residual twin's
    /// accumulated capacity).
    pub fn flow(&self, e: EdgeId) -> u64 {
        assert!(e.0 % 2 == 0, "flow() takes a forward edge id");
        self.edges[e.0 ^ 1].cap
    }

    /// Remaining capacity of a forward edge.
    pub fn residual(&self, e: EdgeId) -> u64 {
        self.edges[e.0].cap
    }

    /// Reset all flow to zero, restoring initial capacities.
    pub fn reset(&mut self) {
        for (edge, &cap) in self.edges.iter_mut().zip(&self.initial_caps) {
            edge.cap = cap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_pairing() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(NodeId(0), NodeId(1), 5);
        assert_eq!(e, EdgeId(0));
        assert_eq!(g.residual(e), 5);
        assert_eq!(g.flow(e), 0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn add_node_grows() {
        let mut g = FlowNetwork::new(0);
        assert_eq!(g.add_node(), NodeId(0));
        assert_eq!(g.add_node(), NodeId(1));
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(NodeId(0), NodeId(1), 3);
        g.edges[0].cap -= 2;
        g.edges[1].cap += 2;
        assert_eq!(g.flow(e), 2);
        g.reset();
        assert_eq!(g.flow(e), 0);
        assert_eq!(g.residual(e), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node() {
        let mut g = FlowNetwork::new(1);
        g.add_edge(NodeId(0), NodeId(5), 1);
    }
}
