//! End-to-end tests against an in-process daemon on an ephemeral port:
//! cache behavior over the wire, hostile-input handling at the socket
//! level, load-generator integration, and shutdown.

use bagsched_server::load::{self, LoadConfig};
use bagsched_server::protocol::{read_frame, write_frame, Ack, Client, MAX_FRAME};
use bagsched_server::server::{serve, ServerConfig, ServerHandle};
use bagsched_types::{gen, SolveRequest};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start() -> ServerHandle {
    serve(&ServerConfig::default()).expect("bind ephemeral port")
}

#[test]
fn solve_twice_hits_cache_with_identical_answer() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SolveRequest {
        id: 1,
        epsilon: 0.5,
        deadline_ms: None,
        instance: gen::uniform(24, 3, 8, 5),
    };

    let cold = client.solve(&req).unwrap();
    assert!(cold.ok, "{:?}", cold.error);
    assert!(!cold.cache_hit, "first solve of a shape must miss");
    assert_eq!(cold.assignment.len(), 24);

    let warm = client.solve(&SolveRequest { id: 2, ..req }).unwrap();
    assert!(warm.ok);
    assert!(warm.cache_hit, "second solve of the same shape must hit");
    assert_eq!(warm.id, 2);
    assert_eq!(warm.assignment, cold.assignment, "replay must be byte-identical");
    assert_eq!(warm.makespan.to_bits(), cold.makespan.to_bits());

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cached_states, 1);
    assert_eq!(stats.requests, 3, "two solves + this stats call");
    assert_eq!(stats.coalesced_waits, 0, "sequential requests never wait on a leader");
    server.shutdown();
}

#[test]
fn stats_op_serves_latency_metrics_and_slow_ring() {
    // Threshold of 1 µs: every solve is "slow", so the ring fills and
    // each entry carries the phase profile of its solve.
    let server = serve(&ServerConfig { slow_us: 1, ..ServerConfig::default() }).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SolveRequest {
        id: 31,
        epsilon: 0.5,
        deadline_ms: None,
        instance: gen::uniform(24, 3, 8, 7),
    };
    let cold = client.solve(&req).unwrap();
    assert!(cold.ok);
    assert!(cold.elapsed_us > 0, "server must report its own latency");
    assert_eq!(cold.cache.as_str(), "miss");
    let warm = client.solve(&SolveRequest { id: 32, ..req }).unwrap();
    assert_eq!(warm.cache.as_str(), "hit");
    assert!(client.ping().unwrap().ok);

    let stats = client.stats().unwrap();
    assert_eq!(stats.inflight, 0, "nothing in flight between requests");
    // Both ops that ran have a latency summary; quantiles are ordered.
    let solve = stats.ops.iter().find(|o| o.op == "solve").expect("solve op summary");
    assert_eq!(solve.count, 2);
    assert!(solve.p50_us <= solve.p99_us && solve.p99_us <= solve.p999_us);
    assert!(solve.p999_us <= solve.max_us);
    assert!(stats.ops.iter().any(|o| o.op == "ping"));
    // The slow ring holds both solves, oldest first, with phase rows
    // on the cold one (the hit replays and runs no solver phases).
    assert_eq!(stats.slow.len(), 2);
    assert_eq!(stats.slow[0].id, 31);
    assert_eq!(stats.slow[1].id, 32);
    assert_eq!(stats.slow[1].cache.as_str(), "hit");
    assert!(
        stats.slow[0].phases.iter().any(|p| p.name == "guess"),
        "cold solve must profile its guess search: {:?}",
        stats.slow[0].phases
    );
    server.shutdown();
}

#[test]
fn slow_ring_disabled_at_zero_threshold() {
    let server = serve(&ServerConfig { slow_us: 0, ..ServerConfig::default() }).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SolveRequest {
        id: 41,
        epsilon: 0.5,
        deadline_ms: None,
        instance: gen::uniform(24, 3, 8, 9),
    };
    assert!(client.solve(&req).unwrap().ok);
    let stats = client.stats().unwrap();
    assert!(stats.slow.is_empty(), "threshold 0 must disable the ring");
    assert!(stats.ops.iter().any(|o| o.op == "solve"), "histograms stay on");
    server.shutdown();
}

#[test]
fn per_request_deadline_is_honoured_on_the_wire() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    // A zero deadline cancels every EPTAS guess instantly; the portfolio's
    // LPT arm must still answer with a full feasible assignment.
    let req = SolveRequest {
        id: 5,
        epsilon: 0.5,
        deadline_ms: Some(0),
        instance: gen::uniform(24, 3, 8, 5),
    };
    let resp = client.solve(&req).unwrap();
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.assignment.len(), 24);
    assert!(resp.makespan > 0.0);
    server.shutdown();
}

#[test]
fn slow_peer_dribbling_a_frame_is_served_not_dropped() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let payload = br#"{"op": "ping"}"#;
    // Send the header, stall past the server's read-poll interval, then
    // send the body: the worker must keep waiting (no shutdown pending)
    // instead of treating the timeout tick as a broken frame.
    raw.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));
    raw.write_all(payload).unwrap();
    raw.flush().unwrap();
    let reply = read_frame(&mut raw).unwrap().expect("server must answer the completed frame");
    let ack: Ack = bagsched_server::protocol::decode(&reply).unwrap();
    assert!(ack.ok, "a slow but well-formed frame must be served: {:?}", ack.error);
    server.shutdown();
}

#[test]
fn shutdown_drains_despite_a_peer_stalled_mid_frame() {
    let server = start();
    let addr = server.addr();
    // Occupy a worker with a half-sent frame that never completes.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(&100u32.to_be_bytes()).unwrap();
    stalled.write_all(b"abc").unwrap();
    stalled.flush().unwrap();
    // Give a worker time to adopt the connection and park mid-frame.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).unwrap();
    assert!(client.shutdown().unwrap().ok);
    // The worker polls the stop flag between header and body, so the
    // drain completes within a poll interval instead of hanging.
    server.wait();
}

#[test]
fn infeasible_instance_is_an_error_response_not_a_crash() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    // Two jobs of one bag on one machine: no feasible schedule exists.
    let req = SolveRequest {
        id: 9,
        epsilon: 0.5,
        deadline_ms: None,
        instance: bagsched_types::Instance::new(&[(1.0, 0), (1.0, 0)], 1),
    };
    let resp = client.solve(&req).unwrap();
    assert!(!resp.ok);
    assert!(resp.error.is_some());
    assert!(resp.assignment.is_empty());
    // The connection and server both survive.
    assert!(client.ping().unwrap().ok);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // A prefix promising 4 GiB must be refused before allocation.
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    raw.flush().unwrap();
    let reply = read_frame(&mut raw).unwrap().expect("server answers before dropping");
    let ack: Ack = bagsched_server::protocol::decode(&reply).unwrap();
    assert!(!ack.ok);
    assert!(ack.error.unwrap().contains(&MAX_FRAME.to_string()));
    // The connection is dropped (framing was unrecoverable) but the
    // server keeps serving new connections.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.ping().unwrap().ok);
    server.shutdown();
}

#[test]
fn truncated_frame_does_not_wedge_the_server() {
    let server = start();
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        // Promise 100 bytes, send 10, hang up mid-frame.
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"0123456789").unwrap();
        raw.flush().unwrap();
    }
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.ping().unwrap().ok);
    let stats = client.stats().unwrap();
    assert!(stats.protocol_errors >= 1, "the truncated frame must be counted");
    server.shutdown();
}

#[test]
fn malformed_json_gets_error_ack_and_connection_survives() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, b"{this is not json").unwrap();
    let reply = read_frame(&mut raw).unwrap().unwrap();
    let ack: Ack = bagsched_server::protocol::decode(&reply).unwrap();
    assert!(!ack.ok);
    // Well-formed frame with an unknown op: also a polite error.
    write_frame(&mut raw, br#"{"op": "mine-bitcoin"}"#).unwrap();
    let reply = read_frame(&mut raw).unwrap().unwrap();
    let ack: Ack = bagsched_server::protocol::decode(&reply).unwrap();
    assert!(!ack.ok);
    assert!(ack.error.unwrap().contains("mine-bitcoin"));
    // Same connection still serves valid requests: framing stayed in sync.
    write_frame(&mut raw, br#"{"op": "ping"}"#).unwrap();
    let reply = read_frame(&mut raw).unwrap().unwrap();
    let ack: Ack = bagsched_server::protocol::decode(&reply).unwrap();
    assert!(ack.ok);
    server.shutdown();
}

#[test]
fn load_generator_quick_run_sees_hits() {
    let server = start();
    let cfg = LoadConfig { addr: server.addr().to_string(), ..LoadConfig::quick() };
    let report = load::run(&cfg).unwrap();
    assert_eq!(report.errors, 0);
    assert_eq!(report.completed, cfg.requests as u64);
    assert!(report.hits >= 1, "quick workload repeats shapes, so hits must appear");
    assert!(report.misses >= 1);
    assert_eq!(report.server.cache_hits, report.hits, "client and server must agree");
    assert!(report.hit_latency.is_some() && report.miss_latency.is_some());
    assert!(report.throughput_rps > 0.0);
    // A fresh identical run must pass the baseline gate against itself.
    let again = load::run(&cfg).unwrap();
    assert!(load::compare(&again, &report).is_ok());
    server.shutdown();
}

#[test]
fn open_loop_mode_completes() {
    let server = start();
    let cfg = LoadConfig {
        addr: server.addr().to_string(),
        requests: 10,
        concurrency: 2,
        open_loop_rps: Some(200.0),
        ..LoadConfig::quick()
    };
    let report = load::run(&cfg).unwrap();
    assert_eq!(report.completed + report.errors, 10);
    assert_eq!(report.errors, 0);
    server.shutdown();
}

#[test]
fn shutdown_op_terminates_the_daemon() {
    let server = start();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.shutdown().unwrap().ok);
    // wait() returns promptly once the acceptor and workers drain.
    server.wait();
    // New connections are refused (or accepted by the dying listener and
    // never served); either way a solve round-trip must fail.
    if let Ok(mut c) = Client::connect(addr) {
        assert!(c.ping().is_err());
    }
}
