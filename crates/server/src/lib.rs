//! Scheduling-as-a-service for `bagsched`.
//!
//! A persistent daemon ([`server::serve`], shipped as the
//! `bagsched-server` binary) keeps a [`bagsched_core::Solver`] — and,
//! crucially, its solver-state cache — resident across requests:
//! repeat traffic replays the cached winning guess, pattern pool and
//! warm simplex basis instead of re-running guess search and
//! column-generation pricing, which is where the one-shot CLI spends
//! almost all of its time.
//!
//! * [`protocol`] — the length-prefixed JSON wire format (hostile-input
//!   safe) and a blocking [`protocol::Client`].
//! * [`server`] — the daemon: acceptor + worker pool over one shared
//!   cached solver.
//! * [`load`] — the `bagsched-bencher` load generator: closed/open
//!   loop, configurable hot/cold workload mix, hit/miss-split latency
//!   percentiles, JSON reports with baseline comparison.
//! * [`metrics`] — daemon observability: per-op latency histograms
//!   (p50/p99/p999), an inflight gauge, and a slow-request ring with
//!   per-phase profiles, all served by the `stats` op.

pub mod load;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use load::{LoadConfig, LoadReport};
pub use protocol::{Client, OpLatency, Request, SlowRequest, StatsReply, MAX_FRAME};
pub use server::{serve, ServerConfig, ServerHandle};
