//! Load generation against a running daemon, with a latency report.
//!
//! The workload is a deterministic mix of *hot* requests (drawn from a
//! small set of repeated instance shapes — these hit the server's
//! solver-state cache after their first occurrence) and *cold* requests
//! (each a unique shape). `repeat_ratio` controls the mix; hot and cold
//! requests are interleaved evenly so the latency split is not an
//! artifact of ordering.
//!
//! Two loop modes:
//!
//! * **closed loop** (default): `concurrency` connections each send
//!   their next request as soon as the previous reply lands; latency is
//!   pure service time.
//! * **open loop** (`open_loop_rps`): requests are emitted on a fixed
//!   schedule regardless of completions; latency is measured from the
//!   *scheduled* send time, so queueing delay counts — the standard way
//!   to expose coordinated omission.
//!
//! The report carries p50/p99/p999 overall and split by cache
//! hit/miss, throughput, and the server's own lifetime counters; it
//! serializes to JSON and an earlier report can be used as a baseline
//! ([`compare`]).

use crate::protocol::{Client, StatsReply};
use bagsched_types::{gen, CacheTag, Instance, SolveRequest};
use serde::{Deserialize, DeserializeError, Serialize, Value};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Workload and loop configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Total requests to send.
    pub requests: usize,
    /// Concurrent connections (each gets `requests / concurrency` of
    /// the stream, strided so the hot/cold mix stays even per thread).
    pub concurrency: usize,
    /// Fraction of requests drawn from the repeated hot shapes.
    pub repeat_ratio: f64,
    /// Number of distinct hot shapes.
    pub shapes: usize,
    /// Workload family (a [`gen::Family`] name). `"uniform"` honours
    /// `bags`; the other families derive their bag count from the shape.
    pub family: String,
    /// Jobs per generated instance.
    pub jobs: usize,
    /// Machines per generated instance.
    pub machines: usize,
    /// Bags per generated instance.
    pub bags: usize,
    /// Approximation parameter sent with every request.
    pub epsilon: f64,
    /// `Some(rps)` switches to open-loop mode at that aggregate rate.
    pub open_loop_rps: Option<f64>,
    /// Base seed for instance generation.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7741".into(),
            requests: 200,
            concurrency: 4,
            repeat_ratio: 0.8,
            shapes: 4,
            family: "uniform".into(),
            jobs: 40,
            machines: 4,
            bags: 12,
            epsilon: 0.5,
            open_loop_rps: None,
            seed: 1,
        }
    }
}

impl LoadConfig {
    /// Small deterministic run for smoke tests: guaranteed to contain
    /// repeated shapes (and therefore cache hits) in under a minute.
    pub fn quick() -> Self {
        LoadConfig {
            requests: 40,
            concurrency: 2,
            repeat_ratio: 0.5,
            shapes: 2,
            jobs: 24,
            machines: 3,
            bags: 8,
            ..LoadConfig::default()
        }
    }
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl Percentiles {
    fn from_sorted(sorted: &[u64]) -> Option<Percentiles> {
        if sorted.is_empty() {
            return None;
        }
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Some(Percentiles { p50: at(0.50), p99: at(0.99), p999: at(0.999) })
    }
}

impl Serialize for Percentiles {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("p50_micros".into(), self.p50.to_value()),
            ("p99_micros".into(), self.p99.to_value()),
            ("p999_micros".into(), self.p999.to_value()),
        ])
    }
}

impl Deserialize for Percentiles {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(Percentiles {
            p50: u64::from_value(v.field("p50_micros")?)?,
            p99: u64::from_value(v.field("p99_micros")?)?,
            p999: u64::from_value(v.field("p999_micros")?)?,
        })
    }
}

/// The bencher's result: client-side latency/throughput plus the
/// server's own counters.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed (transport or solver error).
    pub errors: u64,
    /// Wall-clock of the whole run, microseconds.
    pub elapsed_micros: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency over all completed requests.
    pub overall: Percentiles,
    /// Completed requests the server answered from cached state.
    pub hits: u64,
    /// Completed requests the server solved cold.
    pub misses: u64,
    /// Completed cold requests whose search was seeded by a similar
    /// cached state (the server's `cache: "near"` tag; counted inside
    /// `misses` too, for continuity with older reports).
    pub near: u64,
    /// Latency of cache-hit requests (absent if none).
    pub hit_latency: Option<Percentiles>,
    /// Latency of cache-miss requests (absent if none).
    pub miss_latency: Option<Percentiles>,
    /// Latency of near-hit requests (absent if none).
    pub near_latency: Option<Percentiles>,
    /// Client-observed latency minus the server's own `elapsed_us`,
    /// per request: wire + framing + queueing overhead. In open-loop
    /// mode this includes queueing delay by design.
    pub overhead: Percentiles,
    /// Requests where the server claimed *more* elapsed time than the
    /// client observed — an accounting bug if ever nonzero.
    pub elapsed_inversions: u64,
    /// Server lifetime counters sampled after the run.
    pub server: StatsReply,
}

impl Serialize for LoadReport {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("completed".into(), self.completed.to_value()),
            ("errors".into(), self.errors.to_value()),
            ("elapsed_micros".into(), self.elapsed_micros.to_value()),
            ("throughput_rps".into(), self.throughput_rps.to_value()),
            ("overall".into(), self.overall.to_value()),
            ("cache_hits".into(), self.hits.to_value()),
            ("cache_misses".into(), self.misses.to_value()),
            ("cache_near".into(), self.near.to_value()),
            ("hit_latency".into(), self.hit_latency.to_value()),
            ("miss_latency".into(), self.miss_latency.to_value()),
            ("near_latency".into(), self.near_latency.to_value()),
            ("overhead".into(), self.overhead.to_value()),
            ("elapsed_inversions".into(), self.elapsed_inversions.to_value()),
            ("server".into(), self.server.to_value()),
        ])
    }
}

impl Deserialize for LoadReport {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        // Tolerant on fields added after the first report schema, so
        // old baseline files keep working with --compare.
        let near = match v.field("cache_near") {
            Ok(val) => u64::from_value(val)?,
            Err(_) => 0,
        };
        let near_latency = match v.field("near_latency") {
            Ok(val) => Option::<Percentiles>::from_value(val)?,
            Err(_) => None,
        };
        let overhead = match v.field("overhead") {
            Ok(val) => Percentiles::from_value(val)?,
            Err(_) => Percentiles::default(),
        };
        let elapsed_inversions = match v.field("elapsed_inversions") {
            Ok(val) => u64::from_value(val)?,
            Err(_) => 0,
        };
        Ok(LoadReport {
            completed: u64::from_value(v.field("completed")?)?,
            errors: u64::from_value(v.field("errors")?)?,
            elapsed_micros: u64::from_value(v.field("elapsed_micros")?)?,
            throughput_rps: f64::from_value(v.field("throughput_rps")?)?,
            overall: Percentiles::from_value(v.field("overall")?)?,
            hits: u64::from_value(v.field("cache_hits")?)?,
            misses: u64::from_value(v.field("cache_misses")?)?,
            near,
            hit_latency: Option::<Percentiles>::from_value(v.field("hit_latency")?)?,
            miss_latency: Option::<Percentiles>::from_value(v.field("miss_latency")?)?,
            near_latency,
            overhead,
            elapsed_inversions,
            server: StatsReply::from_value(v.field("server")?)?,
        })
    }
}

impl LoadReport {
    /// Render the human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: {} completed, {} errors in {:.2}s ({:.1} req/s)\n",
            self.completed,
            self.errors,
            self.elapsed_micros as f64 / 1e6,
            self.throughput_rps
        ));
        let line = |tag: &str, p: &Percentiles| {
            format!(
                "{tag:<12} p50 {:>8} us   p99 {:>8} us   p99.9 {:>8} us\n",
                p.p50, p.p99, p.p999
            )
        };
        out.push_str(&line("overall", &self.overall));
        if let Some(p) = &self.hit_latency {
            out.push_str(&line("cache hit", p));
        }
        if let Some(p) = &self.miss_latency {
            out.push_str(&line("cache miss", p));
        }
        if let Some(p) = &self.near_latency {
            out.push_str(&line("near hit", p));
        }
        out.push_str(&line("overhead", &self.overhead));
        if self.elapsed_inversions > 0 {
            out.push_str(&format!(
                "WARNING: {} requests reported more server time than the client observed\n",
                self.elapsed_inversions
            ));
        }
        out.push_str(&format!(
            "cache: {} hits / {} misses ({} near) client-side; server lifetime {} hits / {} misses / {} evictions, {} states resident\n",
            self.hits,
            self.misses,
            self.near,
            self.server.cache_hits,
            self.server.cache_misses,
            self.server.cache_evictions,
            self.server.cached_states
        ));
        if self.server.uptime_secs > 0 || !self.server.ops.is_empty() {
            out.push_str(&format!(
                "server: up {}s, {} inflight, {} near hits\n",
                self.server.uptime_secs, self.server.inflight, self.server.near_hits
            ));
        }
        for op in &self.server.ops {
            out.push_str(&format!(
                "server {:<6} x{:<6} p50 {:>8} us   p99 {:>8} us   p99.9 {:>8} us   max {:>8} us\n",
                op.op, op.count, op.p50_us, op.p99_us, op.p999_us, op.max_us
            ));
        }
        if !self.server.slow.is_empty() {
            out.push_str(&format!("server slow ring ({} entries):\n", self.server.slow.len()));
            for s in &self.server.slow {
                let top = s
                    .phases
                    .iter()
                    .max_by_key(|p| p.total_us)
                    .map(|p| format!("{} {} us", p.name, p.total_us))
                    .unwrap_or_else(|| "no phases".into());
                out.push_str(&format!(
                    "  req {} {} us ({}), hottest phase: {top}\n",
                    s.id,
                    s.micros,
                    s.cache.as_str()
                ));
            }
        }
        out
    }
}

/// Gate a fresh report against a baseline. Thresholds are generous (3x)
/// — this catches "the cache stopped working" and order-of-magnitude
/// regressions, not scheduler jitter.
pub fn compare(current: &LoadReport, baseline: &LoadReport) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    if current.errors > 0 {
        violations.push(format!("{} requests errored (baseline gate requires 0)", current.errors));
    }
    if baseline.hits > 0 && current.hits == 0 {
        violations.push("baseline had cache hits but this run had none".into());
    }
    if baseline.overall.p50 > 0 && current.overall.p50 > baseline.overall.p50.saturating_mul(3) {
        violations.push(format!(
            "overall p50 regressed {}us -> {}us (>3x)",
            baseline.overall.p50, current.overall.p50
        ));
    }
    if baseline.throughput_rps > 0.0 && current.throughput_rps < baseline.throughput_rps / 3.0 {
        violations.push(format!(
            "throughput regressed {:.1} -> {:.1} req/s (>3x)",
            baseline.throughput_rps, current.throughput_rps
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Valid [`LoadConfig::family`] names, for flag validation and usage
/// text.
pub fn family_names() -> Vec<&'static str> {
    gen::Family::ALL.iter().map(|f| f.name()).collect()
}

/// Build the deterministic request stream for a config.
///
/// Request `i` is *hot* when the running count of hot requests lags
/// `repeat_ratio * i` (an error-diffusion pattern: hot and cold
/// interleave evenly at any prefix). Hot requests cycle through
/// `shapes` fixed generator seeds; cold requests each get a unique one.
pub fn build_requests(cfg: &LoadConfig) -> Vec<SolveRequest> {
    let ratio = cfg.repeat_ratio.clamp(0.0, 1.0);
    (0..cfg.requests)
        .map(|i| {
            let hot = ((i + 1) as f64 * ratio).floor() > (i as f64 * ratio).floor();
            let gen_seed = if hot {
                cfg.seed + (i % cfg.shapes.max(1)) as u64
            } else {
                cfg.seed + 10_000 + i as u64
            };
            let instance: Instance = match gen::Family::parse(&cfg.family) {
                Some(f) if f != gen::Family::Uniform => {
                    f.generate(cfg.jobs, cfg.machines, gen_seed)
                }
                _ => gen::uniform(cfg.jobs, cfg.machines, cfg.bags, gen_seed),
            };
            SolveRequest { id: i as u64, epsilon: cfg.epsilon, deadline_ms: None, instance }
        })
        .collect()
}

struct Sample {
    micros: u64,
    /// The server's own `elapsed_us` for the request, for the
    /// client-vs-server latency cross-check.
    server_micros: u64,
    cache: CacheTag,
    ok: bool,
}

/// Run the workload; blocks until every request has been answered (or
/// failed) and the server counters are sampled.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let requests = Arc::new(build_requests(cfg));
    let concurrency = cfg.concurrency.max(1);
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let mut threads = Vec::with_capacity(concurrency);
    for worker in 0..concurrency {
        let requests = Arc::clone(&requests);
        let errors = Arc::clone(&errors);
        let addr = cfg.addr.clone();
        let open_interval = cfg
            .open_loop_rps
            .filter(|&rps| rps > 0.0)
            .map(|rps| Duration::from_secs_f64(1.0 / rps));
        threads.push(thread::spawn(move || -> io::Result<Vec<Sample>> {
            let mut client = Client::connect(&addr)?;
            let mut samples = Vec::new();
            let base = Instant::now();
            let mut idx = worker;
            while idx < requests.len() {
                let begin = match open_interval {
                    Some(interval) => {
                        // Open loop: send on the global schedule; latency
                        // counts from the scheduled instant, so a slow
                        // server accrues queueing delay instead of
                        // silently slowing the load down.
                        let scheduled = base + interval * idx as u32;
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            thread::sleep(wait);
                        }
                        scheduled
                    }
                    None => Instant::now(),
                };
                match client.solve(&requests[idx]) {
                    Ok(resp) => samples.push(Sample {
                        micros: begin.elapsed().as_micros() as u64,
                        server_micros: resp.elapsed_us,
                        cache: resp.cache,
                        ok: resp.ok,
                    }),
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        // The connection may be out of sync; re-dial.
                        client = Client::connect(&addr)?;
                    }
                }
                idx += concurrency;
            }
            Ok(samples)
        }));
    }

    let mut samples = Vec::with_capacity(cfg.requests);
    for t in threads {
        match t.join() {
            Ok(Ok(s)) => samples.extend(s),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err(io::Error::other("load worker panicked")),
        }
    }
    let elapsed = start.elapsed();

    let mut report = LoadReport {
        errors: errors.load(Ordering::Relaxed),
        elapsed_micros: elapsed.as_micros() as u64,
        ..LoadReport::default()
    };
    let mut all = Vec::new();
    let mut hit_lat = Vec::new();
    let mut miss_lat = Vec::new();
    let mut near_lat = Vec::new();
    let mut overhead = Vec::new();
    for s in &samples {
        if !s.ok {
            report.errors += 1;
            continue;
        }
        report.completed += 1;
        all.push(s.micros);
        // Cross-check: the client's view must be at least the server's
        // own measurement; the difference is wire + queueing overhead.
        if s.server_micros > s.micros {
            report.elapsed_inversions += 1;
        }
        overhead.push(s.micros.saturating_sub(s.server_micros));
        match s.cache {
            CacheTag::Hit => {
                report.hits += 1;
                hit_lat.push(s.micros);
            }
            CacheTag::Near => {
                // Near hits are misses that got a warm start; count
                // them under misses too so older baselines compare.
                report.misses += 1;
                report.near += 1;
                near_lat.push(s.micros);
                miss_lat.push(s.micros);
            }
            CacheTag::Miss => {
                report.misses += 1;
                miss_lat.push(s.micros);
            }
        }
    }
    all.sort_unstable();
    hit_lat.sort_unstable();
    miss_lat.sort_unstable();
    near_lat.sort_unstable();
    overhead.sort_unstable();
    report.overall = Percentiles::from_sorted(&all).unwrap_or_default();
    report.hit_latency = Percentiles::from_sorted(&hit_lat);
    report.miss_latency = Percentiles::from_sorted(&miss_lat);
    report.near_latency = Percentiles::from_sorted(&near_lat);
    report.overhead = Percentiles::from_sorted(&overhead).unwrap_or_default();
    report.throughput_rps = report.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    report.server = Client::connect(&cfg.addr)?.stats().map_err(io::Error::other)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_mix_matches_ratio() {
        let cfg = LoadConfig { requests: 100, repeat_ratio: 0.7, shapes: 3, ..LoadConfig::quick() };
        let reqs = build_requests(&cfg);
        assert_eq!(reqs.len(), 100);
        // Hot requests cycle over `shapes` seeds, so counting distinct
        // fingerprints bounds the hot fraction: 70 hot + 30 unique cold.
        let mut prints: Vec<u64> =
            reqs.iter().map(|r| bagsched_types::fingerprint(&r.instance, r.epsilon)).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), 3 + 30, "3 hot shapes + 30 unique cold shapes");
        // The mix is even: any prefix holds roughly ratio * len hot.
        let hot_in_prefix = reqs[..20]
            .iter()
            .filter(|r| {
                let fp = bagsched_types::fingerprint(&r.instance, r.epsilon);
                reqs.iter()
                    .filter(|o| bagsched_types::fingerprint(&o.instance, o.epsilon) == fp)
                    .count()
                    > 1
            })
            .count();
        assert!((12..=16).contains(&hot_in_prefix), "got {hot_in_prefix} hot in first 20");
    }

    #[test]
    fn percentiles_from_sorted() {
        assert_eq!(Percentiles::from_sorted(&[]), None);
        let p = Percentiles::from_sorted(&[10]).unwrap();
        assert_eq!((p.p50, p.p99, p.p999), (10, 10, 10));
        let v: Vec<u64> = (1..=1000).collect();
        let p = Percentiles::from_sorted(&v).unwrap();
        assert_eq!(p.p50, 501);
        assert_eq!(p.p99, 990);
        assert_eq!(p.p999, 999);
    }

    #[test]
    fn report_roundtrips_and_compares() {
        let report = LoadReport {
            completed: 40,
            errors: 0,
            elapsed_micros: 1_000_000,
            throughput_rps: 40.0,
            overall: Percentiles { p50: 100, p99: 300, p999: 500 },
            hits: 18,
            misses: 22,
            near: 3,
            hit_latency: Some(Percentiles { p50: 20, p99: 40, p999: 50 }),
            miss_latency: Some(Percentiles { p50: 200, p99: 400, p999: 600 }),
            near_latency: Some(Percentiles { p50: 150, p99: 350, p999: 550 }),
            overhead: Percentiles { p50: 30, p99: 80, p999: 120 },
            elapsed_inversions: 0,
            server: StatsReply {
                requests: 41,
                cache_hits: 18,
                cache_misses: 22,
                ..Default::default()
            },
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.completed, 40);
        assert_eq!(back.overall, report.overall);
        assert_eq!(back.hit_latency, report.hit_latency);
        assert_eq!(back.server, report.server);
        assert!(compare(&back, &report).is_ok(), "a run must pass against itself");

        let mut broken = back.clone();
        broken.hits = 0;
        let violations = compare(&broken, &report).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("cache hits")));
        let mut slow = back.clone();
        slow.overall.p50 = 1_000;
        assert!(compare(&slow, &report).is_err());
    }

    #[test]
    fn old_reports_without_cache_split_still_parse() {
        // A baseline written before the near/overhead fields existed
        // must keep working with --compare.
        let old = r#"{
            "completed": 5, "errors": 0, "elapsed_micros": 100, "throughput_rps": 50.0,
            "overall": {"p50_micros": 10, "p99_micros": 20, "p999_micros": 30},
            "cache_hits": 2, "cache_misses": 3,
            "hit_latency": null, "miss_latency": null,
            "server": {"requests": 5, "protocol_errors": 0, "cache_hits": 2,
                       "cache_misses": 3, "cache_evictions": 0, "cached_states": 3}
        }"#;
        let report: LoadReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.near, 0);
        assert_eq!(report.near_latency, None);
        assert_eq!(report.overhead, Percentiles::default());
        assert_eq!(report.elapsed_inversions, 0);
        assert!(report.server.ops.is_empty());
    }

    #[test]
    fn render_mentions_cache_split() {
        let report = LoadReport {
            completed: 2,
            hits: 1,
            misses: 1,
            hit_latency: Some(Percentiles::default()),
            miss_latency: Some(Percentiles::default()),
            ..Default::default()
        };
        let text = report.render();
        assert!(text.contains("cache hit"));
        assert!(text.contains("cache miss"));
    }
}
