//! The `bagsched-server` daemon.
//!
//! ```text
//! bagsched-server [flags]
//!
//! flags:
//!   --addr A      bind address (default 127.0.0.1:7741; port 0 = pick free)
//!   --workers N   worker threads / max concurrent connections (default 4)
//!   --cache N     solver-state cache capacity (default 64)
//!   --epsilon E   default approximation parameter (default 0.5)
//!   --solver-threads N
//!                 per-request solver threads; above 1 enables the
//!                 parallel solver seams (sharded pricing, speculative
//!                 guesses) with N shards (default 1)
//!   --slow-us N   latency threshold (microseconds) above which a solve
//!                 enters the slow-request ring served by the `stats`
//!                 op, with its per-phase profile; 0 disables the ring
//!                 and per-request profiling (default 100000)
//! ```
//!
//! Prints `listening on <addr>` (with the resolved port) to stdout once
//! the socket is bound, then serves until a client sends the `shutdown`
//! op. Exit codes: `0` clean shutdown, `1` bind failure, `2` usage.

use bagsched_server::{serve, ServerConfig};
use std::process::exit;

fn parse_args(raw: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig { addr: "127.0.0.1:7741".into(), ..ServerConfig::default() };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value_of =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => cfg.addr = value_of("--addr")?,
            "--workers" => {
                cfg.workers = value_of("--workers")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--cache" => {
                cfg.cache_capacity = value_of("--cache")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&c| c >= 1)
                    .ok_or("--cache needs a positive integer")?;
            }
            "--epsilon" => {
                cfg.epsilon = value_of("--epsilon")?
                    .parse::<f64>()
                    .ok()
                    .filter(|e| *e > 0.0 && *e <= 0.95)
                    .ok_or("--epsilon needs a number in (0, 0.95]")?;
            }
            "--solver-threads" => {
                cfg.solver_threads = value_of("--solver-threads")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or("--solver-threads needs a positive integer")?;
            }
            "--slow-us" => {
                cfg.slow_us = value_of("--slow-us")?
                    .parse::<u64>()
                    .map_err(|_| "--slow-us needs a nonnegative integer")?;
            }
            flag => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&raw) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: bagsched-server [--addr A] [--workers N] [--cache N] [--epsilon E] [--solver-threads N] [--slow-us N]"
            );
            exit(2);
        }
    };
    let handle = match serve(&cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", cfg.addr);
            exit(1);
        }
    };
    // Scripts (the CI smoke job, the bencher's --spawn-free workflow)
    // scrape this line for the resolved port.
    println!("listening on {}", handle.addr());
    handle.wait();
}
