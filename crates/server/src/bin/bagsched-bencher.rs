//! The `bagsched-bencher` load client.
//!
//! ```text
//! bagsched-bencher [flags]
//!
//! flags:
//!   --addr A            server address (default 127.0.0.1:7741)
//!   --requests N        total requests (default 200)
//!   --concurrency N     concurrent connections (default 4)
//!   --repeat-ratio F    hot-request fraction in [0,1] (default 0.8)
//!   --shapes N          distinct hot shapes (default 4)
//!   --family F          workload family: uniform, bimodal, clustered,
//!                       adversarial, tight, powerlaw (default uniform)
//!   --jobs N            jobs per instance (default 40)
//!   --machines N        machines per instance (default 4)
//!   --bags N            bags per instance (default 12)
//!   --epsilon E         approximation parameter (default 0.5)
//!   --open-loop RPS     open-loop mode at a fixed aggregate rate
//!   --seed S            workload seed (default 1)
//!   --quick             small smoke workload (40 requests)
//!   --require-hits      exit 3 unless the run saw >= 1 cache hit
//!   --json FILE         write the report as JSON
//!   --compare FILE      gate against a previous --json report (exit 3
//!                       on regression)
//!   --shutdown          send the shutdown op after the run
//! ```
//!
//! Exit codes: `0` ok, `1` transport failure, `2` usage, `3` gate
//! failure (--require-hits / --compare).

use bagsched_server::load::{self, compare, LoadConfig, LoadReport};
use bagsched_server::Client;
use std::path::PathBuf;
use std::process::exit;

struct Args {
    cfg: LoadConfig,
    require_hits: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    shutdown: bool,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        cfg: LoadConfig::default(),
        require_hits: false,
        json: None,
        baseline: None,
        shutdown: false,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value_of =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        let parse_usize = |flag: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|&x| x >= 1)
                .ok_or(format!("{flag} needs a positive integer"))
        };
        match a.as_str() {
            "--addr" => args.cfg.addr = value_of("--addr")?,
            "--requests" => args.cfg.requests = parse_usize("--requests", value_of("--requests")?)?,
            "--concurrency" => {
                args.cfg.concurrency = parse_usize("--concurrency", value_of("--concurrency")?)?;
            }
            "--repeat-ratio" => {
                args.cfg.repeat_ratio = value_of("--repeat-ratio")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--repeat-ratio needs a number in [0, 1]")?;
            }
            "--shapes" => args.cfg.shapes = parse_usize("--shapes", value_of("--shapes")?)?,
            "--family" => {
                let f = value_of("--family")?;
                if bagsched_server::load::family_names().contains(&f.as_str()) {
                    args.cfg.family = f;
                } else {
                    return Err(format!(
                        "--family must be one of {}",
                        bagsched_server::load::family_names().join(", ")
                    ));
                }
            }
            "--jobs" => args.cfg.jobs = parse_usize("--jobs", value_of("--jobs")?)?,
            "--machines" => args.cfg.machines = parse_usize("--machines", value_of("--machines")?)?,
            "--bags" => args.cfg.bags = parse_usize("--bags", value_of("--bags")?)?,
            "--epsilon" => {
                args.cfg.epsilon = value_of("--epsilon")?
                    .parse::<f64>()
                    .ok()
                    .filter(|e| *e > 0.0 && *e <= 0.95)
                    .ok_or("--epsilon needs a number in (0, 0.95]")?;
            }
            "--open-loop" => {
                args.cfg.open_loop_rps = Some(
                    value_of("--open-loop")?
                        .parse::<f64>()
                        .ok()
                        .filter(|r| *r > 0.0)
                        .ok_or("--open-loop needs a positive rate")?,
                );
            }
            "--seed" => {
                args.cfg.seed =
                    value_of("--seed")?.parse::<u64>().map_err(|_| "--seed needs an integer")?;
            }
            "--quick" => {
                let addr = args.cfg.addr.clone();
                args.cfg = LoadConfig { addr, ..LoadConfig::quick() };
            }
            "--require-hits" => args.require_hits = true,
            "--json" => args.json = Some(PathBuf::from(value_of("--json")?)),
            "--compare" => args.baseline = Some(PathBuf::from(value_of("--compare")?)),
            "--shutdown" => args.shutdown = true,
            flag => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(args)
}

fn gate(report: &LoadReport, args: &Args) -> Result<(), String> {
    if args.require_hits && report.hits == 0 {
        return Err("--require-hits: the run saw no cache hits".into());
    }
    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline: LoadReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))?;
        compare(report, &baseline).map_err(|violations| {
            format!("baseline gate failed:\n  {}", violations.join("\n  "))
        })?;
    }
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nusage: bagsched-bencher [--addr A] [--requests N] [--concurrency N] [--repeat-ratio F] [--shapes N] [--family F] [--jobs N] [--machines N] [--bags N] [--epsilon E] [--open-loop RPS] [--seed S] [--quick] [--require-hits] [--json FILE] [--compare FILE] [--shutdown]");
            exit(2);
        }
    };

    let report = match load::run(&args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: load run against {} failed: {e}", args.cfg.addr);
            exit(1);
        }
    };
    print!("{}", report.render());

    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&report).expect("report holds finite numbers");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: cannot write {}: {e}", path.display());
            exit(1);
        }
    }

    if args.shutdown {
        match Client::connect(&args.cfg.addr).map(|mut c| c.shutdown()) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => eprintln!("warning: shutdown op failed: {e}"),
            Err(e) => eprintln!("warning: cannot reconnect for shutdown: {e}"),
        }
    }

    if let Err(e) = gate(&report, &args) {
        eprintln!("{e}");
        exit(3);
    }
}
