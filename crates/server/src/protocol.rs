//! Length-prefixed JSON wire protocol and the blocking client.
//!
//! Every frame is a big-endian `u32` byte length followed by that many
//! bytes of UTF-8 JSON, capped at [`MAX_FRAME`]. Requests are tagged
//! objects (`{"op": "solve", "request": {...}}`); replies are the bare
//! payload for the op ([`SolveResponse`], [`StatsReply`], [`Ack`]).
//!
//! Hostile input is a first-class case: an oversized length prefix is
//! rejected before any allocation, a truncated frame surfaces as a
//! protocol error (the connection is dropped — framing is out of sync),
//! and malformed JSON inside a well-formed frame gets an error [`Ack`]
//! while the connection stays usable. The vendored `serde_json` parser
//! plus the validating `Instance` deserializer turn garbage into typed
//! errors, never panics.

use bagsched_types::{CacheTag, SolveRequest, SolveResponse};
use serde::{Deserialize, DeserializeError, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Hard cap on frame payloads (16 MiB): far above any real instance,
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure (includes mid-frame EOF: framing is unrecoverable).
    Io(io::Error),
    /// No frame started within the socket's read timeout. Only surfaces
    /// on sockets with a read timeout set (the server's poll loop); the
    /// stream is still at a frame boundary and it is safe to retry.
    Idle,
    /// [`read_frame_polled`]'s `keep_waiting` said to give up (server
    /// shutdown). May strike mid-frame; the connection is done either
    /// way.
    Stopped,
    /// The length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// The payload was not UTF-8.
    BadUtf8,
    /// The payload was not the expected JSON shape.
    BadJson(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::Idle => write!(f, "no frame within the read timeout"),
            ProtocolError::Stopped => write!(f, "read abandoned: the server is stopping"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtocolError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
            ProtocolError::BadJson(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary; EOF anywhere else is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no frame at all) from a truncated prefix,
    // and a pre-frame read timeout (retryable) from a mid-frame one
    // (framing lost).
    loop {
        match r.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ProtocolError::Idle)
            }
            Err(e) => return Err(e.into()),
        }
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Read one frame on a socket with a read timeout, consulting
/// `keep_waiting` on every timeout tick — *including between the length
/// prefix and the body*. `read_frame` only re-checks the caller's stop
/// condition at frame boundaries, so a peer that sends a prefix and then
/// stalls would pin the worker until the peer hangs up; this variant
/// honours a shutdown within one poll interval no matter where in the
/// frame the stream stands. `Ok(None)` is a clean EOF at a frame
/// boundary; [`ProtocolError::Stopped`] means `keep_waiting` said no.
pub fn read_frame_polled(
    r: &mut impl Read,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    // First byte: the one place a clean EOF is allowed.
    loop {
        match r.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if keep_waiting() {
                    continue;
                }
                return Err(ProtocolError::Stopped);
            }
            Err(e) => return Err(e.into()),
        }
    }
    read_exact_polled(r, &mut len_buf[1..], keep_waiting)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut buf = vec![0u8; len];
    read_exact_polled(r, &mut buf, keep_waiting)?;
    Ok(Some(buf))
}

/// `read_exact` that treats a read-timeout tick as a chance to ask
/// `keep_waiting`, and mid-frame EOF as the framing error it is.
fn read_exact_polled(
    r: &mut impl Read,
    buf: &mut [u8],
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<(), ProtocolError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if keep_waiting() {
                    continue;
                }
                return Err(ProtocolError::Stopped);
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Serialize a wire type to a frame payload. Infallible for the types
/// this crate sends: every float they carry is finite.
pub fn encode<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string_pretty(value).expect("wire types hold only finite numbers").into_bytes()
}

/// Decode a frame payload into a wire type.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, ProtocolError> {
    let text = std::str::from_utf8(payload).map_err(|_| ProtocolError::BadUtf8)?;
    serde_json::from_str(text).map_err(|e| ProtocolError::BadJson(e.to_string()))
}

/// A client request: one tagged operation per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve an instance (the workhorse op).
    Solve(SolveRequest),
    /// Fetch server lifetime counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to stop accepting and drain.
    Shutdown,
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Solve(req) => Value::Obj(vec![
                ("op".into(), Value::Str("solve".into())),
                ("request".into(), req.to_value()),
            ]),
            Request::Stats => Value::Obj(vec![("op".into(), Value::Str("stats".into()))]),
            Request::Ping => Value::Obj(vec![("op".into(), Value::Str("ping".into()))]),
            Request::Shutdown => Value::Obj(vec![("op".into(), Value::Str("shutdown".into()))]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let op = String::from_value(v.field("op")?)?;
        match op.as_str() {
            "solve" => Ok(Request::Solve(SolveRequest::from_value(v.field("request")?)?)),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(DeserializeError::new(format!("unknown op `{other}`"))),
        }
    }
}

/// Generic acknowledgement (ping/shutdown replies, protocol errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// Whether the request was understood and acted on.
    pub ok: bool,
    /// Failure reason when `ok` is `false`.
    pub error: Option<String>,
}

impl Ack {
    /// A positive acknowledgement.
    pub fn ok() -> Self {
        Ack { ok: true, error: None }
    }

    /// A refusal with a reason.
    pub fn err(msg: impl Into<String>) -> Self {
        Ack { ok: false, error: Some(msg.into()) }
    }
}

impl Serialize for Ack {
    fn to_value(&self) -> Value {
        Value::Obj(vec![("ok".into(), self.ok.to_value()), ("error".into(), self.error.to_value())])
    }
}

impl Deserialize for Ack {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(Ack {
            ok: bool::from_value(v.field("ok")?)?,
            error: Option::<String>::from_value(v.field("error")?)?,
        })
    }
}

/// Latency summary for one op, from the daemon's log2-bucketed
/// histogram: quantiles are interpolated (exact at bucket boundaries,
/// within 2x elsewhere), the max is exact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpLatency {
    /// The op name (`solve`, `stats`, `ping`).
    pub op: String,
    /// Requests of this op the daemon has timed.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Slowest single request, microseconds (exact).
    pub max_us: u64,
}

impl Serialize for OpLatency {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("op".into(), self.op.to_value()),
            ("count".into(), self.count.to_value()),
            ("p50_us".into(), self.p50_us.to_value()),
            ("p99_us".into(), self.p99_us.to_value()),
            ("p999_us".into(), self.p999_us.to_value()),
            ("max_us".into(), self.max_us.to_value()),
        ])
    }
}

impl Deserialize for OpLatency {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(OpLatency {
            op: String::from_value(v.field("op")?)?,
            count: u64::from_value(v.field("count")?)?,
            p50_us: u64::from_value(v.field("p50_us")?)?,
            p99_us: u64::from_value(v.field("p99_us")?)?,
            p999_us: u64::from_value(v.field("p999_us")?)?,
            max_us: u64::from_value(v.field("max_us")?)?,
        })
    }
}

/// One phase row inside a [`SlowRequest`] (times in microseconds; the
/// daemon records nanoseconds internally but the wire stays coarse).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlowPhase {
    /// Dotted phase name (see the span taxonomy in the README).
    pub name: String,
    /// Span occurrences of this phase within the solve.
    pub count: u64,
    /// Summed wall time of those spans, microseconds.
    pub total_us: u64,
}

impl Serialize for SlowPhase {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), self.name.to_value()),
            ("count".into(), self.count.to_value()),
            ("total_us".into(), self.total_us.to_value()),
        ])
    }
}

impl Deserialize for SlowPhase {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(SlowPhase {
            name: String::from_value(v.field("name")?)?,
            count: u64::from_value(v.field("count")?)?,
            total_us: u64::from_value(v.field("total_us")?)?,
        })
    }
}

/// One entry of the slow-request ring: a solve whose latency crossed
/// the daemon's `--slow-us` threshold, with its phase profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlowRequest {
    /// The request id the client sent.
    pub id: u64,
    /// Server-side latency, microseconds.
    pub micros: u64,
    /// How the solver-state cache treated the request.
    pub cache: CacheTag,
    /// Where the time went, one row per phase that fired.
    pub phases: Vec<SlowPhase>,
}

impl Serialize for SlowRequest {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), self.id.to_value()),
            ("micros".into(), self.micros.to_value()),
            ("cache".into(), self.cache.as_str().to_string().to_value()),
            ("phases".into(), self.phases.to_value()),
        ])
    }
}

impl Deserialize for SlowRequest {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let cache = match String::from_value(v.field("cache")?)?.as_str() {
            "hit" => CacheTag::Hit,
            "near" => CacheTag::Near,
            "miss" => CacheTag::Miss,
            other => {
                return Err(DeserializeError::new(format!(
                    "cache tag must be hit|near|miss, got {other:?}"
                )))
            }
        };
        Ok(SlowRequest {
            id: u64::from_value(v.field("id")?)?,
            micros: u64::from_value(v.field("micros")?)?,
            cache,
            phases: Vec::<SlowPhase>::from_value(v.field("phases")?)?,
        })
    }
}

/// Server lifetime counters and latency metrics, as answered to the
/// `stats` op.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReply {
    /// Well-formed requests handled (all ops).
    pub requests: u64,
    /// Frames rejected at the protocol layer.
    pub protocol_errors: u64,
    /// Solver-state cache hits.
    pub cache_hits: u64,
    /// Solver-state cache misses.
    pub cache_misses: u64,
    /// Solver-state cache evictions.
    pub cache_evictions: u64,
    /// States currently resident in the cache.
    pub cached_states: u64,
    /// Requests that waited for an in-flight solve of the same shape
    /// instead of duplicating it (request coalescing).
    pub coalesced_waits: u64,
    /// Misses whose search was seeded by a similar cached state
    /// (similarity-tier near hits).
    pub near_hits: u64,
    /// Solves being worked on right now (gauge, not a counter).
    pub inflight: u64,
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// Per-op latency summaries; ops with no traffic are omitted.
    pub ops: Vec<OpLatency>,
    /// The slow-request ring, oldest first (empty when `--slow-us 0`).
    pub slow: Vec<SlowRequest>,
}

impl Serialize for StatsReply {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("requests".into(), self.requests.to_value()),
            ("protocol_errors".into(), self.protocol_errors.to_value()),
            ("cache_hits".into(), self.cache_hits.to_value()),
            ("cache_misses".into(), self.cache_misses.to_value()),
            ("cache_evictions".into(), self.cache_evictions.to_value()),
            ("cached_states".into(), self.cached_states.to_value()),
            ("coalesced_waits".into(), self.coalesced_waits.to_value()),
            ("near_hits".into(), self.near_hits.to_value()),
            ("inflight".into(), self.inflight.to_value()),
            ("uptime_secs".into(), self.uptime_secs.to_value()),
            ("ops".into(), self.ops.to_value()),
            ("slow".into(), self.slow.to_value()),
        ])
    }
}

impl Deserialize for StatsReply {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        // Tolerant on everything added after the first protocol
        // version: replies from older servers parse with zeros/empties.
        let opt_u64 = |name: &str| -> Result<u64, DeserializeError> {
            match v.field(name) {
                Ok(val) => u64::from_value(val),
                Err(_) => Ok(0),
            }
        };
        let ops = match v.field("ops") {
            Ok(val) => Vec::<OpLatency>::from_value(val)?,
            Err(_) => Vec::new(),
        };
        let slow = match v.field("slow") {
            Ok(val) => Vec::<SlowRequest>::from_value(val)?,
            Err(_) => Vec::new(),
        };
        Ok(StatsReply {
            requests: u64::from_value(v.field("requests")?)?,
            protocol_errors: u64::from_value(v.field("protocol_errors")?)?,
            cache_hits: u64::from_value(v.field("cache_hits")?)?,
            cache_misses: u64::from_value(v.field("cache_misses")?)?,
            cache_evictions: u64::from_value(v.field("cache_evictions")?)?,
            cached_states: u64::from_value(v.field("cached_states")?)?,
            coalesced_waits: opt_u64("coalesced_waits")?,
            near_hits: opt_u64("near_hits")?,
            inflight: opt_u64("inflight")?,
            uptime_secs: opt_u64("uptime_secs")?,
            ops,
            slow,
        })
    }
}

/// A blocking client over one TCP connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip<T: Deserialize>(&mut self, req: &Request) -> Result<T, ProtocolError> {
        write_frame(&mut self.stream, &encode(req))?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))
        })?;
        decode(&frame)
    }

    /// Solve one instance.
    pub fn solve(&mut self, req: &SolveRequest) -> Result<SolveResponse, ProtocolError> {
        self.round_trip(&Request::Solve(req.clone()))
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ProtocolError> {
        self.round_trip(&Request::Stats)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Ack, ProtocolError> {
        self.round_trip(&Request::Ping)
    }

    /// Ask the daemon to stop.
    pub fn shutdown(&mut self) -> Result<Ack, ProtocolError> {
        self.round_trip(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagsched_types::Instance;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at frame boundary");
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut r: &[u8] = &u32::MAX.to_be_bytes();
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::FrameTooLarge(_))));
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        // Prefix promises 100 bytes, stream ends after 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Io(_))));
        // Truncated *prefix* too.
        let mut r: &[u8] = &[0u8, 0];
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Io(_))));
    }

    /// Yields `data` one byte at a time, then `WouldBlock` forever —
    /// a peer that sent a frame header and stalled.
    struct Dribble {
        data: Vec<u8>,
        sent: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.sent < self.data.len() && !buf.is_empty() {
                buf[0] = self.data[self.sent];
                self.sent += 1;
                Ok(1)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
            }
        }
    }

    #[test]
    fn polled_read_stops_mid_frame_when_told_to() {
        // Header promising 100 bytes, then 3 body bytes, then a stall:
        // the old boundary-only poll would hang here until the peer hung
        // up; the polled variant must observe the stop signal mid-frame.
        let mut data = 100u32.to_be_bytes().to_vec();
        data.extend_from_slice(b"abc");
        let mut r = Dribble { data, sent: 0 };
        let mut polls = 0;
        let result = read_frame_polled(&mut r, &mut || {
            polls += 1;
            polls < 3
        });
        assert!(matches!(result, Err(ProtocolError::Stopped)));
        assert_eq!(polls, 3, "the stall must keep consulting the poll hook");
    }

    #[test]
    fn polled_read_delivers_complete_frames_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mut r = &buf[..];
        // No stall happens, so the hook must never be consulted.
        let mut never = || panic!("no timeout tick expected on a complete frame");
        assert_eq!(read_frame_polled(&mut r, &mut never).unwrap().unwrap(), b"payload");
        assert!(read_frame_polled(&mut r, &mut || false).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn polled_read_reports_mid_frame_eof_as_io_error() {
        let mut data = 100u32.to_be_bytes().to_vec();
        data.extend_from_slice(b"abc");
        let mut r = &data[..];
        assert!(matches!(read_frame_polled(&mut r, &mut || true), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn requests_roundtrip() {
        let inst = Instance::new(&[(2.0, 0), (1.0, 1)], 2);
        let ops = [
            Request::Solve(SolveRequest { id: 3, epsilon: 0.5, deadline_ms: None, instance: inst }),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for op in &ops {
            let back: Request = decode(&encode(op)).unwrap();
            assert_eq!(&back, op);
        }
    }

    #[test]
    fn malformed_payloads_become_typed_errors() {
        assert!(matches!(decode::<Request>(b"{not json"), Err(ProtocolError::BadJson(_))));
        assert!(matches!(
            decode::<Request>(b"{\"op\": \"mine-bitcoin\"}"),
            Err(ProtocolError::BadJson(_))
        ));
        assert!(matches!(decode::<Request>(&[0xff, 0xfe]), Err(ProtocolError::BadUtf8)));
        // A solve op whose instance is structurally invalid (non-dense
        // ids, negative sizes) is rejected by the Instance deserializer.
        let bad = br#"{"op": "solve", "request": {"id": 1, "epsilon": 0.5, "instance": {"jobs": [{"id": 5, "size": -1.0, "bag": 0}], "machines": 2, "num_bags": 1}}}"#;
        assert!(matches!(decode::<Request>(bad), Err(ProtocolError::BadJson(_))));
    }

    #[test]
    fn stats_and_ack_roundtrip() {
        let s = StatsReply {
            requests: 10,
            protocol_errors: 2,
            cache_hits: 5,
            cache_misses: 4,
            cache_evictions: 1,
            cached_states: 3,
            coalesced_waits: 6,
            near_hits: 2,
            inflight: 1,
            uptime_secs: 99,
            ops: vec![OpLatency {
                op: "solve".into(),
                count: 10,
                p50_us: 400,
                p99_us: 2_000,
                p999_us: 2_100,
                max_us: 2_111,
            }],
            slow: vec![SlowRequest {
                id: 7,
                micros: 2_111,
                cache: CacheTag::Near,
                phases: vec![SlowPhase { name: "guess".into(), count: 3, total_us: 1_900 }],
            }],
        };
        assert_eq!(decode::<StatsReply>(&encode(&s)).unwrap(), s);
        assert_eq!(decode::<Ack>(&encode(&Ack::ok())).unwrap(), Ack::ok());
        let e = Ack::err("nope");
        assert_eq!(decode::<Ack>(&encode(&e)).unwrap(), e);
    }

    #[test]
    fn old_stats_replies_without_metrics_still_parse() {
        // A reply from a daemon predating the metrics layer: only the
        // original counters. Everything newer parses as zero/empty.
        let old = br#"{"requests": 4, "protocol_errors": 0, "cache_hits": 1,
                       "cache_misses": 3, "cache_evictions": 0, "cached_states": 3}"#;
        let s = decode::<StatsReply>(old).unwrap();
        assert_eq!(s.requests, 4);
        assert_eq!(s.coalesced_waits, 0);
        assert_eq!(s.near_hits, 0);
        assert_eq!(s.inflight, 0);
        assert_eq!(s.uptime_secs, 0);
        assert!(s.ops.is_empty());
        assert!(s.slow.is_empty());
    }
}
