//! Daemon-side request metrics: per-op latency histograms, an
//! inflight gauge, and a slow-request ring buffer.
//!
//! Everything here is observational — nothing feeds back into solving,
//! so the daemon's answers are byte-identical with metrics on or off.
//! Latencies go into the shared log2-bucketed
//! [`Histogram`](bagsched_types::obs::Histogram) (O(1) record, fixed
//! footprint), one per op, guarded by uncontended mutexes: a worker
//! only touches them once per request, after the reply is built.
//!
//! The slow-request ring keeps the last [`SLOW_RING_CAPACITY`] solves
//! whose latency crossed the configured threshold, each with the
//! per-phase [`PhaseProfile`] captured by the per-request recorder —
//! enough to answer "*why* was that one slow" from the `stats` op
//! without a debugger attached. A threshold of zero disables the ring
//! *and* the per-request recorder, restoring the pre-observability
//! fast path.

use crate::protocol::{OpLatency, SlowPhase, SlowRequest};
use bagsched_types::obs::{Histogram, PhaseProfile};
use bagsched_types::CacheTag;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many slow requests the ring remembers (oldest evicted first).
pub const SLOW_RING_CAPACITY: usize = 16;

/// The ops the daemon tracks latency for, one histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The `solve` op (the workhorse).
    Solve,
    /// The `stats` op.
    Stats,
    /// The `ping` op.
    Ping,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Solve => "solve",
            Op::Stats => "stats",
            Op::Ping => "ping",
        }
    }
}

/// One over-threshold solve, as held in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowEntry {
    /// The request id the client sent.
    pub id: u64,
    /// Server-side latency, microseconds.
    pub micros: u64,
    /// How the solver-state cache treated the request.
    pub cache: CacheTag,
    /// Phase profile of the solve (empty when no spans fired).
    pub profile: PhaseProfile,
}

/// Shared metrics state, one per daemon.
pub struct Metrics {
    start: Instant,
    /// Latency threshold (µs) above which a solve enters the slow
    /// ring; `0` disables the ring and per-request profiling.
    pub slow_threshold_us: u64,
    histograms: [Mutex<Histogram>; 3],
    inflight: AtomicI64,
    slow: Mutex<VecDeque<SlowEntry>>,
}

impl Metrics {
    /// Fresh metrics; `slow_threshold_us == 0` disables the slow ring.
    pub fn new(slow_threshold_us: u64) -> Metrics {
        Metrics {
            start: Instant::now(),
            slow_threshold_us,
            histograms: [
                Mutex::new(Histogram::new()),
                Mutex::new(Histogram::new()),
                Mutex::new(Histogram::new()),
            ],
            inflight: AtomicI64::new(0),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
        }
    }

    /// Seconds since the daemon started.
    pub fn uptime_secs(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Whether per-request phase profiling (for the slow ring) is on.
    pub fn profiling(&self) -> bool {
        self.slow_threshold_us > 0
    }

    /// Mark a solve as started; the returned guard decrements the
    /// gauge on drop (any exit path, including panics unwinding).
    pub fn enter(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { metrics: self }
    }

    /// Solves currently being worked on.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed).max(0) as u64
    }

    /// Record one request's latency under its op.
    pub fn record(&self, op: Op, micros: u64) {
        self.histograms[op as usize].lock().expect("histogram poisoned").record(micros);
    }

    /// Offer a solve to the slow ring; kept only when at or over the
    /// threshold (and the ring is enabled).
    pub fn offer_slow(&self, entry: SlowEntry) {
        if self.slow_threshold_us == 0 || entry.micros < self.slow_threshold_us {
            return;
        }
        let mut ring = self.slow.lock().expect("slow ring poisoned");
        if ring.len() == SLOW_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Per-op latency summaries for the `stats` reply, ops with no
    /// traffic omitted.
    pub fn op_latencies(&self) -> Vec<OpLatency> {
        [Op::Solve, Op::Stats, Op::Ping]
            .into_iter()
            .filter_map(|op| {
                let h = self.histograms[op as usize].lock().expect("histogram poisoned");
                if h.count() == 0 {
                    return None;
                }
                let (p50, p99, p999) = h.percentiles();
                Some(OpLatency {
                    op: op.name().into(),
                    count: h.count(),
                    p50_us: p50,
                    p99_us: p99,
                    p999_us: p999,
                    max_us: h.max(),
                })
            })
            .collect()
    }

    /// The slow ring as wire rows, oldest first.
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.slow
            .lock()
            .expect("slow ring poisoned")
            .iter()
            .map(|e| SlowRequest {
                id: e.id,
                micros: e.micros,
                cache: e.cache,
                phases: e
                    .profile
                    .phases
                    .iter()
                    .map(|p| SlowPhase {
                        name: p.name.clone(),
                        count: p.count,
                        total_us: p.total_ns / 1_000,
                    })
                    .collect(),
            })
            .collect()
    }
}

/// RAII decrement for the inflight gauge.
pub struct InflightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_gauge_tracks_guards() {
        let m = Metrics::new(1_000);
        assert_eq!(m.inflight(), 0);
        let a = m.enter();
        let b = m.enter();
        assert_eq!(m.inflight(), 2);
        drop(a);
        assert_eq!(m.inflight(), 1);
        drop(b);
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn op_latencies_skip_untouched_ops() {
        let m = Metrics::new(0);
        m.record(Op::Solve, 100);
        m.record(Op::Solve, 200);
        let ops = m.op_latencies();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].op, "solve");
        assert_eq!(ops[0].count, 2);
        assert_eq!(ops[0].max_us, 200);
        assert!(ops[0].p50_us >= 100 && ops[0].p999_us <= 200);
    }

    #[test]
    fn slow_ring_thresholds_and_caps() {
        let m = Metrics::new(500);
        let entry = |id, micros| SlowEntry {
            id,
            micros,
            cache: CacheTag::Miss,
            profile: PhaseProfile::default(),
        };
        m.offer_slow(entry(1, 499)); // below threshold: dropped
        for i in 0..(SLOW_RING_CAPACITY as u64 + 4) {
            m.offer_slow(entry(100 + i, 500 + i));
        }
        let slow = m.slow_requests();
        assert_eq!(slow.len(), SLOW_RING_CAPACITY, "ring caps at K");
        // Oldest evicted: the survivors are the last K offered.
        assert_eq!(slow[0].id, 100 + 4);
        assert_eq!(slow.last().unwrap().id, 100 + SLOW_RING_CAPACITY as u64 + 3);

        // Threshold zero disables the ring outright.
        let off = Metrics::new(0);
        off.offer_slow(entry(7, u64::MAX));
        assert!(off.slow_requests().is_empty());
        assert!(!off.profiling());
    }
}
