//! The long-running scheduling daemon.
//!
//! One acceptor thread hands accepted connections to a fixed pool of
//! worker threads over an mpsc channel; each worker owns a connection
//! for its lifetime and loops frames through the shared
//! [`Solver`](bagsched_core::Solver). The solver's state cache is the
//! whole point of staying resident: repeat traffic replays cached
//! pattern pools and warm bases instead of re-searching (see
//! `bagsched_core::solver`).
//!
//! Shutdown is cooperative: the `shutdown` op (or
//! [`ServerHandle::shutdown`]) raises a flag and pokes the listener with
//! a self-connection so the blocking `accept` observes it; workers drain
//! their current connections and exit when the channel closes.

use crate::metrics::{Metrics, Op, SlowEntry};
use crate::protocol::{
    decode, encode, read_frame_polled, write_frame, Ack, ProtocolError, Request, StatsReply,
};
use bagsched_core::{obs, EptasConfig, Solver};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Read-poll interval on worker connections: the latency bound between
/// the stop flag rising and idle connections being closed.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads. Each owns one connection at a time, so this also
    /// bounds concurrent connections; excess connections queue.
    pub workers: usize,
    /// Capacity of the solver-state cache.
    pub cache_capacity: usize,
    /// Default epsilon (each request carries its own; this seeds the
    /// config the per-request epsilon is spliced into).
    pub epsilon: f64,
    /// Solver threads per request. Above 1 this turns on the parallel
    /// solver seams (sharded pricing DFS and speculative guess racing)
    /// with this many shards / speculative guesses. The *shard count*
    /// is taken verbatim (it is part of the solve configuration, so
    /// answers stay machine-independent); the *thread count* actually
    /// used is clamped so `workers * solver_threads` does not
    /// oversubscribe the machine — threads never change results.
    pub solver_threads: usize,
    /// Latency threshold (microseconds) above which a solve enters the
    /// slow-request ring — with the per-phase profile captured by a
    /// per-request span recorder — served by the `stats` op. `0`
    /// disables the ring *and* the per-request recorder (the
    /// zero-overhead path); latency histograms stay on either way.
    pub slow_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_capacity: 64,
            epsilon: 0.5,
            solver_threads: 1,
            slow_us: 100_000,
        }
    }
}

struct Shared {
    solver: Solver,
    addr: SocketAddr,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    metrics: Metrics,
    stop: AtomicBool,
}

/// Handle to a running daemon: its bound address plus the thread handles
/// needed to wait for or force termination.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the daemon terminates (via the `shutdown` op).
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Stop the daemon from the hosting process and wait for it.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        self.wait();
    }
}

/// Bind, spawn the worker pool, and start accepting. Returns once the
/// socket is listening; the daemon runs on background threads.
pub fn serve(cfg: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let mut ecfg = EptasConfig::with_epsilon(cfg.epsilon);
    let requested = cfg.solver_threads.max(1);
    if requested > 1 {
        // Shard/speculation counts follow the request verbatim; only the
        // thread budget is divided among the worker pool.
        let avail = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ecfg.solver_threads = requested.min((avail / cfg.workers.max(1)).max(1));
        ecfg.pricing_shards = requested;
        ecfg.speculative_guesses = requested;
    }
    let solver = Solver::with_cache(ecfg, cfg.cache_capacity);
    let shared = Arc::new(Shared {
        solver,
        addr,
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
        metrics: Metrics::new(cfg.slow_us),
        stop: AtomicBool::new(false),
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        workers.push(thread::Builder::new().name(format!("bagsched-worker-{i}")).spawn(
            move || loop {
                // Take the next connection; a closed channel means the
                // acceptor is gone and the pool should drain out.
                let conn = rx.lock().unwrap().recv();
                match conn {
                    Ok(stream) => handle_connection(stream, &shared),
                    Err(_) => return,
                }
            },
        )?);
    }

    let accept_shared = Arc::clone(&shared);
    let acceptor = thread::Builder::new().name("bagsched-accept".into()).spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                let _ = stream.set_nodelay(true);
                // A send can only fail if every worker already exited,
                // which only happens on shutdown.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // Dropping the sender closes the channel; idle workers exit.
    })?;

    Ok(ServerHandle { addr, shared, acceptor, workers })
}

/// Serve one connection until the peer hangs up, a framing error forces
/// a drop, or a shutdown op arrives.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Poll rather than block indefinitely so a raised stop flag can
    // close idle connections instead of waiting for the peer to hang up.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    loop {
        // The poll hook runs on every read-timeout tick — before a frame
        // starts *and between its header and body* — so a shutdown
        // cannot be held off by a peer that stalls mid-frame.
        let frame =
            match read_frame_polled(&mut stream, &mut || !shared.stop.load(Ordering::SeqCst)) {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(ProtocolError::Stopped) => return,
                Err(e) => {
                    // Framing is out of sync (oversized prefix, truncated
                    // payload): answer best-effort, then drop the connection.
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_frame(&mut stream, &encode(&Ack::err(e.to_string())));
                    return;
                }
            };
        let request = match decode::<Request>(&frame) {
            Ok(request) => request,
            Err(e) => {
                // The frame itself was well-formed, so the stream is
                // still in sync: report and keep serving.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if write_frame(&mut stream, &encode(&Ack::err(e.to_string()))).is_err() {
                    return;
                }
                continue;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let op_start = Instant::now();
        let reply = match request {
            Request::Solve(req) => {
                // Gauge covers the whole solve; the guard decrements on
                // every exit path.
                let _inflight = shared.metrics.enter();
                // With the slow ring enabled, a per-request recorder
                // captures the phase profile so an over-threshold solve
                // can say where its time went. With it disabled nothing
                // is installed and spans stay no-ops.
                let recorder = shared.metrics.profiling().then(obs::Recorder::new);
                let resp = {
                    let _obs = recorder.as_ref().map(|r| r.install("server-worker"));
                    shared.solver.solve(&req)
                };
                shared.metrics.record(Op::Solve, resp.elapsed_us);
                if let Some(r) = &recorder {
                    shared.metrics.offer_slow(SlowEntry {
                        id: resp.id,
                        micros: resp.elapsed_us,
                        cache: resp.cache,
                        profile: r.profile(),
                    });
                }
                encode(&resp)
            }
            Request::Stats => {
                let c = shared.solver.cache_counters();
                let reply = encode(&StatsReply {
                    requests: shared.requests.load(Ordering::Relaxed),
                    protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
                    cache_hits: c.hits,
                    cache_misses: c.misses,
                    cache_evictions: c.evictions,
                    cached_states: shared.solver.cached_states() as u64,
                    coalesced_waits: c.coalesced_waits,
                    near_hits: c.near_hits,
                    inflight: shared.metrics.inflight(),
                    uptime_secs: shared.metrics.uptime_secs(),
                    ops: shared.metrics.op_latencies(),
                    slow: shared.metrics.slow_requests(),
                });
                shared.metrics.record(Op::Stats, op_start.elapsed().as_micros() as u64);
                reply
            }
            Request::Ping => {
                shared.metrics.record(Op::Ping, op_start.elapsed().as_micros() as u64);
                encode(&Ack::ok())
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &encode(&Ack::ok()));
                shared.stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(shared.addr);
                return;
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}
