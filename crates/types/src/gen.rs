//! Synthetic workload families.
//!
//! The paper contains no experimental testbed, so the harness evaluates on
//! these families (DESIGN.md §5). Every generator is deterministic in its
//! seed and guarantees `|B_l| <= m`, i.e. the produced instance is feasible.

use crate::instance::{Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Assign `n` jobs to roughly `b` bags uniformly while never letting a bag
/// exceed `m` members. Returns the bag id per job.
fn random_bags(rng: &mut StdRng, n: usize, b: usize, m: usize) -> Vec<u32> {
    assert!(b > 0, "need at least one bag");
    assert!(b * m >= n, "cannot fit {n} jobs into {b} bags capped at {m}");
    let mut counts = vec![0usize; b];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Rejection-sample a non-full bag; fall back to a linear scan if
        // the instance is nearly tight.
        let mut bag = None;
        for _ in 0..16 {
            let cand = rng.random_range(0..b);
            if counts[cand] < m {
                bag = Some(cand);
                break;
            }
        }
        let bag = bag
            .unwrap_or_else(|| counts.iter().position(|&c| c < m).expect("capacity checked above"));
        counts[bag] += 1;
        out.push(bag as u32);
    }
    out
}

/// Uniform sizes in `(0, 1]`, jobs spread over `b` bags.
pub fn uniform(n: usize, m: usize, b: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let bags = random_bags(&mut rng, n, b, m);
    let mut builder = InstanceBuilder::new(m);
    for bag in bags {
        let size: f64 = rng.random_range(0.0..1.0f64).max(1e-3);
        builder.push(size, bag);
    }
    builder.build()
}

/// Bimodal sizes: a `frac_large` fraction of jobs near 1.0, the rest tiny.
/// Stresses the large/small classification and the instance transformation.
pub fn bimodal(n: usize, m: usize, b: usize, frac_large: f64, seed: u64) -> Instance {
    assert!((0.0..=1.0).contains(&frac_large));
    let mut rng = StdRng::seed_from_u64(seed);
    let bags = random_bags(&mut rng, n, b, m);
    let mut builder = InstanceBuilder::new(m);
    for bag in bags {
        let size = if rng.random_range(0.0..1.0f64) < frac_large {
            rng.random_range(0.7..1.0)
        } else {
            rng.random_range(0.01..0.1)
        };
        builder.push(size, bag);
    }
    builder.build()
}

/// Few distinct ("quantized") sizes. Keeps the EPTAS pattern space small,
/// so the paper-faithful exact-MILP path is exercised.
pub fn clustered(n: usize, m: usize, b: usize, distinct: usize, seed: u64) -> Instance {
    assert!(distinct > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<f64> =
        (0..distinct).map(|i| 0.15 + 0.85 * (i as f64 + 0.5) / distinct as f64).collect();
    let bags = random_bags(&mut rng, n, b, m);
    let mut builder = InstanceBuilder::new(m);
    for bag in bags {
        let s = sizes[rng.random_range(0..distinct)];
        builder.push(s, bag);
    }
    builder.build()
}

/// A few near-full bags plus many singletons. Stresses the priority-bag
/// selection and the large-bag rule (`>= eps*m` non-small jobs).
pub fn adversarial_bags(n: usize, m: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = InstanceBuilder::new(m);
    let num_big = (n / (2 * m)).max(1);
    let mut placed = 0usize;
    for bag in 0..num_big {
        let members = m.min(n - placed);
        for _ in 0..members {
            builder.push(rng.random_range(0.2..1.0), bag as u32);
            placed += 1;
        }
        if placed >= n / 2 {
            break;
        }
    }
    let mut next_bag = num_big as u32;
    while placed < n {
        builder.push(rng.random_range(0.01..0.6), next_bag);
        next_bag += 1;
        placed += 1;
    }
    builder.build()
}

/// The paper's Figure-1 gadget, scaled to `m` machines.
///
/// `m` large jobs of size `1/2` in `m` distinct bags, plus `m` "small"
/// bags of `m` jobs of size `1/(2m)` each. The optimum is exactly `1.0`
/// (each machine: one large job plus one job of each small bag). A
/// bag-oblivious placement that stacks two large jobs per machine still
/// has large-job height `<= 1`, but then every small bag is forced to put
/// a job on every machine, driving the makespan to `1.5`.
pub fn fig1_gadget(m: usize) -> Instance {
    assert!(m >= 2, "the gadget needs at least two machines");
    let mut builder = InstanceBuilder::new(m);
    for i in 0..m {
        builder.push(0.5, i as u32);
    }
    let small = 1.0 / (2.0 * m as f64);
    for sb in 0..m {
        for _ in 0..m {
            builder.push(small, (m + sb) as u32);
        }
    }
    builder.build()
}

/// Every bag has exactly `m` jobs: every machine is constrained by every
/// bag. `n` is rounded up to a multiple of `m`.
pub fn tight_bags(n: usize, m: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let bags = n.div_ceil(m);
    let mut builder = InstanceBuilder::new(m);
    for bag in 0..bags {
        for _ in 0..m {
            builder.push(rng.random_range(0.05..1.0), bag as u32);
        }
    }
    builder.build()
}

/// Heavy-tailed (bounded Pareto) sizes: a few huge jobs dominate.
pub fn powerlaw(n: usize, m: usize, b: usize, alpha: f64, seed: u64) -> Instance {
    assert!(alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let bags = random_bags(&mut rng, n, b, m);
    let mut builder = InstanceBuilder::new(m);
    for bag in bags {
        let u: f64 = rng.random_range(0.0..1.0f64).max(1e-12);
        // Bounded Pareto on [0.01, 1].
        let lo: f64 = 0.01;
        let hi: f64 = 1.0;
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        let size = (la / (1.0 - u * (1.0 - la / ha))).powf(1.0 / alpha).min(hi);
        builder.push(size, bag);
    }
    builder.build()
}

/// Identifier for a family, used by the experiment harness CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Uniform,
    Bimodal,
    Clustered,
    AdversarialBags,
    TightBags,
    Powerlaw,
}

impl Family {
    /// All families, for sweeps.
    pub const ALL: [Family; 6] = [
        Family::Uniform,
        Family::Bimodal,
        Family::Clustered,
        Family::AdversarialBags,
        Family::TightBags,
        Family::Powerlaw,
    ];

    /// Human-readable name (also the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Bimodal => "bimodal",
            Family::Clustered => "clustered",
            Family::AdversarialBags => "adversarial",
            Family::TightBags => "tight",
            Family::Powerlaw => "powerlaw",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// Generate an instance of this family with default shape parameters.
    pub fn generate(self, n: usize, m: usize, seed: u64) -> Instance {
        let b = (n / 3).max(1).max(n.div_ceil(m));
        match self {
            Family::Uniform => uniform(n, m, b, seed),
            Family::Bimodal => bimodal(n, m, b, 0.3, seed),
            Family::Clustered => clustered(n, m, b, 5, seed),
            Family::AdversarialBags => adversarial_bags(n, m, seed),
            Family::TightBags => tight_bags(n, m, seed),
            Family::Powerlaw => powerlaw(n, m, b, 1.5, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_instance;

    #[test]
    fn all_families_feasible_and_deterministic() {
        for family in Family::ALL {
            let a = family.generate(60, 5, 42);
            let b = family.generate(60, 5, 42);
            assert_eq!(a, b, "{} not deterministic", family.name());
            validate_instance(&a).unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert!(a.num_jobs() >= 60, "{} produced too few jobs", family.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(40, 4, 10, 1);
        let b = uniform(40, 4, 10, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn fig1_gadget_structure() {
        let m = 4;
        let inst = fig1_gadget(m);
        assert_eq!(inst.num_jobs(), m + m * m);
        assert_eq!(inst.num_bags(), 2 * m);
        validate_instance(&inst).unwrap();
        // Optimal load per machine is exactly 1.
        assert!((inst.total_size() / m as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tight_bags_all_full() {
        let inst = tight_bags(12, 3, 7);
        for (_, members) in inst.bags() {
            assert_eq!(members.len(), 3);
        }
    }

    #[test]
    fn clustered_has_few_distinct_sizes() {
        let inst = clustered(100, 5, 30, 4, 11);
        let mut sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
        sizes.sort_by(f64::total_cmp);
        sizes.dedup();
        assert!(sizes.len() <= 4);
    }

    #[test]
    fn powerlaw_sizes_in_range() {
        let inst = powerlaw(200, 8, 60, 1.2, 3);
        for j in inst.jobs() {
            assert!(j.size >= 0.009 && j.size <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn bag_cap_respected_under_tightness() {
        let mut rng = StdRng::seed_from_u64(0);
        // n = b*m exactly: every bag must be filled to the brim.
        let bags = random_bags(&mut rng, 12, 4, 3);
        let mut counts = [0usize; 4];
        for b in bags {
            counts[b as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn family_parse_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }
}
