//! Observability primitives: hierarchical phase spans, aggregated
//! phase profiles, log2-bucketed latency histograms, and a Chrome
//! trace-event exporter.
//!
//! The design is driven by the workspace's determinism discipline:
//!
//! * **Zero cost when off.** [`Span::enter`] checks one thread-local
//!   `Option` and returns an inert guard when no [`Recorder`] is
//!   installed — a few nanoseconds, no allocation, no clock read. The
//!   solver is instrumented unconditionally; only installing a
//!   recorder turns the instrumentation on.
//! * **Timing is advisory, counts are structural.** A
//!   [`PhaseProfile`] carries per-phase wall times (nondeterministic,
//!   redacted everywhere bytes are compared — see
//!   `bagsched_bench::json::redact_nondeterministic`) *and* per-phase
//!   call counts, which are a function of the algorithm alone and can
//!   be gated as strictly as any other counter.
//! * **Thread-aware.** Contexts do not leak across thread spawns;
//!   the parallel seams ([`bagsched_core::par`], the speculative
//!   guess window) capture an [`ObsHandle`] and install it explicitly
//!   in each worker, so every OS thread gets its own track and its
//!   own span stack. Self-time is per-thread: a span's `self_ns`
//!   excludes child spans opened *on the same thread*; work a child
//!   thread does concurrently is attributed to that thread's spans.
//! * **Cancelled work is visible but quarantined.** Speculative
//!   guesses that lose the race record their spans under a *region*
//!   that is marked discarded after the commit walk. Discarded
//!   regions still appear in the Chrome trace (marked `cancelled`)
//!   but are excluded from [`Recorder::profile`], so profile counts
//!   stay byte-identical at any thread count.
//!
//! Span names are `&'static str` dotted paths (`"pricing.master_lp"`).
//! The taxonomy used by the solver is documented in the README's
//! "Observability" section.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The region id every context starts in; never discarded.
const ROOT_REGION: u64 = 0;

/// One completed span occurrence.
#[derive(Debug, Clone)]
pub struct Event {
    /// Dotted phase name (`"milp.bnb"`).
    pub name: &'static str,
    /// Start offset from the recorder's epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub dur_ns: u64,
    /// Duration minus same-thread child spans, nanoseconds.
    pub self_ns: u64,
    /// Region the span was opened under (see [`Recorder::new_region`]).
    pub region: u64,
}

struct ThreadBuf {
    /// Stable per-recorder track id (1-based registration order).
    tid: u64,
    name: Mutex<String>,
    /// Only the owning thread pushes; readers lock briefly to snapshot.
    events: Mutex<Vec<Event>>,
}

struct Inner {
    epoch: Instant,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    discarded: Mutex<Vec<u64>>,
    next_region: AtomicU64,
}

impl Inner {
    fn register(&self, name: &str) -> Arc<ThreadBuf> {
        let mut threads = self.threads.lock().unwrap();
        let buf = Arc::new(ThreadBuf {
            tid: threads.len() as u64 + 1,
            name: Mutex::new(name.to_string()),
            events: Mutex::new(Vec::new()),
        });
        threads.push(Arc::clone(&buf));
        buf
    }
}

/// A handle to an active recording session. Create one, [`install`]
/// it on the driving thread, and pass [`handle`]s into any threads
/// spawned while it is live.
///
/// [`install`]: Recorder::install
/// [`handle`]: Recorder::handle
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder; its creation instant is the trace epoch.
    pub fn new() -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                threads: Mutex::new(Vec::new()),
                discarded: Mutex::new(Vec::new()),
                next_region: AtomicU64::new(ROOT_REGION + 1),
            }),
        }
    }

    /// Make this recorder current on the calling thread until the
    /// returned guard drops. `thread_name` labels the trace track.
    pub fn install(&self, thread_name: &str) -> ObsGuard {
        self.handle().install(thread_name)
    }

    /// A cloneable token for propagating the recording context into a
    /// spawned thread. Captures the *root* region; use
    /// [`ObsHandle::with_region`] to scope the worker's spans.
    pub fn handle(&self) -> ObsHandle {
        ObsHandle { inner: Arc::clone(&self.inner), region: ROOT_REGION }
    }

    /// Allocate a fresh region id (for work that may later be
    /// discarded wholesale, e.g. one speculative guess).
    pub fn new_region(&self) -> u64 {
        self.inner.next_region.fetch_add(1, Ordering::Relaxed)
    }

    /// Exclude every span recorded under `region` from
    /// [`Recorder::profile`]. The spans stay in the Chrome trace,
    /// marked `cancelled`.
    pub fn discard_region(&self, region: u64) {
        if region != ROOT_REGION {
            self.inner.discarded.lock().unwrap().push(region);
        }
    }

    /// Snapshot the per-track event counts, so a later
    /// [`profile_since`](Recorder::profile_since) covers only events
    /// recorded after this point (plus whole tracks created after it).
    pub fn cursor(&self) -> Cursor {
        let threads = self.inner.threads.lock().unwrap();
        Cursor(threads.iter().map(|b| (b.tid, b.events.lock().unwrap().len())).collect())
    }

    /// Aggregate every non-discarded event into a [`PhaseProfile`].
    pub fn profile(&self) -> PhaseProfile {
        self.profile_since(&Cursor(Vec::new()))
    }

    /// [`profile`](Recorder::profile) restricted to events recorded
    /// after `cursor` was taken.
    pub fn profile_since(&self, cursor: &Cursor) -> PhaseProfile {
        let discarded = self.inner.discarded.lock().unwrap().clone();
        let threads = self.inner.threads.lock().unwrap().clone();
        let mut profile = PhaseProfile::default();
        for buf in threads {
            let skip =
                cursor.0.iter().find(|(tid, _)| *tid == buf.tid).map(|(_, len)| *len).unwrap_or(0);
            let events = buf.events.lock().unwrap();
            for ev in events.iter().skip(skip) {
                if !discarded.contains(&ev.region) {
                    profile.record(ev.name, ev.dur_ns, ev.self_ns);
                }
            }
        }
        profile.sort();
        profile
    }

    /// Render every recorded event (discarded regions included, marked
    /// `"cancelled": true`) as Chrome trace-event JSON — load the file
    /// in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`. One
    /// track per thread that ever installed this recorder.
    pub fn chrome_trace(&self) -> String {
        let discarded = self.inner.discarded.lock().unwrap().clone();
        let threads = self.inner.threads.lock().unwrap().clone();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for buf in &threads {
            let name = buf.name.lock().unwrap().clone();
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    buf.tid,
                    escape_json(&name)
                ),
                &mut first,
            );
        }
        for buf in &threads {
            let events = buf.events.lock().unwrap();
            for ev in events.iter() {
                let cancelled = discarded.contains(&ev.region);
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":1,\"tid\":{},\
                         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"cancelled\":{}}}}}",
                        escape_json(ev.name),
                        buf.tid,
                        ev.start_ns as f64 / 1e3,
                        ev.dur_ns as f64 / 1e3,
                        cancelled
                    ),
                    &mut first,
                );
            }
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Opaque snapshot for [`Recorder::profile_since`].
pub struct Cursor(Vec<(u64, usize)>);

/// Cloneable token carrying the recording context (and a region)
/// across a thread spawn.
#[derive(Clone)]
pub struct ObsHandle {
    inner: Arc<Inner>,
    region: u64,
}

impl ObsHandle {
    /// The same context scoped to `region`: spans recorded by a thread
    /// that installs this handle land in that region.
    pub fn with_region(mut self, region: u64) -> ObsHandle {
        self.region = region;
        self
    }

    /// See [`Recorder::new_region`].
    pub fn new_region(&self) -> u64 {
        self.inner.next_region.fetch_add(1, Ordering::Relaxed)
    }

    /// See [`Recorder::discard_region`].
    pub fn discard_region(&self, region: u64) {
        if region != ROOT_REGION {
            self.inner.discarded.lock().unwrap().push(region);
        }
    }

    /// See [`Recorder::cursor`].
    pub fn cursor(&self) -> Cursor {
        Recorder { inner: Arc::clone(&self.inner) }.cursor()
    }

    /// See [`Recorder::profile_since`].
    pub fn profile_since(&self, cursor: &Cursor) -> PhaseProfile {
        Recorder { inner: Arc::clone(&self.inner) }.profile_since(cursor)
    }

    /// Make the context current on the calling thread until the guard
    /// drops (the previous context, if any, is restored).
    pub fn install(&self, thread_name: &str) -> ObsGuard {
        let buf = self.inner.register(thread_name);
        let prev = CTX.with(|c| {
            c.borrow_mut().replace(Ctx {
                inner: Arc::clone(&self.inner),
                buf,
                stack: Vec::new(),
                region: self.region,
            })
        });
        ObsGuard { prev: Some(prev) }
    }
}

/// Capture the calling thread's current context (with its current
/// region) for propagation into a spawned thread; `None` when no
/// recorder is installed.
pub fn handle() -> Option<ObsHandle> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| ObsHandle { inner: Arc::clone(&ctx.inner), region: ctx.region })
    })
}

/// Whether a recorder is installed on the calling thread.
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Switch the calling thread's current region, returning the previous
/// one (no-op returning the root region, 0, when no recorder is
/// installed). Spans opened after the switch land in `region`.
pub fn set_region(region: u64) -> u64 {
    CTX.with(|c| {
        let mut b = c.borrow_mut();
        match b.as_mut() {
            None => ROOT_REGION,
            Some(ctx) => std::mem::replace(&mut ctx.region, region),
        }
    })
}

struct Frame {
    child_ns: u64,
}

struct Ctx {
    inner: Arc<Inner>,
    buf: Arc<ThreadBuf>,
    stack: Vec<Frame>,
    region: u64,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Uninstalls (or restores) the thread's context on drop.
pub struct ObsGuard {
    prev: Option<Option<Ctx>>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CTX.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// RAII phase timer. `let _s = Span::enter("pricing.master_lp");`
/// times the enclosing scope; nesting is tracked per thread so the
/// aggregated profile can report self-time.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Open a span. Inert (no clock read, no allocation) when no
    /// recorder is installed on this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        let active = CTX.with(|c| {
            let mut b = c.borrow_mut();
            match b.as_mut() {
                None => false,
                Some(ctx) => {
                    ctx.stack.push(Frame { child_ns: 0 });
                    true
                }
            }
        });
        Span { name, start: if active { Some(Instant::now()) } else { None } }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        CTX.with(|c| {
            let mut b = c.borrow_mut();
            let Some(ctx) = b.as_mut() else { return };
            let Some(frame) = ctx.stack.pop() else { return };
            let dur_ns = end.duration_since(start).as_nanos() as u64;
            let self_ns = dur_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = ctx.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let start_ns = start.duration_since(ctx.inner.epoch).as_nanos() as u64;
            ctx.buf.events.lock().unwrap().push(Event {
                name: self.name,
                start_ns,
                dur_ns,
                self_ns,
                region: ctx.region,
            });
        });
    }
}

/// Aggregated timing for one phase name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// Dotted phase name.
    pub name: String,
    /// Number of span occurrences (structural; deterministic for a
    /// fixed configuration and seed).
    pub count: u64,
    /// Summed wall time, nanoseconds (nondeterministic).
    pub total_ns: u64,
    /// Summed self time (minus same-thread children), nanoseconds.
    pub self_ns: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_ns: u64,
}

/// Per-phase aggregate over a recording: one [`PhaseStat`] per
/// distinct span name, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    /// The per-phase rows, sorted by `name`.
    pub phases: Vec<PhaseStat>,
}

impl PhaseProfile {
    fn record(&mut self, name: &str, dur_ns: u64, self_ns: u64) {
        let stat = match self.phases.iter_mut().find(|p| p.name == name) {
            Some(s) => s,
            None => {
                self.phases.push(PhaseStat { name: name.to_string(), ..PhaseStat::default() });
                self.phases.last_mut().unwrap()
            }
        };
        stat.count += 1;
        stat.total_ns += dur_ns;
        stat.self_ns += self_ns;
        stat.max_ns = stat.max_ns.max(dur_ns);
    }

    fn sort(&mut self) {
        self.phases.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The row for `name`, if that phase ever ran.
    pub fn get(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Fold another profile in (counts and times sum, maxes max).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for p in &other.phases {
            let stat = match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(s) => s,
                None => {
                    self.phases.push(PhaseStat { name: p.name.clone(), ..PhaseStat::default() });
                    self.phases.last_mut().unwrap()
                }
            };
            stat.count += p.count;
            stat.total_ns += p.total_ns;
            stat.self_ns += p.self_ns;
            stat.max_ns = stat.max_ns.max(p.max_ns);
        }
        self.sort();
    }

    /// The profile with every wall time zeroed and the structural
    /// counts kept — what determinism gates compare.
    pub fn redacted(&self) -> PhaseProfile {
        PhaseProfile {
            phases: self
                .phases
                .iter()
                .map(|p| PhaseStat {
                    name: p.name.clone(),
                    count: p.count,
                    total_ns: 0,
                    self_ns: 0,
                    max_ns: 0,
                })
                .collect(),
        }
    }
}

/// Number of log2 buckets: bucket 0 holds zero, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`; the top bucket saturates.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-size log2-bucketed histogram of nonnegative integer
/// samples (the daemon records request latencies in microseconds).
///
/// Recording is O(1) and allocation-free; quantiles interpolate
/// linearly inside the winning bucket, so they are exact at bucket
/// boundaries and within a factor of 2 everywhere else — plenty for
/// latency monitoring, and the fixed footprint makes per-op
/// histograms cheap to keep forever.
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: [0; HIST_BUCKETS], total: 0, max: 0 }
    }

    /// The bucket index for `value`: its bit length, capped at the top
    /// bucket.
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated
    /// within the winning bucket and clamped to the exact observed
    /// max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                let hi = if i >= 63 { u64::MAX } else { 1u64 << i };
                let frac = (rank - cum as f64) / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est as u64).min(self.max).max(lo.min(self.max));
            }
            cum = next;
        }
        self.max
    }

    /// `(p50, p99, p999)` in one call.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.99), self.quantile(0.999))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_is_inert_without_recorder() {
        assert!(!active());
        let _s = Span::enter("nothing");
        assert!(handle().is_none());
        // No recorder anywhere: dropping must be a no-op, not a panic.
    }

    #[test]
    fn spans_nest_and_attribute_self_time() {
        let rec = Recorder::new();
        {
            let _g = rec.install("main");
            let _outer = Span::enter("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = Span::enter("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let p = rec.profile();
        let outer = p.get("outer").unwrap();
        let inner = p.get("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        // Self excludes the nested span entirely.
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "outer self {} vs total {} inner {}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        assert_eq!(outer.max_ns, outer.total_ns);
    }

    #[test]
    fn contexts_do_not_cross_thread_spawns_implicitly() {
        let rec = Recorder::new();
        let _g = rec.install("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!active(), "context leaked into a spawned thread");
                let _s = Span::enter("ghost");
            });
        });
        assert!(rec.profile().is_empty());
    }

    #[test]
    fn handles_propagate_into_scoped_threads_with_own_tracks() {
        let rec = Recorder::new();
        let _g = rec.install("main");
        let _outer = Span::enter("outer");
        let h = handle().unwrap();
        std::thread::scope(|s| {
            for i in 0..2 {
                let h = h.clone();
                s.spawn(move || {
                    let _g = h.install(&format!("worker-{i}"));
                    let _s = Span::enter("work");
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        drop(_outer);
        let p = rec.profile();
        assert_eq!(p.get("work").unwrap().count, 2);
        // Cross-thread children do not subtract from the parent's
        // self-time (self-time is per-thread), but both phases exist.
        assert_eq!(p.get("outer").unwrap().count, 1);
        let trace = rec.chrome_trace();
        assert!(trace.contains("worker-0") && trace.contains("worker-1"));
    }

    #[test]
    fn discarded_regions_vanish_from_profile_but_stay_in_trace() {
        let rec = Recorder::new();
        let loser = rec.new_region();
        {
            let _g = rec.handle().with_region(loser).install("speculative");
            let _s = Span::enter("guess");
            let _t = Span::enter("pricing.dfs");
        }
        {
            let _g = rec.install("committed");
            let _s = Span::enter("guess");
        }
        rec.discard_region(loser);
        let p = rec.profile();
        assert_eq!(p.get("guess").unwrap().count, 1, "cancelled guess leaked into the profile");
        assert!(p.get("pricing.dfs").is_none());
        let trace = rec.chrome_trace();
        assert!(trace.contains("pricing.dfs"), "cancelled span missing from the trace");
        assert!(trace.contains("\"cancelled\":true"));
        assert!(trace.contains("\"cancelled\":false"));
    }

    #[test]
    fn cursor_scopes_profiles_to_new_events() {
        let rec = Recorder::new();
        let _g = rec.install("main");
        {
            let _s = Span::enter("before");
        }
        let cur = rec.cursor();
        {
            let _s = Span::enter("after");
        }
        let p = rec.profile_since(&cur);
        assert!(p.get("before").is_none());
        assert_eq!(p.get("after").unwrap().count, 1);
        assert_eq!(rec.profile().phases.len(), 2);
    }

    #[test]
    fn profile_merge_and_redact() {
        let mut a = PhaseProfile::default();
        a.record("x", 10, 5);
        a.record("x", 30, 30);
        let mut b = PhaseProfile::default();
        b.record("x", 100, 100);
        b.record("y", 7, 7);
        a.merge(&b);
        let x = a.get("x").unwrap();
        assert_eq!((x.count, x.total_ns, x.self_ns, x.max_ns), (3, 140, 135, 100));
        assert_eq!(a.get("y").unwrap().count, 1);
        let r = a.redacted();
        assert_eq!(r.get("x").unwrap().count, 3);
        assert_eq!(r.get("x").unwrap().total_ns, 0);
        assert_eq!(r.get("y").unwrap().max_ns, 0);
        // Two profiles differing only in times redact equal.
        let mut c = PhaseProfile::default();
        c.record("x", 1, 1);
        c.record("x", 2, 2);
        c.record("x", 3, 3);
        let mut d = PhaseProfile::default();
        d.record("y", 9, 9);
        c.merge(&d);
        assert_ne!(a, c);
        assert_eq!(a.redacted(), c.redacted());
    }

    #[test]
    fn trace_is_valid_json_shape() {
        let rec = Recorder::new();
        {
            let _g = rec.install("main \"quoted\"");
            let _s = Span::enter("phase");
        }
        let t = rec.chrome_trace();
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.ends_with("]}"));
        assert!(t.contains("\\\"quoted\\\""));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"ph\":\"M\""));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        // Saturation: everything from 2^(HIST_BUCKETS-2) up shares the
        // top bucket.
        assert_eq!(Histogram::bucket_of(1 << (HIST_BUCKETS - 2)), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 100 samples spread uniformly in [64, 128): one bucket.
        for v in 0..100u64 {
            h.record(64 + (v * 64) / 100);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((64..128).contains(&p50), "p50 {p50} outside the bucket");
        assert!((90..=105).contains(&p50), "p50 {p50} should land mid-bucket");
        let p999 = h.quantile(0.999);
        assert!(p999 <= h.max(), "quantile exceeded the observed max");
        assert!(h.quantile(1.0) as f64 >= h.max() as f64 * 0.99);
        // Monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 900, 70_000] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 250_000, 1] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn histogram_top_bucket_saturates() {
        let mut h = Histogram::new();
        let huge = u64::MAX - 5;
        h.record(huge);
        h.record(huge);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), huge);
        // The estimate is clamped to the observed max, never beyond.
        assert!(h.quantile(0.99) <= huge);
        assert!(h.quantile(0.99) >= 1 << (HIST_BUCKETS - 2));
    }

    #[test]
    fn zero_only_histogram() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.999), 0);
        assert_eq!(h.max(), 0);
    }
}
