//! JSON (de)serialization of instances and schedules.
//!
//! Used by the experiment harness to persist workloads and results, and by
//! the examples to show the interchange format. The format is plain
//! `serde_json` over the public types.

use crate::instance::Instance;
use crate::schedule::Schedule;
use std::fs;
use std::io;
use std::path::Path;

/// Serialize an instance to a JSON string.
pub fn instance_to_json(inst: &Instance) -> String {
    serde_json::to_string_pretty(inst).expect("instance serialization cannot fail")
}

/// Deserialize an instance from JSON, rebuilding derived indices.
pub fn instance_from_json(json: &str) -> Result<Instance, serde_json::Error> {
    let mut inst: Instance = serde_json::from_str(json)?;
    inst.rebuild_index();
    Ok(inst)
}

/// Write an instance to a file.
pub fn write_instance(path: &Path, inst: &Instance) -> io::Result<()> {
    fs::write(path, instance_to_json(inst))
}

/// Read an instance from a file.
pub fn read_instance(path: &Path) -> io::Result<Instance> {
    let data = fs::read_to_string(path)?;
    instance_from_json(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serialize a schedule to a JSON string.
pub fn schedule_to_json(sched: &Schedule) -> String {
    serde_json::to_string_pretty(sched).expect("schedule serialization cannot fail")
}

/// Deserialize a schedule from JSON.
pub fn schedule_from_json(json: &str) -> Result<Schedule, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::instance::{BagId, JobId};
    use crate::schedule::MachineId;

    #[test]
    fn instance_roundtrip() {
        let inst = gen::uniform(20, 3, 7, 5);
        let back = instance_from_json(&instance_to_json(&inst)).unwrap();
        assert_eq!(inst, back);
        // Derived index must be rebuilt.
        assert_eq!(inst.bag(BagId(0)), back.bag(BagId(0)));
    }

    #[test]
    fn schedule_roundtrip() {
        let s = Schedule::from_assignment(vec![MachineId(0), MachineId(2), MachineId(1)], 3);
        let back = schedule_from_json(&schedule_to_json(&s)).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.machine_of(JobId(1)), MachineId(2));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bagsched-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        let inst = gen::clustered(15, 4, 5, 3, 9);
        write_instance(&path, &inst).unwrap();
        let back = read_instance(&path).unwrap();
        assert_eq!(inst, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(instance_from_json("{not json").is_err());
        assert!(schedule_from_json("[1,2,3]").is_err());
    }
}
