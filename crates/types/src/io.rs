//! JSON (de)serialization of instances and schedules.
//!
//! Used by the experiment harness to persist workloads and results, and by
//! the examples to show the interchange format. The format is plain
//! `serde_json` over the public types.

use crate::instance::Instance;
use crate::schedule::Schedule;
use std::fs;
use std::io;
use std::path::Path;

/// Serialize an instance to a JSON string.
pub fn instance_to_json(inst: &Instance) -> String {
    serde_json::to_string_pretty(inst).expect("instance serialization cannot fail")
}

/// Deserialize an instance from JSON (derived indices are rebuilt by the
/// `Deserialize` impl itself).
pub fn instance_from_json(json: &str) -> Result<Instance, serde_json::Error> {
    serde_json::from_str(json)
}

/// Write an instance to a file.
pub fn write_instance(path: &Path, inst: &Instance) -> io::Result<()> {
    fs::write(path, instance_to_json(inst))
}

/// Read an instance from a file.
pub fn read_instance(path: &Path) -> io::Result<Instance> {
    let data = fs::read_to_string(path)?;
    instance_from_json(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serialize a schedule to a JSON string.
pub fn schedule_to_json(sched: &Schedule) -> String {
    serde_json::to_string_pretty(sched).expect("schedule serialization cannot fail")
}

/// Deserialize a schedule from JSON.
pub fn schedule_from_json(json: &str) -> Result<Schedule, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::instance::{BagId, JobId};
    use crate::schedule::MachineId;

    #[test]
    fn instance_roundtrip() {
        let inst = gen::uniform(20, 3, 7, 5);
        let back = instance_from_json(&instance_to_json(&inst)).unwrap();
        assert_eq!(inst, back);
        // Derived index must be rebuilt.
        assert_eq!(inst.bag(BagId(0)), back.bag(BagId(0)));
    }

    #[test]
    fn schedule_roundtrip() {
        let s = Schedule::from_assignment(vec![MachineId(0), MachineId(2), MachineId(1)], 3);
        let back = schedule_from_json(&schedule_to_json(&s)).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.machine_of(JobId(1)), MachineId(2));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bagsched-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        let inst = gen::clustered(15, 4, 5, 3, 9);
        write_instance(&path, &inst).unwrap();
        let back = read_instance(&path).unwrap();
        assert_eq!(inst, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(instance_from_json("{not json").is_err());
        assert!(schedule_from_json("[1,2,3]").is_err());
    }

    #[test]
    fn inconsistent_instance_json_rejected() {
        // Bag id out of the declared dense range.
        let bad_bag =
            r#"{"jobs": [{"id": 0, "size": 1.0, "bag": 5}], "machines": 2, "num_bags": 1}"#;
        assert!(instance_from_json(bad_bag).is_err());
        // Job ids must be dense and in position.
        let bad_id =
            r#"{"jobs": [{"id": 3, "size": 1.0, "bag": 0}], "machines": 2, "num_bags": 1}"#;
        assert!(instance_from_json(bad_id).is_err());
        // Sizes must be positive and finite.
        let bad_size =
            r#"{"jobs": [{"id": 0, "size": -1.0, "bag": 0}], "machines": 2, "num_bags": 1}"#;
        assert!(instance_from_json(bad_size).is_err());
        // An inflated num_bags with no jobs to back it must not reach the
        // `rebuild_index` allocation.
        let huge_bags = r#"{"jobs": [], "machines": 1, "num_bags": 1e15}"#;
        assert!(instance_from_json(huge_bags).is_err());
        // Bags must be dense and non-empty, as the builder guarantees.
        let empty_bag = r#"{"jobs": [{"id": 0, "size": 1.0, "bag": 1}, {"id": 1, "size": 1.0, "bag": 1}], "machines": 2, "num_bags": 2}"#;
        assert!(instance_from_json(empty_bag).is_err());
        // Machine counts beyond MachineId range are rejected.
        let huge_machines = r#"{"jobs": [], "machines": 1e15, "num_bags": 0}"#;
        assert!(instance_from_json(huge_machines).is_err());
    }

    #[test]
    fn zero_machine_instance_parses_but_fails_validation() {
        // `machines: 0` is representable (the builder allows it), so the
        // parser accepts it and `validate_instance` is the semantic gate —
        // the same split as for builder-made instances.
        let json = r#"{"jobs": [{"id": 0, "size": 1.0, "bag": 0}], "machines": 0, "num_bags": 1}"#;
        let inst = instance_from_json(json).unwrap();
        assert!(crate::validate::validate_instance(&inst).is_err());
        // And the deserialized value is fully indexed without any extra
        // rebuild step.
        assert_eq!(inst.bag(BagId(0)), &[JobId(0)]);
    }

    #[test]
    fn out_of_range_schedule_json_rejected() {
        assert!(schedule_from_json(r#"{"assignment": [7], "machines": 1}"#).is_err());
        assert!(schedule_from_json(r#"{"assignment": [], "machines": 0}"#).is_err());
        // A huge machine count must error at parse time, not abort in the
        // `loads()` allocation.
        assert!(schedule_from_json(r#"{"assignment": [], "machines": 1e15}"#).is_err());
    }
}
