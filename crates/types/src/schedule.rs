//! Schedules: a total assignment of jobs to machines.

use crate::instance::{Instance, JobId};
use serde::{Deserialize, DeserializeError, Serialize, Value};

/// Index of a machine (`0..m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

impl Serialize for MachineId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for MachineId {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        u32::from_value(v).map(MachineId)
    }
}

impl MachineId {
    /// The machine index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An assignment of every job of an [`Instance`] to a machine.
///
/// A `Schedule` is a plain data object; it does not enforce feasibility by
/// itself. Use [`Schedule::conflicts`] /
/// [`validate_schedule`](crate::validate::validate_schedule) to check the
/// bag-constraints, and [`Schedule::makespan`] for the objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `assignment[j]` is the machine running job `j`.
    assignment: Vec<MachineId>,
    machines: usize,
}

impl Serialize for Schedule {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("assignment".into(), self.assignment.to_value()),
            ("machines".into(), self.machines.to_value()),
        ])
    }
}

impl Deserialize for Schedule {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let assignment: Vec<MachineId> = Vec::from_value(v.field("assignment")?)?;
        let machines = usize::from_value(v.field("machines")?)?;
        // Enforce the `from_assignment` invariants so malformed JSON is an
        // error here instead of a panic later in `loads`/`makespan`.
        if machines == 0 {
            return Err(DeserializeError::new("schedule must have at least one machine"));
        }
        if machines > u32::MAX as usize {
            return Err(DeserializeError::new(format!(
                "machine count {machines} exceeds the representable range"
            )));
        }
        if let Some(mid) = assignment.iter().find(|mid| mid.idx() >= machines) {
            return Err(DeserializeError::new(format!(
                "machine index {} out of range (m={machines})",
                mid.0
            )));
        }
        Ok(Schedule { assignment, machines })
    }
}

impl Schedule {
    /// An empty schedule skeleton: every job provisionally on machine 0.
    /// Useful as a buffer to be filled by an algorithm.
    pub fn unassigned(num_jobs: usize, machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        Schedule { assignment: vec![MachineId(0); num_jobs], machines }
    }

    /// Build from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any machine index is out of range.
    pub fn from_assignment(assignment: Vec<MachineId>, machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        for &mid in &assignment {
            assert!(mid.idx() < machines, "machine index {} out of range (m={})", mid.0, machines);
        }
        Schedule { assignment, machines }
    }

    /// The machine running job `j`.
    #[inline]
    pub fn machine_of(&self, j: JobId) -> MachineId {
        self.assignment[j.idx()]
    }

    /// Assign (or reassign) job `j` to machine `mid`.
    #[inline]
    pub fn assign(&mut self, j: JobId, mid: MachineId) {
        assert!(
            mid.idx() < self.machines,
            "machine index {} out of range (m={})",
            mid.0,
            self.machines
        );
        self.assignment[j.idx()] = mid;
    }

    /// Swap the machines of two jobs.
    pub fn swap(&mut self, a: JobId, b: JobId) {
        self.assignment.swap(a.idx(), b.idx());
    }

    /// Number of machines.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs covered by this schedule.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.assignment.len()
    }

    /// The raw assignment slice (`job -> machine`).
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// Per-machine loads under the sizes of `inst`.
    pub fn loads(&self, inst: &Instance) -> Vec<f64> {
        assert_eq!(inst.num_jobs(), self.assignment.len(), "schedule/instance job count mismatch");
        let mut loads = vec![0.0; self.machines];
        for (j, &mid) in self.assignment.iter().enumerate() {
            loads[mid.idx()] += inst.size(JobId(j as u32));
        }
        loads
    }

    /// The makespan (maximum machine load; 0 for an empty instance).
    pub fn makespan(&self, inst: &Instance) -> f64 {
        self.loads(inst).into_iter().fold(0.0, f64::max)
    }

    /// The jobs assigned to each machine.
    pub fn machine_jobs(&self, inst: &Instance) -> Vec<Vec<JobId>> {
        assert_eq!(inst.num_jobs(), self.assignment.len(), "schedule/instance job count mismatch");
        let mut per = vec![Vec::new(); self.machines];
        for (j, &mid) in self.assignment.iter().enumerate() {
            per[mid.idx()].push(JobId(j as u32));
        }
        per
    }

    /// All bag-constraint violations: pairs of same-bag jobs sharing a
    /// machine. Each offending pair is reported once.
    pub fn conflicts(&self, inst: &Instance) -> Vec<(JobId, JobId)> {
        let mut out = Vec::new();
        // seen[machine][bag] -> first job of that bag on that machine
        let mut seen = vec![vec![None; inst.num_bags()]; self.machines];
        for (j, &mid) in self.assignment.iter().enumerate() {
            let job = JobId(j as u32);
            let bag = inst.bag_of(job).idx();
            match seen[mid.idx()][bag] {
                Some(first) => out.push((first, job)),
                None => seen[mid.idx()][bag] = Some(job),
            }
        }
        out
    }

    /// Whether the schedule satisfies every bag-constraint.
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        let mut seen = vec![vec![false; inst.num_bags()]; self.machines];
        for (j, &mid) in self.assignment.iter().enumerate() {
            let bag = inst.bag_of(JobId(j as u32)).idx();
            if seen[mid.idx()][bag] {
                return false;
            }
            seen[mid.idx()][bag] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn tiny() -> Instance {
        // bags: {0,1} in bag 0, {2} in bag 1
        Instance::new(&[(1.0, 0), (2.0, 0), (3.0, 1)], 2)
    }

    #[test]
    fn loads_and_makespan() {
        let inst = tiny();
        let s = Schedule::from_assignment(vec![MachineId(0), MachineId(1), MachineId(0)], 2);
        assert_eq!(s.loads(&inst), vec![4.0, 2.0]);
        assert_eq!(s.makespan(&inst), 4.0);
    }

    #[test]
    fn detects_conflicts() {
        let inst = tiny();
        let bad = Schedule::from_assignment(vec![MachineId(0), MachineId(0), MachineId(1)], 2);
        assert!(!bad.is_feasible(&inst));
        assert_eq!(bad.conflicts(&inst), vec![(JobId(0), JobId(1))]);

        let good = Schedule::from_assignment(vec![MachineId(0), MachineId(1), MachineId(0)], 2);
        assert!(good.is_feasible(&inst));
        assert!(good.conflicts(&inst).is_empty());
    }

    #[test]
    fn triple_conflict_reports_two_pairs() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0), (1.0, 0)], 2);
        let s = Schedule::from_assignment(vec![MachineId(1); 3], 2);
        assert_eq!(s.conflicts(&inst).len(), 2);
    }

    #[test]
    fn swap_and_assign() {
        let inst = tiny();
        let mut s = Schedule::from_assignment(vec![MachineId(0), MachineId(1), MachineId(0)], 2);
        s.swap(JobId(0), JobId(1));
        assert_eq!(s.machine_of(JobId(0)), MachineId(1));
        s.assign(JobId(2), MachineId(1));
        assert_eq!(s.loads(&inst), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_machine() {
        Schedule::from_assignment(vec![MachineId(3)], 2);
    }

    #[test]
    fn machine_jobs_partition() {
        let inst = tiny();
        let s = Schedule::from_assignment(vec![MachineId(0), MachineId(1), MachineId(0)], 2);
        let per = s.machine_jobs(&inst);
        assert_eq!(per[0], vec![JobId(0), JobId(2)]);
        assert_eq!(per[1], vec![JobId(1)]);
    }

    #[test]
    fn empty_schedule_feasible() {
        let inst = crate::instance::InstanceBuilder::new(2).build();
        let s = Schedule::unassigned(0, 2);
        assert!(s.is_feasible(&inst));
        assert_eq!(s.makespan(&inst), 0.0);
    }
}
