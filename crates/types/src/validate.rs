//! Feasibility validation for instances and schedules.
//!
//! Every scheduler in the workspace funnels its output through
//! [`validate_schedule`] in tests, so the notion of feasibility is defined
//! in exactly one place.

use crate::instance::{BagId, Instance, JobId};
use crate::schedule::Schedule;
use std::fmt;

/// Why an instance admits no feasible schedule at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// Some bag has more jobs than there are machines; since each of its
    /// jobs needs a distinct machine, no feasible schedule exists.
    BagLargerThanMachines { bag: BagId, bag_size: usize, machines: usize },
    /// The instance has no machines but at least one job.
    NoMachines,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::BagLargerThanMachines { bag, bag_size, machines } => write!(
                f,
                "bag {} has {} jobs but only {} machines exist; bag-constraints are unsatisfiable",
                bag.0, bag_size, machines
            ),
            InstanceError::NoMachines => write!(f, "instance has jobs but zero machines"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// Why a schedule is not a feasible solution for an instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Job counts of schedule and instance differ.
    JobCountMismatch { schedule: usize, instance: usize },
    /// Machine counts of schedule and instance differ.
    MachineCountMismatch { schedule: usize, instance: usize },
    /// Two jobs of one bag share a machine.
    Conflict { a: JobId, b: JobId, bag: BagId },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::JobCountMismatch { schedule, instance } => {
                write!(f, "schedule covers {schedule} jobs, instance has {instance}")
            }
            ScheduleError::MachineCountMismatch { schedule, instance } => {
                write!(f, "schedule uses {schedule} machines, instance has {instance}")
            }
            ScheduleError::Conflict { a, b, bag } => {
                write!(f, "jobs {} and {} of bag {} share a machine", a.0, b.0, bag.0)
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Check that an instance admits *some* feasible schedule.
pub fn validate_instance(inst: &Instance) -> Result<(), InstanceError> {
    if inst.num_machines() == 0 && inst.num_jobs() > 0 {
        return Err(InstanceError::NoMachines);
    }
    for (bag, members) in inst.bags() {
        if members.len() > inst.num_machines() {
            return Err(InstanceError::BagLargerThanMachines {
                bag,
                bag_size: members.len(),
                machines: inst.num_machines(),
            });
        }
    }
    Ok(())
}

/// Check that `sched` is a feasible solution of `inst`.
pub fn validate_schedule(inst: &Instance, sched: &Schedule) -> Result<(), ScheduleError> {
    if sched.num_jobs() != inst.num_jobs() {
        return Err(ScheduleError::JobCountMismatch {
            schedule: sched.num_jobs(),
            instance: inst.num_jobs(),
        });
    }
    if sched.num_machines() != inst.num_machines() {
        return Err(ScheduleError::MachineCountMismatch {
            schedule: sched.num_machines(),
            instance: inst.num_machines(),
        });
    }
    if let Some(&(a, b)) = sched.conflicts(inst).first() {
        return Err(ScheduleError::Conflict { a, b, bag: inst.bag_of(a) });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::MachineId;

    #[test]
    fn instance_with_oversized_bag_rejected() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0), (1.0, 0)], 2);
        match validate_instance(&inst) {
            Err(InstanceError::BagLargerThanMachines { bag_size: 3, machines: 2, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn instance_zero_machines_rejected() {
        let inst = Instance::new(&[(1.0, 0)], 0);
        assert_eq!(validate_instance(&inst), Err(InstanceError::NoMachines));
    }

    #[test]
    fn feasible_instance_ok() {
        let inst = Instance::new(&[(1.0, 0), (1.0, 0)], 2);
        assert!(validate_instance(&inst).is_ok());
    }

    #[test]
    fn schedule_conflict_reported_with_bag() {
        let inst = Instance::new(&[(1.0, 5), (1.0, 5)], 2);
        let s = Schedule::from_assignment(vec![MachineId(0), MachineId(0)], 2);
        match validate_schedule(&inst, &s) {
            Err(ScheduleError::Conflict { a: JobId(0), b: JobId(1), .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn schedule_shape_mismatches() {
        let inst = Instance::new(&[(1.0, 0)], 2);
        let s = Schedule::from_assignment(vec![MachineId(0), MachineId(0)], 2);
        assert!(matches!(
            validate_schedule(&inst, &s),
            Err(ScheduleError::JobCountMismatch { .. })
        ));
        let s = Schedule::from_assignment(vec![MachineId(0)], 3);
        assert!(matches!(
            validate_schedule(&inst, &s),
            Err(ScheduleError::MachineCountMismatch { .. })
        ));
    }

    #[test]
    fn error_display_strings() {
        let e = InstanceError::BagLargerThanMachines { bag: BagId(1), bag_size: 3, machines: 2 };
        assert!(e.to_string().contains("bag 1"));
        let e = ScheduleError::Conflict { a: JobId(0), b: JobId(1), bag: BagId(2) };
        assert!(e.to_string().contains("bag 2"));
    }
}
