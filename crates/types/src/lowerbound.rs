//! Certified makespan lower bounds.
//!
//! Where the exact optimum is out of reach (large `n`), approximation
//! ratios in the experiment harness are measured against
//! [`LowerBounds::combined`]; every component is a valid lower bound on the
//! optimal makespan of the bag-constrained problem, so the reported ratios
//! are conservative (an upper bound on the true ratio).

use crate::instance::Instance;

/// The individual lower bounds computed by [`lower_bounds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBounds {
    /// Largest processing time: some machine runs the largest job.
    pub max_job: f64,
    /// Average load `total / m`: some machine carries at least the average.
    pub area: f64,
    /// Counting bound: among the `t*m + 1` largest jobs, some machine holds
    /// `t + 1` of them, so it carries at least the sum of the `t + 1`
    /// smallest of those. Maximized over `t >= 1`.
    pub packing: f64,
    /// Bag bound: a bag with exactly `m` jobs places one job on *every*
    /// machine, so every machine load is at least the sum over such "full"
    /// bags of their smallest job.
    pub full_bags: f64,
}

impl LowerBounds {
    /// The strongest certified bound (maximum of all components).
    pub fn combined(&self) -> f64 {
        self.max_job.max(self.area).max(self.packing).max(self.full_bags)
    }
}

/// Compute all lower bounds for `inst`.
pub fn lower_bounds(inst: &Instance) -> LowerBounds {
    let m = inst.num_machines();
    if m == 0 || inst.num_jobs() == 0 {
        return LowerBounds { max_job: 0.0, area: 0.0, packing: 0.0, full_bags: 0.0 };
    }

    let max_job = inst.max_size();
    let area = inst.total_size() / m as f64;

    // Sort sizes descending once for the packing bound.
    let mut sizes: Vec<f64> = inst.jobs().iter().map(|j| j.size).collect();
    sizes.sort_by(|a, b| b.total_cmp(a));
    let n = sizes.len();
    let mut packing = 0.0f64;
    let mut t = 1usize;
    while t * m < n {
        // The t*m + 1 largest are sizes[0..=t*m]; the t+1 smallest of those
        // are sizes[(t-1)*m .. =t*m] ... more precisely the last t+1 entries
        // of the prefix, i.e. indices (t*m - t)..=(t*m).
        let lo = t * m - t;
        let bound: f64 = sizes[lo..=t * m].iter().sum();
        packing = packing.max(bound);
        t += 1;
    }

    let mut full_bags = 0.0;
    for (_, members) in inst.bags() {
        if members.len() == m {
            let min = members.iter().map(|&j| inst.size(j)).fold(f64::INFINITY, f64::min);
            full_bags += min;
        }
    }

    LowerBounds { max_job, area, packing, full_bags }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_area() {
        let inst = Instance::new(&[(3.0, 0), (1.0, 1), (2.0, 2)], 2);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.max_job, 3.0);
        assert_eq!(lb.area, 3.0);
        assert_eq!(lb.combined(), 3.0);
    }

    #[test]
    fn packing_bound_beats_area() {
        // Three jobs of size 1 on two machines: some machine holds two.
        let inst = Instance::new(&[(1.0, 0), (1.0, 1), (1.0, 2)], 2);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.packing, 2.0);
        assert!(lb.combined() >= 2.0);
        // area bound alone would give only 1.5
        assert_eq!(lb.area, 1.5);
    }

    #[test]
    fn full_bag_bound() {
        // Two full bags of size m=2: every machine holds one job of each.
        let inst = Instance::new(&[(2.0, 0), (3.0, 0), (1.0, 1), (5.0, 1)], 2);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.full_bags, 2.0 + 1.0);
        // combined must dominate it
        assert!(lb.combined() >= 3.0);
    }

    #[test]
    fn empty_instance_zero() {
        let inst = crate::instance::InstanceBuilder::new(3).build();
        assert_eq!(lower_bounds(&inst).combined(), 0.0);
    }

    #[test]
    fn single_machine_area_is_total() {
        let inst = Instance::new(&[(1.0, 0), (2.0, 1), (3.0, 2)], 1);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.area, 6.0);
        assert_eq!(lb.combined(), 6.0);
    }

    #[test]
    fn bounds_never_exceed_trivial_schedule() {
        // All jobs on distinct machines where possible; LB must be <= n * max.
        let inst = Instance::new(&[(1.5, 0), (0.5, 1), (2.5, 2), (0.1, 3)], 4);
        let lb = lower_bounds(&inst);
        assert!(lb.combined() <= inst.total_size());
        assert!(lb.combined() >= inst.max_size());
    }
}
