//! Wire protocol types for the scheduling server.
//!
//! A [`SolveRequest`] carries one instance plus the approximation
//! parameter; a [`SolveResponse`] carries the schedule (as a dense
//! machine-assignment vector) plus cache/latency telemetry. Both travel
//! as JSON values through the vendored `serde_json`, which — together
//! with the validating [`Instance`] deserializer — is what makes the
//! protocol safe against hostile input: malformed frames become
//! `DeserializeError`s, never panics.
//!
//! [`fingerprint`] is the cache key: a 64-bit FNV-1a hash over the
//! *shape* of an instance (machine count, epsilon, and the multiset of
//! per-bag size profiles, with sizes quantized relative to the largest
//! job). Two instances that differ only by job or bag numbering — the
//! common case for repeat traffic — collide on purpose; the cache layer
//! re-validates on replay, so a collision costs a fallback, never a
//! wrong schedule.

use crate::instance::Instance;
use serde::{Deserialize, DeserializeError, Serialize, Value};

/// One solve request: an instance and the approximation parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Approximation parameter `eps` in `(0, 0.95]`.
    pub epsilon: f64,
    /// Optional portfolio deadline in milliseconds: the solver races the
    /// EPTAS against bag-aware LPT and answers with whichever arm holds
    /// the better schedule when the clock fires. Absent on the wire
    /// means no deadline (old clients keep working unchanged).
    pub deadline_ms: Option<u64>,
    /// The instance to schedule.
    pub instance: Instance,
}

/// The server's answer to one [`SolveRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Whether solving succeeded; on `false` only `error` is meaningful.
    pub ok: bool,
    /// Human-readable failure reason when `ok` is `false`.
    pub error: Option<String>,
    /// Makespan of the returned schedule (0 when `ok` is `false`).
    pub makespan: f64,
    /// Machine index for each job, indexed by dense job id (empty when
    /// `ok` is `false`).
    pub assignment: Vec<u32>,
    /// Whether this solve replayed cached solver state.
    pub cache_hit: bool,
    /// Server-side solve latency in microseconds.
    pub micros: u64,
    /// How the solver-state cache served this request: a full replay
    /// (`Hit`), a similarity-tier guess hint (`Near`), or a cold solve
    /// (`Miss`). Refines [`cache_hit`](SolveResponse::cache_hit),
    /// which stays for wire compatibility.
    pub cache: CacheTag,
    /// Wall time the server spent on this request end to end (parse,
    /// solve, schedule extraction), microseconds. Clients cross-check
    /// their own latency against this to expose queueing/transport
    /// overhead (see `bagsched-bencher`).
    pub elapsed_us: u64,
}

/// The cache outcome tag carried on every [`SolveResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheTag {
    /// Structurally identical state was replayed.
    Hit,
    /// A similar shape's winning guess seeded the search.
    Near,
    /// Cold solve.
    #[default]
    Miss,
}

impl CacheTag {
    /// The wire spelling (`"hit"` / `"near"` / `"miss"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTag::Hit => "hit",
            CacheTag::Near => "near",
            CacheTag::Miss => "miss",
        }
    }
}

impl Serialize for SolveRequest {
    fn to_value(&self) -> Value {
        let mut fields =
            vec![("id".into(), self.id.to_value()), ("epsilon".into(), self.epsilon.to_value())];
        // Emitted only when set, so requests from new clients without a
        // deadline stay byte-compatible with old servers.
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), ms.to_value()));
        }
        fields.push(("instance".into(), self.instance.to_value()));
        Value::Obj(fields)
    }
}

impl Deserialize for SolveRequest {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let epsilon = f64::from_value(v.field("epsilon")?)?;
        // The driver validates epsilon again, but rejecting junk at the
        // wire keeps garbage requests out of the worker pool entirely.
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(DeserializeError::new(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        // Tolerant: requests predating the portfolio option simply lack
        // the field; `null` is accepted as "no deadline" too.
        let deadline_ms = match v.field("deadline_ms") {
            Ok(val) => Option::<u64>::from_value(val)?,
            Err(_) => None,
        };
        Ok(SolveRequest {
            id: u64::from_value(v.field("id")?)?,
            epsilon,
            deadline_ms,
            instance: Instance::from_value(v.field("instance")?)?,
        })
    }
}

impl Serialize for SolveResponse {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), self.id.to_value()),
            ("ok".into(), self.ok.to_value()),
            ("error".into(), self.error.to_value()),
            ("makespan".into(), self.makespan.to_value()),
            ("assignment".into(), self.assignment.to_value()),
            ("cache_hit".into(), self.cache_hit.to_value()),
            ("micros".into(), self.micros.to_value()),
            ("cache".into(), self.cache.as_str().to_string().to_value()),
            ("elapsed_us".into(), self.elapsed_us.to_value()),
        ])
    }
}

impl Deserialize for SolveResponse {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let cache_hit = bool::from_value(v.field("cache_hit")?)?;
        let micros = u64::from_value(v.field("micros")?)?;
        // Tolerant: responses from servers predating the observability
        // fields lack `cache`/`elapsed_us`; derive the tag from the
        // boolean and fall back to the solve latency.
        let cache = match v.field("cache") {
            Ok(val) => match String::from_value(val)?.as_str() {
                "hit" => CacheTag::Hit,
                "near" => CacheTag::Near,
                "miss" => CacheTag::Miss,
                other => {
                    return Err(DeserializeError::new(format!(
                        "cache tag must be hit|near|miss, got {other:?}"
                    )));
                }
            },
            Err(_) => {
                if cache_hit {
                    CacheTag::Hit
                } else {
                    CacheTag::Miss
                }
            }
        };
        let elapsed_us = match v.field("elapsed_us") {
            Ok(val) => u64::from_value(val)?,
            Err(_) => micros,
        };
        Ok(SolveResponse {
            id: u64::from_value(v.field("id")?)?,
            ok: bool::from_value(v.field("ok")?)?,
            error: Option::<String>::from_value(v.field("error")?)?,
            makespan: f64::from_value(v.field("makespan")?)?,
            assignment: Vec::<u32>::from_value(v.field("assignment")?)?,
            cache_hit,
            micros,
            cache,
            elapsed_us,
        })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }
}

/// Quantization grid for relative sizes: ~9 significant decimal digits,
/// far finer than any rounding step of the EPTAS, so instances the
/// algorithm would treat differently never share a fingerprint, while
/// float noise below 1e-9 of the largest job does.
const QUANTUM: f64 = 1e9;

/// 64-bit FNV-1a fingerprint of an instance's cache-relevant shape.
///
/// Invariant under job reordering within a bag and under bag renumbering
/// (profiles are hashed as a sorted multiset), and under uniform scaling
/// of all processing times (sizes are quantized relative to the largest
/// job). Sensitive to machine count, epsilon, and any per-bag size-mix
/// change above one part in 10^9.
pub fn fingerprint(inst: &Instance, epsilon: f64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(inst.num_machines() as u64);
    h.write_u64(epsilon.to_bits());
    h.write_u64(inst.num_jobs() as u64);
    h.write_u64(inst.num_bags() as u64);
    let max = inst.max_size();
    let scale = if max > 0.0 { QUANTUM / max } else { 0.0 };
    let mut profiles: Vec<Vec<u64>> = inst
        .bags()
        .map(|(_, members)| {
            let mut profile: Vec<u64> =
                members.iter().map(|&j| (inst.size(j) * scale).round() as u64).collect();
            profile.sort_unstable();
            profile
        })
        .collect();
    profiles.sort_unstable();
    for profile in &profiles {
        // Length delimiter keeps [a | b,c] distinct from [a,b | c].
        h.write_u64(profile.len() as u64);
        for &q in profile {
            h.write_u64(q);
        }
    }
    h.0
}

/// Quantization grid of the *coarse* fingerprint: ~2 significant decimal
/// digits. Sizes within ~1% of each other (relative to the largest job)
/// land on the same coarse step.
const COARSE_QUANTUM: f64 = 1e2;

/// 64-bit FNV-1a fingerprint of an instance's *similarity* shape — the
/// key of the cache's near tier.
///
/// Deliberately blunter than [`fingerprint`]: sizes are quantized to
/// ~1% of the largest job, per-bag profiles collapse to (coarse size →
/// geometric count bucket) maps (ratio-2 buckets, so ±1 job among
/// several of a size keeps the print), and the total job count is not
/// hashed at all. Two instances that the exact key separates — a few
/// jobs added, sizes jittered below a percent — collide here on
/// purpose: a near entry only seeds the guess search's first probe, so
/// a wrong neighbour costs probes, never correctness. Machine count,
/// epsilon and bag count stay exact — those change the answer too much
/// for a hint to help.
pub fn coarse_fingerprint(inst: &Instance, epsilon: f64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(inst.num_machines() as u64);
    h.write_u64(epsilon.to_bits());
    h.write_u64(inst.num_bags() as u64);
    let max = inst.max_size();
    let scale = if max > 0.0 { COARSE_QUANTUM / max } else { 0.0 };
    let mut profiles: Vec<Vec<(u64, u32)>> = inst
        .bags()
        .map(|(_, members)| {
            let mut counts: std::collections::BTreeMap<u64, u32> =
                std::collections::BTreeMap::new();
            for &j in members {
                *counts.entry((inst.size(j) * scale).round() as u64).or_insert(0) += 1;
            }
            // Ratio-2 geometric count buckets: bucket = bit length of
            // the count, so 2..=3, 4..=7, ... collapse together.
            counts.into_iter().map(|(q, c)| (q, 32 - c.leading_zeros())).collect()
        })
        .collect();
    profiles.sort_unstable();
    for profile in &profiles {
        h.write_u64(profile.len() as u64);
        for &(q, bucket) in profile {
            h.write_u64(q);
            h.write_u64(bucket as u64);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(&[(4.0, 0), (2.0, 0), (3.0, 1), (1.0, 2)], 3)
    }

    #[test]
    fn request_roundtrips() {
        let req = SolveRequest { id: 17, epsilon: 0.25, deadline_ms: None, instance: inst() };
        let v = req.to_value();
        let back = SolveRequest::from_value(&v).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrips() {
        let resp = SolveResponse {
            id: 17,
            ok: true,
            error: None,
            makespan: 4.5,
            assignment: vec![0, 1, 2, 0],
            cache_hit: true,
            micros: 1234,
            cache: CacheTag::Hit,
            elapsed_us: 1234,
        };
        let v = resp.to_value();
        assert_eq!(SolveResponse::from_value(&v).unwrap(), resp);
        let err = SolveResponse {
            id: 18,
            ok: false,
            error: Some("epsilon out of range".into()),
            makespan: 0.0,
            assignment: Vec::new(),
            cache_hit: false,
            micros: 7,
            cache: CacheTag::Miss,
            elapsed_us: 7,
        };
        assert_eq!(SolveResponse::from_value(&err.to_value()).unwrap(), err);
    }

    #[test]
    fn old_responses_without_cache_tag_still_parse() {
        // A response serialized before `cache`/`elapsed_us` existed
        // parses with the tag derived from `cache_hit` and the elapsed
        // time falling back to `micros`.
        let old = Value::Obj(vec![
            ("id".into(), 9u64.to_value()),
            ("ok".into(), Value::Bool(true)),
            ("error".into(), Option::<String>::None.to_value()),
            ("makespan".into(), 3.5f64.to_value()),
            ("assignment".into(), Value::Arr(vec![0u64.to_value(), 1u64.to_value()])),
            ("cache_hit".into(), Value::Bool(true)),
            ("micros".into(), 42u64.to_value()),
        ]);
        let back = SolveResponse::from_value(&old).unwrap();
        assert_eq!(back.cache, CacheTag::Hit);
        assert_eq!(back.elapsed_us, 42);
    }

    #[test]
    fn near_cache_tag_roundtrips() {
        let resp = SolveResponse {
            id: 21,
            ok: true,
            error: None,
            makespan: 2.0,
            assignment: vec![0, 0],
            cache_hit: false,
            micros: 900,
            cache: CacheTag::Near,
            elapsed_us: 901,
        };
        let back = SolveResponse::from_value(&resp.to_value()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.cache.as_str(), "near");
    }

    #[test]
    fn request_deadline_roundtrips_and_old_requests_still_parse() {
        let req = SolveRequest { id: 3, epsilon: 0.25, deadline_ms: Some(150), instance: inst() };
        assert_eq!(SolveRequest::from_value(&req.to_value()).unwrap(), req);
        // A request serialized before the field existed parses as "no
        // deadline" — the wire stays backward compatible.
        let old = Value::Obj(vec![
            ("id".into(), 4u64.to_value()),
            ("epsilon".into(), 0.5f64.to_value()),
            ("instance".into(), inst().to_value()),
        ]);
        assert_eq!(SolveRequest::from_value(&old).unwrap().deadline_ms, None);
    }

    #[test]
    fn request_rejects_bad_epsilon() {
        let req = SolveRequest { id: 1, epsilon: 0.1, deadline_ms: None, instance: inst() };
        let mut v = req.to_value();
        if let Value::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "epsilon" {
                    *val = Value::Num(-1.0);
                }
            }
        }
        assert!(SolveRequest::from_value(&v).is_err());
    }

    #[test]
    fn request_rejects_missing_field() {
        let v = Value::Obj(vec![("id".into(), 1u64.to_value())]);
        assert!(SolveRequest::from_value(&v).is_err());
    }

    #[test]
    fn fingerprint_ignores_job_and_bag_order() {
        let a = Instance::new(&[(4.0, 0), (2.0, 0), (3.0, 1), (1.0, 2)], 3);
        // Same bags, jobs listed in a different order and bags renumbered.
        let b = Instance::new(&[(1.0, 9), (3.0, 5), (2.0, 7), (4.0, 7)], 3);
        assert_eq!(fingerprint(&a, 0.2), fingerprint(&b, 0.2));
    }

    #[test]
    fn fingerprint_ignores_uniform_scaling() {
        let a = inst();
        let b = a.scaled(3.5);
        assert_eq!(fingerprint(&a, 0.2), fingerprint(&b, 0.2));
    }

    #[test]
    fn fingerprint_distinguishes_shape_changes() {
        let base = fingerprint(&inst(), 0.2);
        assert_ne!(base, fingerprint(&inst(), 0.3), "epsilon must key the cache");
        assert_ne!(base, fingerprint(&inst().with_machines(4), 0.2));
        let moved = Instance::new(&[(4.0, 0), (2.0, 1), (3.0, 1), (1.0, 2)], 3);
        assert_ne!(base, fingerprint(&moved, 0.2), "bag membership is part of the shape");
        let resized = Instance::new(&[(4.0, 0), (2.5, 0), (3.0, 1), (1.0, 2)], 3);
        assert_ne!(base, fingerprint(&resized, 0.2));
    }

    #[test]
    fn coarse_fingerprint_survives_job_count_drift() {
        // One more 2.0-job in a bag that already holds two: the exact
        // key separates them, the coarse key (ratio-2 count buckets, no
        // total job count) does not.
        let a = Instance::new(&[(4.0, 0), (2.0, 0), (2.0, 0), (3.0, 1), (1.0, 2)], 3);
        let b = Instance::new(&[(4.0, 0), (2.0, 0), (2.0, 0), (2.0, 0), (3.0, 1), (1.0, 2)], 3);
        assert_ne!(fingerprint(&a, 0.2), fingerprint(&b, 0.2));
        assert_eq!(coarse_fingerprint(&a, 0.2), coarse_fingerprint(&b, 0.2));
    }

    #[test]
    fn coarse_fingerprint_survives_sub_percent_size_jitter() {
        let a = inst();
        let jittered = Instance::new(&[(4.0, 0), (2.003, 0), (3.0, 1), (1.0, 2)], 3);
        assert_ne!(fingerprint(&a, 0.2), fingerprint(&jittered, 0.2));
        assert_eq!(coarse_fingerprint(&a, 0.2), coarse_fingerprint(&jittered, 0.2));
    }

    #[test]
    fn coarse_fingerprint_keeps_hard_shape_exact() {
        let base = coarse_fingerprint(&inst(), 0.2);
        assert_ne!(base, coarse_fingerprint(&inst(), 0.3), "epsilon stays exact");
        assert_ne!(base, coarse_fingerprint(&inst().with_machines(4), 0.2));
        let rebagged = Instance::new(&[(4.0, 0), (2.0, 1), (3.0, 1), (1.0, 2)], 3);
        assert_ne!(base, coarse_fingerprint(&rebagged, 0.2), "bag structure stays exact");
    }

    #[test]
    fn coarse_fingerprint_ignores_job_and_bag_order() {
        let a = Instance::new(&[(4.0, 0), (2.0, 0), (3.0, 1), (1.0, 2)], 3);
        let b = Instance::new(&[(1.0, 9), (3.0, 5), (2.0, 7), (4.0, 7)], 3);
        assert_eq!(coarse_fingerprint(&a, 0.2), coarse_fingerprint(&b, 0.2));
    }

    #[test]
    fn fingerprint_of_empty_instance_is_stable() {
        let a = crate::InstanceBuilder::new(2).build();
        let b = crate::InstanceBuilder::new(2).build();
        assert_eq!(fingerprint(&a, 0.2), fingerprint(&b, 0.2));
    }
}
