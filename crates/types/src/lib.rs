//! Core data model for machine scheduling with bag-constraints.
//!
//! The problem (Das & Wiese, ESA 2017; Grage, Jansen & Klein, SPAA 2019):
//! `n` jobs with processing times `p_j > 0` must be assigned to `m`
//! identical machines. The job set is partitioned into *bags*
//! `B_1, ..., B_b`; a schedule is feasible only if every machine runs **at
//! most one job from each bag**. The objective is to minimize the makespan
//! (the maximum machine load).
//!
//! This crate provides:
//!
//! * [`Instance`] / [`Job`] / [`Schedule`] — the shared problem and
//!   solution model, with O(1) structural queries (bag membership, loads),
//! * [`validate`] — feasibility checking shared by every algorithm and by
//!   the test suites,
//! * [`lowerbound`] — certified makespan lower bounds used to measure
//!   approximation ratios where the exact optimum is out of reach,
//! * [`gen`] — the synthetic workload families used by the experiment
//!   harness (the paper has no testbed; see DESIGN.md §5),
//! * [`io`] — JSON (de)serialization of instances and schedules,
//! * [`wire`] — solve request/response wire types and the rounded-shape
//!   instance fingerprint used as the server's solver-state cache key,
//! * [`obs`] — observability primitives (phase spans, phase profiles,
//!   latency histograms, Chrome-trace export) shared by the solver
//!   crates, the bench harness and the daemon.

pub mod gen;
pub mod instance;
pub mod io;
pub mod lowerbound;
pub mod obs;
pub mod schedule;
pub mod validate;
pub mod wire;

pub use instance::{BagId, Instance, InstanceBuilder, Job, JobId};
pub use schedule::{MachineId, Schedule};
pub use validate::{validate_instance, validate_schedule, InstanceError, ScheduleError};
pub use wire::{coarse_fingerprint, fingerprint, CacheTag, SolveRequest, SolveResponse};

/// Absolute tolerance for floating point comparisons of processing times
/// and loads throughout the workspace.
pub const EPS: f64 = 1e-9;

/// `a <= b` up to [`EPS`].
#[inline]
pub fn le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b` up to [`EPS`].
#[inline]
pub fn ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a == b` up to [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_helpers() {
        assert!(le(1.0, 1.0));
        assert!(le(1.0 + EPS / 2.0, 1.0));
        assert!(!le(1.0 + 1e-6, 1.0));
        assert!(ge(1.0, 1.0));
        assert!(ge(1.0 - EPS / 2.0, 1.0));
        assert!(!ge(1.0 - 1e-6, 1.0));
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(0.1, 0.2));
    }
}
