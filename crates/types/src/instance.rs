//! Problem instances: jobs, bags, machines.

use serde::{Deserialize, DeserializeError, Serialize, Value};

/// Index of a job within an [`Instance`] (dense, `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

/// Index of a bag within an [`Instance`] (dense, `0..b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BagId(pub u32);

impl JobId {
    /// The job index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl BagId {
    /// The bag index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A single job: a processing time and the bag it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Dense job index.
    pub id: JobId,
    /// Processing time `p_j > 0`.
    pub size: f64,
    /// The unique bag containing this job.
    pub bag: BagId,
}

/// An instance of machine scheduling with bag-constraints.
///
/// Construct via [`InstanceBuilder`] or [`Instance::new`]; both enforce the
/// structural invariants (positive sizes, dense bag ids). Semantic
/// feasibility (`|B_l| <= m`) is checked by
/// [`validate_instance`](crate::validate::validate_instance).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    jobs: Vec<Job>,
    machines: usize,
    num_bags: usize,
    /// Jobs of each bag, indexed by `BagId`. Derived; not serialized, and
    /// reconstructed whenever an `Instance` is built or deserialized.
    bag_members: Vec<Vec<JobId>>,
}

impl Serialize for JobId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for JobId {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        u32::from_value(v).map(JobId)
    }
}

impl Serialize for BagId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for BagId {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        u32::from_value(v).map(BagId)
    }
}

impl Serialize for Job {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), self.id.to_value()),
            ("size".into(), self.size.to_value()),
            ("bag".into(), self.bag.to_value()),
        ])
    }
}

impl Deserialize for Job {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(Job {
            id: JobId::from_value(v.field("id")?)?,
            size: f64::from_value(v.field("size")?)?,
            bag: BagId::from_value(v.field("bag")?)?,
        })
    }
}

impl Serialize for Instance {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("jobs".into(), self.jobs.to_value()),
            ("machines".into(), self.machines.to_value()),
            ("num_bags".into(), self.num_bags.to_value()),
        ])
    }
}

impl Deserialize for Instance {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let jobs: Vec<Job> = Vec::from_value(v.field("jobs")?)?;
        let machines = usize::from_value(v.field("machines")?)?;
        let num_bags = usize::from_value(v.field("num_bags")?)?;
        // Enforce the structural invariants the builder guarantees, so
        // hostile or hand-edited JSON surfaces as an error, not a panic
        // deep inside `rebuild_index` or a size lookup. The builder keeps
        // every bag non-empty, hence `num_bags <= n`; machines must fit a
        // `MachineId` (u32).
        if num_bags > jobs.len() {
            return Err(DeserializeError::new(format!(
                "num_bags {num_bags} exceeds job count {} (bags are dense and non-empty)",
                jobs.len()
            )));
        }
        if machines > u32::MAX as usize {
            return Err(DeserializeError::new(format!(
                "machine count {machines} exceeds the representable range"
            )));
        }
        for (i, job) in jobs.iter().enumerate() {
            if job.id.idx() != i {
                return Err(DeserializeError::new(format!(
                    "job at position {i} has id {} (ids must be dense)",
                    job.id.0
                )));
            }
            if job.bag.idx() >= num_bags {
                return Err(DeserializeError::new(format!(
                    "job {} references bag {} but num_bags is {num_bags}",
                    job.id.0, job.bag.0
                )));
            }
            if !(job.size > 0.0 && job.size.is_finite()) {
                return Err(DeserializeError::new(format!(
                    "job {} has non-positive or non-finite size {}",
                    job.id.0, job.size
                )));
            }
        }
        // Bags must not only be in range but dense-and-non-empty, exactly
        // as the builder produces them.
        let mut occupied = vec![false; num_bags];
        for job in &jobs {
            occupied[job.bag.idx()] = true;
        }
        if let Some(empty) = occupied.iter().position(|&o| !o) {
            return Err(DeserializeError::new(format!(
                "bag {empty} has no jobs (bags are dense and non-empty)"
            )));
        }
        // The checks above make `from_parts` safe, so the returned value is
        // fully indexed — no separate `rebuild_index` step required.
        Ok(Instance::from_parts(jobs, machines, num_bags))
    }
}

impl Instance {
    /// Build an instance from `(size, bag)` pairs and a machine count.
    ///
    /// # Panics
    /// Panics if any size is non-positive or not finite. Bag ids may be
    /// sparse; they are compacted to a dense range preserving order.
    pub fn new(jobs: &[(f64, u32)], machines: usize) -> Self {
        let mut builder = InstanceBuilder::new(machines);
        for &(size, bag) in jobs {
            builder.push(size, bag);
        }
        builder.build()
    }

    pub(crate) fn from_parts(jobs: Vec<Job>, machines: usize, num_bags: usize) -> Self {
        let mut bag_members = vec![Vec::new(); num_bags];
        for job in &jobs {
            bag_members[job.bag.idx()].push(job.id);
        }
        Instance { jobs, machines, num_bags, bag_members }
    }

    /// Recompute the derived bag membership table. Construction and
    /// deserialization both produce an indexed instance already; this is
    /// only needed after direct mutation of the job list.
    pub fn rebuild_index(&mut self) {
        self.bag_members = vec![Vec::new(); self.num_bags];
        for job in &self.jobs {
            self.bag_members[job.bag.idx()].push(job.id);
        }
    }

    /// All jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The job with the given id.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.idx()]
    }

    /// Processing time of a job.
    #[inline]
    pub fn size(&self, id: JobId) -> f64 {
        self.jobs[id.idx()].size
    }

    /// Bag of a job.
    #[inline]
    pub fn bag_of(&self, id: JobId) -> BagId {
        self.jobs[id.idx()].bag
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of machines `m`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// Number of bags `b`.
    #[inline]
    pub fn num_bags(&self) -> usize {
        self.num_bags
    }

    /// The jobs of bag `l`.
    #[inline]
    pub fn bag(&self, l: BagId) -> &[JobId] {
        &self.bag_members[l.idx()]
    }

    /// Iterator over `(BagId, members)`.
    pub fn bags(&self) -> impl Iterator<Item = (BagId, &[JobId])> {
        self.bag_members
            .iter()
            .enumerate()
            .map(|(l, members)| (BagId(l as u32), members.as_slice()))
    }

    /// Group bags by *profile*: two bags land in the same group iff the
    /// sorted multisets of their members' `key` values are identical.
    /// Bags with identical profiles are fully interchangeable for any
    /// scheduling decision that only depends on `key` (e.g. rounded size
    /// classes) — the foundation of class-level bag aggregation. Groups
    /// are returned ordered by their smallest member, members ascending.
    pub fn group_bags_by_profile<K: Ord>(
        &self,
        mut key: impl FnMut(JobId) -> K,
    ) -> Vec<Vec<BagId>> {
        let mut by_profile: std::collections::BTreeMap<Vec<K>, Vec<BagId>> =
            std::collections::BTreeMap::new();
        for (bag, members) in self.bags() {
            let mut profile: Vec<K> = members.iter().map(|&j| key(j)).collect();
            profile.sort_unstable();
            by_profile.entry(profile).or_default().push(bag);
        }
        let mut groups: Vec<Vec<BagId>> = by_profile.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// Total processing time of all jobs.
    pub fn total_size(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Largest processing time (0 for an empty instance).
    pub fn max_size(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).fold(0.0, f64::max)
    }

    /// Size of the largest bag.
    pub fn max_bag_size(&self) -> usize {
        self.bag_members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// A copy of this instance with a different machine count.
    pub fn with_machines(&self, machines: usize) -> Self {
        let mut inst = self.clone();
        inst.machines = machines;
        inst
    }

    /// A copy with every processing time multiplied by `factor > 0`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        let mut inst = self.clone();
        for job in &mut inst.jobs {
            job.size *= factor;
        }
        inst
    }
}

/// Incremental [`Instance`] construction.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    jobs: Vec<Job>,
    machines: usize,
    bag_remap: Vec<(u32, u32)>,
}

impl InstanceBuilder {
    /// Start building an instance on `machines` identical machines.
    pub fn new(machines: usize) -> Self {
        InstanceBuilder { jobs: Vec::new(), machines, bag_remap: Vec::new() }
    }

    /// Append a job with processing time `size` in external bag `bag`.
    ///
    /// External bag ids may be arbitrary `u32`s; they are compacted in
    /// first-seen order.
    pub fn push(&mut self, size: f64, bag: u32) -> JobId {
        assert!(
            size > 0.0 && size.is_finite(),
            "job sizes must be positive and finite, got {size}"
        );
        let dense = match self.bag_remap.iter().find(|&&(ext, _)| ext == bag) {
            Some(&(_, dense)) => dense,
            None => {
                let dense = self.bag_remap.len() as u32;
                self.bag_remap.push((bag, dense));
                dense
            }
        };
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(Job { id, size, bag: BagId(dense) });
        id
    }

    /// Append a job in its own fresh singleton bag.
    pub fn push_singleton(&mut self, size: f64) -> JobId {
        let fresh =
            self.bag_remap.iter().map(|&(ext, _)| ext).max().map_or(0, |m| m.wrapping_add(1));
        self.push(size, fresh)
    }

    /// Number of jobs pushed so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Finish construction.
    pub fn build(self) -> Instance {
        let num_bags = self.bag_remap.len();
        Instance::from_parts(self.jobs, self.machines, num_bags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_compacts_bags() {
        let inst = Instance::new(&[(1.0, 7), (2.0, 3), (3.0, 7)], 2);
        assert_eq!(inst.num_bags(), 2);
        assert_eq!(inst.bag_of(JobId(0)), inst.bag_of(JobId(2)));
        assert_ne!(inst.bag_of(JobId(0)), inst.bag_of(JobId(1)));
        assert_eq!(inst.bag(BagId(0)), &[JobId(0), JobId(2)]);
    }

    #[test]
    fn singleton_bags_are_fresh() {
        let mut b = InstanceBuilder::new(4);
        b.push(1.0, 0);
        b.push_singleton(2.0);
        b.push_singleton(3.0);
        let inst = b.build();
        assert_eq!(inst.num_bags(), 3);
        assert_eq!(inst.max_bag_size(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_size() {
        Instance::new(&[(0.0, 0)], 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nan_size() {
        Instance::new(&[(f64::NAN, 0)], 1);
    }

    #[test]
    fn aggregates() {
        let inst = Instance::new(&[(1.0, 0), (2.0, 1), (3.0, 0)], 2);
        assert_eq!(inst.total_size(), 6.0);
        assert_eq!(inst.max_size(), 3.0);
        assert_eq!(inst.max_bag_size(), 2);
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(inst.num_machines(), 2);
    }

    #[test]
    fn scaled_multiplies_sizes() {
        let inst = Instance::new(&[(1.0, 0), (2.0, 1)], 2).scaled(0.5);
        assert_eq!(inst.size(JobId(0)), 0.5);
        assert_eq!(inst.size(JobId(1)), 1.0);
    }

    #[test]
    fn with_machines_keeps_jobs() {
        let inst = Instance::new(&[(1.0, 0)], 2).with_machines(5);
        assert_eq!(inst.num_machines(), 5);
        assert_eq!(inst.num_jobs(), 1);
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(3).build();
        assert_eq!(inst.num_jobs(), 0);
        assert_eq!(inst.max_size(), 0.0);
        assert_eq!(inst.max_bag_size(), 0);
    }

    #[test]
    fn group_bags_by_profile_merges_identical_multisets() {
        // Bags 0 and 2 share the profile {1, 2}; bag 1 is {1}; bag 3 is
        // {2, 2} — a multiset, so it must NOT merge with {1, 2}.
        let jobs = [(1.0, 0), (2.0, 0), (1.0, 1), (2.0, 2), (1.0, 2), (2.0, 3), (2.0, 3)];
        let inst = Instance::new(&jobs, 4);
        let groups = inst.group_bags_by_profile(|j| inst.size(j) as i64);
        assert_eq!(
            groups,
            vec![vec![BagId(0), BagId(2)], vec![BagId(1)], vec![BagId(3)]],
            "groups must be keyed on the full multiset, ordered by smallest member"
        );
    }

    #[test]
    fn group_bags_by_profile_all_distinct_yields_singletons() {
        let inst = Instance::new(&[(1.0, 0), (2.0, 1), (3.0, 2)], 3);
        let groups = inst.group_bags_by_profile(|j| inst.size(j) as i64);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() == 1));
    }
}
